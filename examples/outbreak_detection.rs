//! Outbreak detection from learned representations — the paper's Fig. 9
//! observation put to work: CasCN's cascade representations separate
//! outbreak (large) from non-outbreak cascades, so a threshold on the
//! predicted increment classifies outbreaks without retraining.
//!
//! Run with `cargo run --release -p cascn-bench --example outbreak_detection`.

use cascn::{CascnConfig, CascnModel, TrainOpts};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Split};

/// Binary-classification counts at a given predicted-increment threshold.
fn confusion(
    model: &CascnModel,
    test: &[Cascade],
    window: f64,
    outbreak_size: usize,
    threshold: f32,
) -> (usize, usize, usize, usize) {
    let (mut tp, mut fp, mut fne, mut tn) = (0, 0, 0, 0);
    for c in test {
        let actual = c.increment_size(window) >= outbreak_size;
        let predicted = (model.predict_log(c, window).exp() - 1.0) >= threshold;
        match (predicted, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            (false, false) => tn += 1,
        }
    }
    (tp, fp, fne, tn)
}

fn main() {
    let window = 3600.0;
    let data = WeiboGenerator::new(WeiboConfig {
        num_cascades: 1600,
        seed: 23,
        ..WeiboConfig::default()
    })
    .generate()
    .filter_observed_size(window, 5, 100);

    let mut model = CascnModel::new(CascnConfig {
        hidden: 8,
        mlp_hidden: 8,
        max_nodes: 30,
        max_steps: 10,
        ..CascnConfig::default()
    });
    model.fit(
        data.split(Split::Train),
        data.split(Split::Validation),
        window,
        &TrainOpts {
            epochs: 6,
            patience: 6,
            ..TrainOpts::default()
        },
    );

    let test = data.split(Split::Test);
    let outbreak_size = 30; // "+30 adoptions after the first hour" = outbreak
    let positives = test
        .iter()
        .filter(|c| c.increment_size(window) >= outbreak_size)
        .count();
    println!(
        "test set: {} cascades, {} true outbreaks (ΔS ≥ {outbreak_size})\n",
        test.len(),
        positives
    );

    println!("threshold  precision  recall  f1");
    for threshold in [5.0f32, 10.0, 20.0, 30.0] {
        let (tp, fp, fne, _) = confusion(&model, test, window, outbreak_size, threshold);
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fne).max(1) as f64;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        println!("{threshold:>9.0}  {precision:>9.2}  {recall:>6.2}  {f1:.2}");
    }

    // The Fig. 9 separation claim, quantified: representations of outbreak
    // cascades differ from non-outbreak ones.
    let rep_norm = |c: &Cascade| {
        model
            .representation(c, window)
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let (mut out_norm, mut rest_norm) = (Vec::new(), Vec::new());
    for c in test {
        if c.increment_size(window) >= outbreak_size {
            out_norm.push(rep_norm(c));
        } else {
            rest_norm.push(rep_norm(c));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean |h(C)|: outbreaks {:.2} vs others {:.2} (Fig. 9: clear pattern separation)",
        mean(&out_norm),
        mean(&rest_norm)
    );
}
