//! Citation-count forecasting on a HEP-PH-like corpus — the paper's second
//! evaluation scenario: given a paper's first years of citations, predict
//! how many more it will accumulate.
//!
//! Shows the paper's "longer observation windows are easier" trend by
//! training CasCN at 3, 5 and 7 simulated years.
//!
//! Run with `cargo run --release -p cascn-bench --example citation_hepph`.

use cascn::{CascnConfig, CascnModel, TrainOpts};
use cascn_cascades::synth::{CitationConfig, CitationGenerator};
use cascn_cascades::Split;

fn main() {
    let data = CitationGenerator::new(CitationConfig {
        num_cascades: 2500,
        seed: 3,
        ..CitationConfig::default()
    })
    .generate();
    println!(
        "corpus: {} papers tracked over ~10 simulated years\n",
        data.cascades.len()
    );

    let mut msles = Vec::new();
    for (years, label) in [(3.0, "3 years"), (5.0, "5 years"), (7.0, "7 years")] {
        let window = years * 365.0;
        let filtered = data.filter_observed_size(window, 3, 100);
        let (train, val, test) = (
            filtered.split(Split::Train).to_vec(),
            filtered.split(Split::Validation).to_vec(),
            filtered.split(Split::Test).to_vec(),
        );
        let mut model = CascnModel::new(CascnConfig {
            hidden: 8,
            mlp_hidden: 8,
            max_nodes: 30,
            max_steps: 10,
            ..CascnConfig::default()
        });
        model.fit(
            &train,
            &val,
            window,
            &TrainOpts {
                epochs: 6,
                patience: 6,
                ..TrainOpts::default()
            },
        );
        let msle = cascn::evaluate(&model, &test, window);
        println!(
            "observe {label:<8} ({} papers kept): test MSLE {msle:.3}",
            filtered.cascades.len()
        );
        // A concrete prediction.
        let paper = &test[0];
        let predicted = model.predict_log(paper, window).exp() - 1.0;
        println!(
            "  e.g. paper {} with {} citations at {label} → predicted +{predicted:.1}, actual +{}\n",
            paper.id,
            paper.size_at(window),
            paper.increment_size(window)
        );
        msles.push(msle);
    }
    let trend_holds = msles.windows(2).all(|w| w[1] <= w[0] + 0.1);
    println!("paper trend (longer window → lower MSLE) holds: {trend_holds}");
}
