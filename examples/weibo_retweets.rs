//! Viral-post triage on a Weibo-like microblog feed — the paper's intro
//! scenario: given the first hour of re-tweets, which posts will go viral?
//!
//! Trains CasCN and a feature baseline, then ranks unseen posts by the
//! predicted growth and measures how well each ranking recovers the posts
//! that actually blow up (precision@k).
//!
//! Run with `cargo run --release -p cascn-bench --example weibo_retweets`.

use cascn::{CascnConfig, CascnModel, SizePredictor, TrainOpts};
use cascn_baselines::FeatureLinear;
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::Split;

fn precision_at_k(
    model: &dyn SizePredictor,
    test: &[cascn_cascades::Cascade],
    window: f64,
    k: usize,
) -> f64 {
    // Ground truth: the k posts with the largest actual growth.
    let mut actual: Vec<(usize, usize)> = test
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.increment_size(window)))
        .collect();
    actual.sort_by_key(|&(_, inc)| std::cmp::Reverse(inc));
    let top_actual: std::collections::HashSet<usize> =
        actual[..k].iter().map(|&(i, _)| i).collect();

    let mut predicted: Vec<(usize, f32)> = test
        .iter()
        .enumerate()
        .map(|(i, c)| (i, model.predict_log(c, window)))
        .collect();
    predicted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite predictions"));
    let hits = predicted[..k]
        .iter()
        .filter(|&&(i, _)| top_actual.contains(&i))
        .count();
    hits as f64 / k as f64
}

fn main() {
    let window = 3600.0;
    let data = WeiboGenerator::new(WeiboConfig {
        num_cascades: 1600,
        seed: 11,
        ..WeiboConfig::default()
    })
    .generate()
    .filter_observed_size(window, 5, 100);
    let (train, val, test) = (
        data.split(Split::Train),
        data.split(Split::Validation),
        data.split(Split::Test),
    );
    println!(
        "feed: {} posts observed for 1 hour ({} train / {} val / {} test)",
        data.cascades.len(),
        train.len(),
        val.len(),
        test.len()
    );

    // CasCN.
    let mut cascn = CascnModel::new(CascnConfig {
        hidden: 8,
        mlp_hidden: 8,
        max_nodes: 30,
        max_steps: 10,
        ..CascnConfig::default()
    });
    cascn.fit(
        train,
        val,
        window,
        &TrainOpts {
            epochs: 6,
            patience: 6,
            ..TrainOpts::default()
        },
    );

    // Feature baseline.
    let features = FeatureLinear::fit(train, val, window);

    let k = (test.len() / 10).max(3);
    println!("\nranking quality (precision@{k} for spotting the top-{k} growers):");
    for (name, p, msle) in [
        (
            "CasCN",
            precision_at_k(&cascn, test, window, k),
            cascn::evaluate(&cascn, test, window),
        ),
        (
            "Feature-linear",
            precision_at_k(&features, test, window, k),
            cascn::evaluate(&features, test, window),
        ),
    ] {
        println!("  {name:<15} precision@{k} = {p:.2}, MSLE = {msle:.3}");
    }

    // Show the triage view an analyst would see.
    println!("\ntop-5 posts by predicted future growth (CasCN):");
    let mut ranked: Vec<(&cascn_cascades::Cascade, f32)> = test
        .iter()
        .map(|c| (c, cascn.predict_log(c, window)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite predictions"));
    for (c, pred) in ranked.iter().take(5) {
        println!(
            "  post {:>5}: {} adopters observed → predicted +{:.0}, actual +{}",
            c.id,
            c.size_at(window),
            pred.exp() - 1.0,
            c.increment_size(window)
        );
    }
}
