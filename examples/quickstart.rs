//! Quickstart: train CasCN on a synthetic Weibo-like dataset and predict
//! how much a cascade will grow after its first hour.
//!
//! Run with `cargo run --release -p cascn-bench --example quickstart`.

use cascn::{CascnConfig, CascnModel, TrainOpts};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::Split;

fn main() {
    // 1. A dataset of information cascades. Each cascade is a DAG of
    //    adoption events (who re-tweeted from whom, and when).
    let window = 3600.0; // observe the first hour
    let data = WeiboGenerator::new(WeiboConfig {
        num_cascades: 1200,
        seed: 7,
        ..WeiboConfig::default()
    })
    .generate()
    .filter_observed_size(window, 5, 100);
    println!(
        "dataset: {} cascades with ≥5 adoptions in the first hour",
        data.cascades.len()
    );

    // 2. Train CasCN: Chebyshev graph convolutions over the CasLaplacian
    //    inside an LSTM, with learned time decay (paper Fig. 2).
    let mut model = CascnModel::new(CascnConfig {
        hidden: 8,
        mlp_hidden: 8,
        max_nodes: 30,
        max_steps: 10,
        ..CascnConfig::default()
    });
    println!("model: {} parameters", model.num_parameters());
    let history = model.fit(
        data.split(Split::Train),
        data.split(Split::Validation),
        window,
        &TrainOpts {
            epochs: 5,
            patience: 5,
            ..TrainOpts::default()
        },
    );
    for r in history.records() {
        println!(
            "epoch {:>2}: train loss {:.3}, val MSLE {:.3}",
            r.epoch, r.train_loss, r.val_loss
        );
    }

    // 3. Evaluate and predict.
    let test = data.split(Split::Test);
    let msle = cascn::evaluate(&model, test, window);
    println!("test MSLE: {msle:.3}");

    let cascade = &test[0];
    let predicted = model.predict_log(cascade, window).exp() - 1.0;
    let actual = cascade.increment_size(window);
    println!(
        "cascade {}: observed {} adopters in 1h → predicted +{predicted:.1} more, actually +{actual}",
        cascade.id,
        cascade.size_at(window),
    );
}
