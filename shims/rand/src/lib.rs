//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! ships this shim implementing exactly the API subset the repo uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngExt::random_range`]
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, seed-stable, and of ample quality for
//! synthetic-data generation and initialization. It makes no attempt to
//! reproduce the upstream `rand` bit streams; all in-repo tests assert
//! statistical tolerances or seed-reproducibility, never exact upstream
//! sequences.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `lo` plus `span` consecutive values (`span == 0` means
/// the full 2^64 span), bias-free via rejection sampling.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(1) as u64;
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the excluded endpoint.
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_unit() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw 256-bit state (used by checkpointing code that
        /// wants bit-exact resume without replaying draws).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "StdRng state must be non-zero");
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.random_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let d = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
            let i = rng.random_range(0u64..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!([1usize, 2, 3].choose(&mut rng).is_some());
        assert!(<[usize]>::choose(&[], &mut rng).is_none());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.next_u64();
        let snap = a.state();
        let expected: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(expected, resumed);
    }
}
