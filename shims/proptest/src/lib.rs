//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this shim supplies the
//! Strategy combinators, collection helpers, and `proptest!` macro family the
//! workspace's property tests use. Inputs are generated from a deterministic
//! per-test seed (derived from the test name and case index) so failures are
//! reproducible; there is **no shrinking** — a failing case reports its
//! values via `Debug`-free messages and its case number instead.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleRange};
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Deterministic source of test-case randomness.
    pub type TestRng = StdRng;

    /// Builds the per-case RNG (kept here so the `proptest!` macro does not
    /// require consumer crates to depend on `rand` themselves).
    pub fn rng_from_seed(seed: u64) -> TestRng {
        use rand::SeedableRng as _;
        StdRng::seed_from_u64(seed)
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among several strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i64, i32, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// `SampleRange` re-export so `collection::vec` size arguments work for
    /// both exact and ranged sizes.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample_from(rng)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample_from(rng)
        }
    }
}

pub mod collection {
    use super::strategy::{IntoSizeRange, Strategy, TestRng};

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize`, range, or inclusive range).
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// FNV-1a hash of the test name, mixed into the per-case seed so
    /// different tests see different streams.
    pub fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` ({:?} vs {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}` (both {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions over generated inputs, mirroring
/// `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::test_runner::name_seed(::std::stringify!($name));
                for case in 0..cfg.cases {
                    let mut rng = $crate::strategy::rng_from_seed(
                        base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "proptest case {case} of {} failed: {message}",
                            ::std::stringify!($name)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(n in 1usize..10, x in -1.0f32..1.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn flat_map_supports_dependent_sizes(v in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn oneof_and_just_yield_members(s in prop_oneof![Just(-1.0f32), Just(1.0f32)]) {
            prop_assert!(s == -1.0 || s == 1.0);
        }

        #[test]
        fn vec_of_boxed_strategies_generates_elementwise(v in (1usize..8).prop_flat_map(|n| {
            let parts: Vec<BoxedStrategy<usize>> =
                (1..=n).map(|i| (0..i).boxed()).collect();
            parts
        })) {
            for (i, &p) in v.iter().enumerate() {
                prop_assert!(p <= i, "element {i} out of range: {p}");
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let s = (0usize..100, -1.0f64..1.0);
        let a = s.generate(&mut TestRng::seed_from_u64(5));
        let b = s.generate(&mut TestRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
