//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `Criterion`/`BenchmarkGroup`/`Bencher` API subset the
//! workspace's benches use. Instead of criterion's full statistical pipeline
//! it warms each benchmark up briefly, then reports the median of a small
//! number of timed iterations — enough to compare orders of magnitude and to
//! keep `cargo bench` / `cargo clippy --all-targets` working without network
//! access to crates.io.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), &mut f);
    }
}

/// A named set of benchmarks sharing a group label.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
    }

    /// Ends the group (display-only in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: Some(name.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier distinguished by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}/{}", self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting a handful of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up plus sample count chosen so even multi-ms routines finish
        // a bench binary in seconds rather than minutes.
        black_box(routine());
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

const SAMPLES: usize = 7;

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(SAMPLES),
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    eprintln!("  bench {label}: median {median:?} over {} samples", b.samples.len());
}

/// Collects benchmark functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_their_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("plain", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("with", 3), &3usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.bench_with_input(BenchmarkId::from_parameter(5), &5usize, |b, &n| {
                b.iter(|| black_box(n + 1))
            });
            g.finish();
        }
        assert!(runs > 0, "bencher must execute the routine");
    }

    criterion_group!(smoke, smoke_fn);

    fn smoke_fn(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn generated_group_fn_is_callable() {
        smoke();
    }
}
