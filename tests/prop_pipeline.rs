//! Property-based integration tests over randomly generated cascades: the
//! preprocessing pipeline must uphold its invariants for *any* valid
//! cascade, not just the synthetic generators' output.

use cascn::{preprocess, CascnConfig, CascnModel, LambdaMax, LaplacianKind, WindowedPreprocessor};
use cascn_cascades::{Cascade, Event};
use cascn_graph::laplacian;
use proptest::prelude::*;

/// Strategy: a random valid cascade with up to `max_nodes` adopters.
/// Events get increasing times and earlier-indexed parents — the Cascade
/// invariants by construction.
fn arbitrary_cascade(max_nodes: usize) -> impl Strategy<Value = Cascade> {
    (1..=max_nodes).prop_flat_map(move |n| {
        // Parent choices: parent of event i (1-based) is in 0..i.
        let parents: Vec<BoxedStrategy<usize>> = (1..n)
            .map(|i| (0..i).prop_map(|p| p).boxed())
            .collect();
        let gaps = proptest::collection::vec(0.01f64..50.0, n.saturating_sub(1));
        (parents, gaps).prop_map(move |(ps, gs)| {
            let mut events = vec![Event {
                user: 1000,
                parent: None,
                time: 0.0,
            }];
            let mut t = 0.0;
            for (i, (p, g)) in ps.into_iter().zip(gs).enumerate() {
                t += g;
                events.push(Event {
                    user: 1001 + i as u64,
                    parent: Some(p),
                    time: t,
                });
            }
            Cascade::new(7, 0.0, events)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn preprocess_invariants_hold(cascade in arbitrary_cascade(20), window in 1.0f64..2000.0) {
        let cfg = CascnConfig {
            max_nodes: 12,
            max_steps: 5,
            k: 2,
            ..CascnConfig::default()
        };
        let p = preprocess(&cascade, window, &cfg);

        // Shapes. The default sparse kernel carries the operator, never the
        // materialized bases; materializing on demand must still produce
        // K+1 finite n×n matrices.
        prop_assert!(p.dense_bases.is_none());
        prop_assert_eq!(p.basis.num_nodes(), p.n);
        let bases = p.basis.materialize();
        prop_assert_eq!(bases.len(), cfg.k + 1);
        prop_assert!(p.n >= 1 && p.n <= cfg.max_nodes);
        for b in &bases {
            prop_assert_eq!(b.shape(), (p.n, p.n));
            prop_assert!(b.all_finite());
        }
        prop_assert!(!p.snapshots.is_empty());
        prop_assert!(p.snapshots.len() <= cfg.max_steps);
        prop_assert_eq!(p.snapshots.len(), p.times.len());

        // Snapshots grow monotonically and end with the whole prefix.
        for w in p.snapshots.windows(2) {
            for i in 0..w[0].len() {
                prop_assert!(w[1].as_slice()[i] >= w[0].as_slice()[i]);
            }
        }
        let expected_edges = cascade.events[..p.n]
            .iter()
            .skip(1)
            .filter(|e| e.parent.expect("non-root") < p.n)
            .count() as f32;
        prop_assert_eq!(p.snapshots.last().unwrap().sum(), expected_edges + 1.0);

        // Times sorted and within the (inclusive) window.
        prop_assert!(p.times.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(p.times.iter().all(|&t| t <= window || p.n == 1));

        // Label consistency: observation is inclusive at the boundary, the
        // increment counts strictly-later events, and together they cover
        // every event exactly once.
        prop_assert_eq!(p.increment, cascade.final_size() - cascade.observed_size(window));
        prop_assert_eq!(cascade.observed_size(window) + cascade.increment_size(window),
                        cascade.final_size());
        prop_assert!((p.label_log - ((p.increment + 1) as f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn cas_laplacian_invariants_on_random_cascades(cascade in arbitrary_cascade(15)) {
        let g = cascade.observe(f64::MAX).graph();
        let p = laplacian::transition_matrix(&g, 0.85);
        // Rows stochastic.
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", r, sum);
            prop_assert!(p.row(r).iter().all(|&x| x > 0.0));
        }
        // Δc annihilates Φ^{1/2}e.
        let lap = laplacian::cas_laplacian(&g, 0.85);
        let v = laplacian::sqrt_stationary(&g, 0.85);
        for r in 0..lap.rows() {
            let y: f32 = lap.row(r).iter().zip(&v).map(|(&a, &b)| a * b).sum();
            prop_assert!(y.abs() < 1e-3, "row {} maps sqrt-stationary to {}", r, y);
        }
        // λ_max positive, scaled spectrum Chebyshev-safe.
        let lmax = laplacian::largest_eigenvalue(&lap);
        prop_assert!(lmax > 0.0 && lmax.is_finite());
        let scaled = laplacian::scale_laplacian(&lap, lmax);
        prop_assert!(scaled.all_finite());
        let bases = laplacian::chebyshev_bases(&scaled, 3);
        prop_assert!(bases.iter().all(|b| b.all_finite()));
    }

    #[test]
    fn approx_and_exact_lambda_agree_on_t0_t1(cascade in arbitrary_cascade(12)) {
        // Both λ_max modes must at least produce the same T_0 (identity) and
        // finite higher orders — the Table V comparison is meaningful only
        // if both pipelines are well-formed.
        for mode in [LambdaMax::Exact, LambdaMax::Approx2] {
            let cfg = CascnConfig {
                max_nodes: 12,
                max_steps: 4,
                lambda_max: mode,
                ..CascnConfig::default()
            };
            let p = preprocess(&cascade, 1e6, &cfg);
            // T_0 = I.
            let bases = p.basis.materialize();
            let t0 = &bases[0];
            for r in 0..t0.rows() {
                for c in 0..t0.cols() {
                    let expect = if r == c { 1.0 } else { 0.0 };
                    prop_assert!((t0[(r, c)] - expect).abs() < 1e-6);
                }
            }
            prop_assert!(p.lambda_max > 0.0);
        }
    }

    #[test]
    fn streamed_increments_match_one_shot_predictions(
        cascade in arbitrary_cascade(16),
        window in 1.0f64..200.0,
        seed_frac in 0.0f64..1.0,
        crossings in proptest::collection::vec(0.05f64..0.95, 0..3),
    ) {
        // The streaming gate: seed a live preprocessor with a random prefix,
        // push the remaining events one at a time (optionally crossing a few
        // intermediate window boundaries on the way), and the incremental
        // state must predict within 5e-4 of one-shot preprocessing — at
        // every thread count.
        let cfg = CascnConfig {
            hidden: 4,
            mlp_hidden: 4,
            max_nodes: 12,
            max_steps: 5,
            k: 2,
            threads: 1,
            ..CascnConfig::default()
        };
        let n = cascade.final_size();
        let split = 1 + ((n - 1) as f64 * seed_frac) as usize;
        let seed = Cascade::new(cascade.id, cascade.start_time, cascade.events[..split].to_vec());

        // Random earlier windows to cross on the way to the final one.
        let mut windows: Vec<f64> = crossings.iter().map(|f| f * window).collect();
        windows.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        windows.push(window);

        let mut pp = WindowedPreprocessor::new(seed, windows[0], &cfg);
        let mut next_window = 1;
        for (i, ev) in cascade.events[split..].iter().enumerate() {
            // Spread the window crossings across the streamed events.
            if next_window < windows.len() && i == (n - split) / 2 {
                pp.advance_window(windows[next_window]);
                next_window += 1;
            }
            prop_assert!(pp.observe_event(ev.clone()).is_ok());
        }
        while next_window < windows.len() {
            pp.advance_window(windows[next_window]);
            next_window += 1;
        }
        let sample = pp.current();
        let cold = preprocess(&cascade, window, &cfg);

        prop_assert_eq!(sample.n, cold.n);
        prop_assert_eq!(sample.increment, cold.increment);
        let warm_bases = sample.basis.materialize();
        let cold_bases = cold.basis.materialize();
        for (w, c) in warm_bases.iter().zip(&cold_bases) {
            for r in 0..w.rows() {
                for col in 0..w.cols() {
                    prop_assert!((w[(r, col)] - c[(r, col)]).abs() < 5e-4,
                        "basis drift {} vs {}", w[(r, col)], c[(r, col)]);
                }
            }
        }

        // Model-level parity: the streamed sample predicts within the gate
        // of one-shot preprocessing, identically at 1, 2, and 4 threads.
        let mut preds = Vec::new();
        for threads in [1usize, 2, 4] {
            let model = CascnModel::new(CascnConfig { threads, ..cfg });
            let warm = model.predict_log_sample(&sample);
            let one_shot = model.predict_logs(std::slice::from_ref(&cascade), window)[0];
            prop_assert!((warm - one_shot).abs() < 5e-4,
                "threads {}: warm {} vs one-shot {}", threads, warm, one_shot);
            preds.push(warm);
        }
        prop_assert_eq!(preds[0].to_bits(), preds[1].to_bits());
        prop_assert_eq!(preds[0].to_bits(), preds[2].to_bits());
    }

    #[test]
    fn undirected_mode_symmetrizes(cascade in arbitrary_cascade(10)) {
        let cfg = CascnConfig {
            max_nodes: 10,
            laplacian: LaplacianKind::Undirected,
            ..CascnConfig::default()
        };
        let p = preprocess(&cascade, 1e6, &cfg);
        let bases = p.basis.materialize();
        let t1 = &bases[1];
        for r in 0..t1.rows() {
            for c in 0..t1.cols() {
                prop_assert!((t1[(r, c)] - t1[(c, r)]).abs() < 1e-4);
            }
        }
    }
}
