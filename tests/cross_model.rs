//! Cross-crate integration of every Table III model behind the shared
//! `SizePredictor` interface.

use cascn::{CascnConfig, CascnModel, SizePredictor, TrainOpts};
use cascn_baselines::{
    DeepCas, DeepHawkes, FeatureDeep, FeatureLinear, Lis, LisConfig, Node2VecModel,
    Node2VecModelConfig, TopoLstm,
};
use cascn_cascades::synth::{CitationConfig, CitationGenerator, WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Split};

fn weibo() -> cascn_cascades::Dataset {
    WeiboGenerator::new(WeiboConfig {
        num_cascades: 300,
        seed: 99,
        max_size: 200,
    })
    .generate()
    .filter_observed_size(3600.0, 4, 60)
}

/// Trains every model for one epoch and returns (name, msle) pairs.
fn train_all(
    train: &[Cascade],
    val: &[Cascade],
    test: &[Cascade],
    window: f64,
) -> Vec<(String, f32)> {
    let opts = TrainOpts {
        epochs: 1,
        ..TrainOpts::default()
    };
    let mut results: Vec<(String, f32)> = Vec::new();

    let fl = FeatureLinear::fit(train, val, window);
    results.push((fl.name(), cascn::evaluate(&fl, test, window)));

    let mut fd = FeatureDeep::new(1);
    fd.fit(train, val, window, &opts);
    results.push((fd.name(), cascn::evaluate(&fd, test, window)));

    let lis = Lis::fit(
        train,
        window,
        &LisConfig {
            epochs: 1,
            ..LisConfig::default()
        },
    );
    results.push((lis.name(), cascn::evaluate(&lis, test, window)));

    let (n2v, _) = Node2VecModel::fit(
        train,
        val,
        window,
        Node2VecModelConfig {
            sgns_epochs: 1,
            ..Node2VecModelConfig::default()
        },
        &opts,
    );
    results.push((n2v.name(), cascn::evaluate(&n2v, test, window)));

    let mut dc = DeepCas::new(train, window, 4, 1);
    dc.fit(train, val, window, &opts);
    results.push((dc.name(), cascn::evaluate(&dc, test, window)));

    let mut topo = TopoLstm::new(train, window, 4, 1);
    topo.fit(train, val, window, &opts);
    results.push((topo.name(), cascn::evaluate(&topo, test, window)));

    let mut dh = DeepHawkes::new(train, window, 4, 1);
    dh.fit(train, val, window, &opts);
    results.push((dh.name(), cascn::evaluate(&dh, test, window)));

    let mut cn = CascnModel::new(CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 15,
        max_steps: 6,
        ..CascnConfig::default()
    });
    cn.fit(train, val, window, &opts);
    results.push((cn.name(), cascn::evaluate(&cn, test, window)));

    results
}

#[test]
fn all_eight_models_produce_finite_msle_on_weibo() {
    let data = weibo();
    let window = 3600.0;
    let train: Vec<_> = data.split(Split::Train).iter().take(50).cloned().collect();
    let val: Vec<_> = data.split(Split::Validation).iter().take(12).cloned().collect();
    let test: Vec<_> = data.split(Split::Test).iter().take(15).cloned().collect();
    assert!(train.len() >= 20 && !val.is_empty() && !test.is_empty());

    let results = train_all(&train, &val, &test, window);
    assert_eq!(results.len(), 8, "all Table III models must run");
    for (name, msle) in &results {
        assert!(
            msle.is_finite() && *msle >= 0.0 && *msle < 50.0,
            "{name} produced implausible MSLE {msle}"
        );
    }
    // Distinct names (trait wiring sanity).
    let mut names: Vec<&String> = results.iter().map(|(n, _)| n).collect();
    names.dedup();
    assert_eq!(names.len(), 8);
}

#[test]
fn models_work_on_citation_data_too() {
    let window = 3.0 * 365.0;
    let data = CitationGenerator::new(CitationConfig {
        num_cascades: 500,
        seed: 3,
        max_size: 200,
    })
    .generate()
    .filter_observed_size(window, 3, 60);
    let train: Vec<_> = data.split(Split::Train).iter().take(40).cloned().collect();
    let test: Vec<_> = data.split(Split::Test).iter().take(10).cloned().collect();
    assert!(train.len() >= 15 && !test.is_empty());

    // Spot-check one model per family on the citation scenario.
    let fl = FeatureLinear::fit(&train, &[], window);
    assert!(cascn::evaluate(&fl, &test, window).is_finite());

    let mut cn = CascnModel::new(CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 15,
        max_steps: 6,
        ..CascnConfig::default()
    });
    cn.fit(
        &train,
        &[],
        window,
        &TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        },
    );
    assert!(cascn::evaluate(&cn, &test, window).is_finite());
}

#[test]
fn predictors_compose_as_trait_objects() {
    let data = weibo();
    let window = 3600.0;
    let train: Vec<_> = data.split(Split::Train).iter().take(30).cloned().collect();
    let fl = FeatureLinear::fit(&train, &[], window);
    let lis = Lis::fit(&train, window, &LisConfig::default());
    let models: Vec<Box<dyn SizePredictor>> = vec![Box::new(fl), Box::new(lis)];
    for m in &models {
        let p = m.predict_log(&train[0], window);
        assert!(p.is_finite(), "{} broke as a trait object", m.name());
    }
}
