//! End-to-end integration: generate → serialize → reload → train → predict,
//! across the whole crate stack.

use cascn::{CascnConfig, CascnModel, TrainOpts, Variant};
use cascn_cascades::io;
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::Split;

fn tiny_cfg() -> CascnConfig {
    CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 15,
        max_steps: 6,
        ..CascnConfig::default()
    }
}

fn tiny_data() -> cascn_cascades::Dataset {
    WeiboGenerator::new(WeiboConfig {
        num_cascades: 400,
        seed: 404,
        max_size: 300,
    })
    .generate()
    .filter_observed_size(3600.0, 5, 80)
}

#[test]
fn full_pipeline_through_serialization() {
    let window = 3600.0;
    let data = tiny_data();
    assert!(data.cascades.len() > 60, "generator yield too low: {}", data.cascades.len());

    // Serialize → reload → identical dataset.
    let dir = std::env::temp_dir().join("cascn_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("weibo.cascades");
    io::write_dataset(&path, &data).unwrap();
    let reloaded = io::read_dataset(&path).unwrap();
    assert_eq!(reloaded.cascades, data.cascades);
    std::fs::remove_file(&path).ok();

    // Train on the reloaded copy.
    let mut model = CascnModel::new(tiny_cfg());
    let opts = TrainOpts {
        epochs: 3,
        patience: 3,
        ..TrainOpts::default()
    };
    let history = model.fit(
        reloaded.split(Split::Train),
        reloaded.split(Split::Validation),
        window,
        &opts,
    );
    assert!(!history.records().is_empty());
    assert!(history.records().iter().all(|r| r.val_loss.is_finite()));

    // Trained model beats the untrained initialization on test MSLE.
    let untrained = CascnModel::new(tiny_cfg());
    let test = reloaded.split(Split::Test);
    let trained_msle = cascn::evaluate(&model, test, window);
    let untrained_msle = cascn::evaluate(&untrained, test, window);
    assert!(
        trained_msle < untrained_msle,
        "training must help: {trained_msle} vs untrained {untrained_msle}"
    );

    // Predictions decode to non-negative sizes.
    for c in test.iter().take(10) {
        let p = model.predict_log(c, window);
        assert!(p.is_finite());
        assert!(p.exp() - 1.0 >= -1.0);
    }
}

#[test]
fn all_variants_train_one_epoch() {
    let window = 3600.0;
    let data = tiny_data();
    let train: Vec<_> = data.split(Split::Train).iter().take(40).cloned().collect();
    let val: Vec<_> = data.split(Split::Validation).iter().take(10).cloned().collect();
    let opts = TrainOpts {
        epochs: 1,
        ..TrainOpts::default()
    };
    for variant in Variant::all() {
        let msle = match variant {
            Variant::Gl => {
                let mut m = cascn::GlModel::new(tiny_cfg());
                m.fit(&train, &val, window, &opts);
                cascn::evaluate(&m, &val, window)
            }
            Variant::Path => {
                let mut m = cascn::PathModel::new(tiny_cfg(), &train, window);
                m.fit(&train, &val, window, &opts);
                cascn::evaluate(&m, &val, window)
            }
            other => {
                let mut m = CascnModel::new(tiny_cfg().with_variant(other));
                m.fit(&train, &val, window, &opts);
                cascn::evaluate(&m, &val, window)
            }
        };
        assert!(msle.is_finite(), "{} produced non-finite MSLE", variant.name());
    }
}

#[test]
fn window_monotonicity_of_observations() {
    // Longer windows observe at least as much and leave at most as much
    // growth — an invariant every model's labels rely on.
    let data = tiny_data();
    for c in data.cascades.iter().take(50) {
        let mut prev_obs = 0;
        let mut prev_inc = usize::MAX;
        for hours in [1.0, 2.0, 3.0, 24.0] {
            let w = hours * 3600.0;
            let obs = c.observed_size(w);
            let inc = c.increment_size(w);
            assert!(obs >= prev_obs);
            assert!(inc <= prev_inc);
            assert_eq!(obs + inc, c.final_size());
            prev_obs = obs;
            prev_inc = inc;
        }
    }
}
