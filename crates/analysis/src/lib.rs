//! Analysis utilities for the Fig. 9 visualizations and the experiment
//! reports: exact t-SNE, text heatmaps, Pearson correlation, and table
//! formatting.

mod heatmap;
mod tables;
mod tsne;

pub use heatmap::{render_heatmap, HeatmapOptions};
pub use tables::Table;
pub use tsne::{tsne, TsneConfig};

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0.0 for degenerate (constant) inputs.
///
/// # Panics
/// Panics if lengths differ or the series are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    assert!(!xs.is_empty(), "pearson: empty series");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    let denom = (vx * vy).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_identical_series_is_one() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let xs = vec![1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let xs = vec![1.0, 1.0, 1.0];
        let ys = vec![1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }
}
