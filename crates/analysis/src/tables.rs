//! Fixed-width table formatting for the experiment reports
//! ("paper vs. measured" rows).

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "Table: row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV rows (header first).
    pub fn to_csv_rows(&self) -> (Vec<&str>, Vec<Vec<String>>) {
        (
            self.header.iter().map(String::as_str).collect(),
            self.rows.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["model", "msle"]);
        t.push(vec!["CasCN".into(), "1.91".into()]);
        t.push(vec!["DeepHawkes".into(), "2.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("CasCN"));
        // Columns aligned: "msle" column starts at the same offset everywhere.
        let offset = lines[0].find("msle").unwrap();
        assert_eq!(&lines[2][offset..offset + 4], "1.91");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let (header, rows) = t.to_csv_rows();
        assert_eq!(header, vec!["a", "b"]);
        assert_eq!(rows.len(), 1);
    }
}
