//! Text heatmaps — the terminal rendering of Fig. 9(a)/(b).

/// Rendering options for [`render_heatmap`].
#[derive(Debug, Clone, Default)]
pub struct HeatmapOptions {
    /// Optional row labels (left margin).
    pub row_labels: Vec<String>,
    /// Title printed above the grid.
    pub title: String,
}

/// Unicode shade ramp from low to high.
const RAMP: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Renders a matrix (rows of equal length) as a Unicode-shade heatmap.
/// Values are min-max normalized over the whole matrix.
///
/// # Panics
/// Panics if rows are ragged or the matrix is empty.
pub fn render_heatmap(rows: &[Vec<f32>], opts: &HeatmapOptions) -> String {
    assert!(!rows.is_empty(), "render_heatmap: no rows");
    let width = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == width),
        "render_heatmap: ragged rows"
    );
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for r in rows {
        for &v in r {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(1e-9);
    let mut out = String::new();
    if !opts.title.is_empty() {
        out.push_str(&opts.title);
        out.push('\n');
    }
    let label_width = opts
        .row_labels
        .iter()
        .map(|l| l.len())
        .max()
        .unwrap_or(0);
    for (i, r) in rows.iter().enumerate() {
        if label_width > 0 {
            let label = opts.row_labels.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{label:>label_width$} "));
        }
        for &v in r {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            let idx = ((t * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx]);
        }
        out.push('\n');
    }
    out.push_str(&format!("scale: min {lo:.3} … max {hi:.3}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_extremes_with_ramp_ends() {
        let rows = vec![vec![0.0, 1.0]];
        let s = render_heatmap(&rows, &HeatmapOptions::default());
        assert!(s.contains(' '), "min maps to lightest shade");
        assert!(s.contains('█'), "max maps to darkest shade");
        assert!(s.contains("scale:"));
    }

    #[test]
    fn labels_are_aligned() {
        let rows = vec![vec![0.0, 0.5], vec![1.0, 0.2]];
        let opts = HeatmapOptions {
            row_labels: vec!["a".into(), "long".into()],
            title: "demo".into(),
        };
        let s = render_heatmap(&rows, &opts);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "demo");
        assert!(lines[1].starts_with("   a "));
        assert!(lines[2].starts_with("long "));
    }

    #[test]
    fn constant_matrix_is_handled() {
        let rows = vec![vec![2.0, 2.0], vec![2.0, 2.0]];
        let s = render_heatmap(&rows, &HeatmapOptions::default());
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let _ = render_heatmap(&[vec![1.0], vec![1.0, 2.0]], &HeatmapOptions::default());
    }
}
