//! Exact (O(n²)) t-SNE (van der Maaten & Hinton 2008), used to lay out the
//! learned cascade representations of Fig. 9 in 2-D.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbors).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 1,
        }
    }
}

/// Embeds `points` (rows of equal dimension) into 2-D.
///
/// # Panics
/// Panics if fewer than 3 points are given or rows are ragged.
pub fn tsne(points: &[Vec<f32>], cfg: &TsneConfig) -> Vec<[f64; 2]> {
    let n = points.len();
    assert!(n >= 3, "tsne: need at least 3 points, got {n}");
    let d = points[0].len();
    assert!(points.iter().all(|p| p.len() == d), "tsne: ragged input");

    // Pairwise squared distances in high-dimensional space.
    let mut dist2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            dist2[i * n + j] = s;
            dist2[j * n + i] = s;
        }
    }

    // Conditional probabilities with per-point bandwidth found by binary
    // search on perplexity.
    let mut p = vec![0.0f64; n * n];
    let log_perp = cfg.perplexity.min((n - 1) as f64).ln();
    for i in 0..n {
        let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
        let mut beta = 1.0f64;
        for _ in 0..50 {
            let mut sum = 0.0;
            let mut sum_dp = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let e = (-beta * dist2[i * n + j]).exp();
                sum += e;
                sum_dp += beta * dist2[i * n + j] * e;
            }
            if sum <= 0.0 {
                break;
            }
            let entropy = (sum).ln() + sum_dp / sum;
            let diff = entropy - log_perp;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                let e = (-beta * dist2[i * n + j]).exp();
                p[i * n + j] = e;
                sum += e;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize.
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Gradient descent on the 2-D layout.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| {
            [
                rng.random_range(-1e-2..1e-2f64),
                rng.random_range(-1e-2..1e-2f64),
            ]
        })
        .collect();
    let mut velocity = vec![[0.0f64; 2]; n];
    let exaggeration_end = cfg.iterations / 4;

    for iter in 0..cfg.iterations {
        let exag = if iter < exaggeration_end {
            cfg.exaggeration
        } else {
            1.0
        };
        // Student-t affinities in the embedding.
        let mut q_unnorm = vec![0.0f64; n * n];
        let mut z = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let q = 1.0 / (1.0 + dx * dx + dy * dy);
                q_unnorm[i * n + j] = q;
                q_unnorm[j * n + i] = q;
                z += 2.0 * q;
            }
        }
        let z = z.max(1e-12);
        // Gradient and momentum update.
        let momentum = if iter < exaggeration_end { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = q_unnorm[i * n + j];
                let coeff = 4.0 * (exag * pij[i * n + j] - q / z) * q;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                velocity[i][k] = momentum * velocity[i][k] - cfg.learning_rate * grad[k];
                y[i][k] += velocity[i][k];
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs must remain separated in 2-D.
    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut points = Vec::new();
        for i in 0..40 {
            let offset = if i < 20 { 0.0f32 } else { 20.0 };
            points.push(vec![
                offset + rng.random_range(-0.5..0.5f32),
                offset + rng.random_range(-0.5..0.5f32),
                rng.random_range(-0.5..0.5f32),
            ]);
        }
        let layout = tsne(
            &points,
            &TsneConfig {
                perplexity: 10.0,
                iterations: 250,
                ..TsneConfig::default()
            },
        );
        // Mean intra-blob distance must be far below inter-blob distance.
        let dist = |a: [f64; 2], b: [f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let centroid = |pts: &[[f64; 2]]| {
            let n = pts.len() as f64;
            [
                pts.iter().map(|p| p[0]).sum::<f64>() / n,
                pts.iter().map(|p| p[1]).sum::<f64>() / n,
            ]
        };
        let c1 = centroid(&layout[..20]);
        let c2 = centroid(&layout[20..]);
        let between = dist(c1, c2);
        let within: f64 = layout[..20].iter().map(|&p| dist(p, c1)).sum::<f64>() / 20.0;
        assert!(
            between > 2.0 * within,
            "blobs not separated: between {between}, within {within}"
        );
    }

    #[test]
    fn output_is_finite_and_seeded() {
        let points: Vec<Vec<f32>> = (0..10)
            .map(|i| vec![i as f32, (i * i) as f32 * 0.1])
            .collect();
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne(&points, &cfg);
        let b = tsne(&points, &cfg);
        assert_eq!(a, b, "same seed → same layout");
        assert!(a.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn rejects_tiny_inputs() {
        let _ = tsne(&[vec![0.0], vec![1.0]], &TsneConfig::default());
    }
}
