//! The common prediction interface shared by CasCN, its variants, and all
//! baselines — Definition 2's predictor function `f(·)`.

use cascn_cascades::Cascade;
use cascn_nn::metrics;

use crate::error::CascnError;
use crate::parallel::parallel_map;
use crate::{CascnModel, GlModel, PathModel};

/// A trained cascade-size predictor: maps an observed cascade prefix to the
/// predicted log-increment `ln(1 + ΔS)`.
///
/// Predictors are `Sync`: prediction is read-only, and both offline
/// evaluation and the serving layer fan batches out across threads.
pub trait SizePredictor: Sync {
    /// Display name used in experiment tables.
    fn name(&self) -> String;

    /// Predicted `ln(1 + ΔS)` for `cascade` observed over `[0, window)`.
    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32;

    /// Predicted log-increments for a whole batch, fanned across `threads`
    /// workers (`1` = a plain serial loop, `0` = all cores). Output order
    /// matches the input and — because each prediction is a pure function
    /// of its cascade — is bit-identical for any thread count.
    ///
    /// This is the single batched-inference entry point: offline
    /// evaluation ([`try_evaluate`]) and the `cascn-serve` micro-batcher
    /// both route through it, so the two paths cannot drift apart.
    fn predict_many(&self, cascades: &[Cascade], window: f64, threads: usize) -> Vec<f32> {
        parallel_map(threads, cascades, |_, c| self.predict_log(c, window))
    }
}

/// Evaluates a predictor's MSLE (Eq. 20) over a cascade set.
///
/// # Panics
/// Panics if `cascades` is empty. Callers that can legitimately see an
/// empty split (e.g. after lenient loading quarantined everything) should
/// use [`try_evaluate`] instead.
pub fn evaluate(model: &(dyn SizePredictor + Sync), cascades: &[Cascade], window: f64) -> f32 {
    assert!(!cascades.is_empty(), "evaluate: empty cascade set");
    // lint: allow(no-panic) — documented panicking wrapper; the fallible route is try_evaluate
    try_evaluate(model, cascades, window, 1).expect("non-empty by assertion")
}

/// [`evaluate`] with an empty-set error instead of a panic, fanned out
/// across `threads` workers (`1` = serial, `0` = all cores). Prediction is
/// read-only per cascade and results are reduced in cascade order, so the
/// score is identical for any thread count.
pub fn try_evaluate(
    model: &(dyn SizePredictor + Sync),
    cascades: &[Cascade],
    window: f64,
    threads: usize,
) -> Result<f32, CascnError> {
    if cascades.is_empty() {
        return Err(CascnError::EmptyDataset(
            "no cascades to evaluate — every cascade was filtered or quarantined".into(),
        ));
    }
    let preds = model.predict_many(cascades, window, threads);
    let labels: Vec<usize> = cascades.iter().map(|c| c.increment_size(window)).collect();
    Ok(metrics::msle(&preds, &labels))
}

impl SizePredictor for CascnModel {
    fn name(&self) -> String {
        "CasCN".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        CascnModel::predict_log(self, cascade, window)
    }

    /// Parallel override: an explicit `1` stays serial, but the auto
    /// setting (`0`) defers to the model's configured worker pool so the
    /// CLI's `--threads` flag governs batch inference too.
    fn predict_many(&self, cascades: &[Cascade], window: f64, threads: usize) -> Vec<f32> {
        let threads = if threads == 0 { self.config().threads } else { threads };
        parallel_map(threads, cascades, |_, c| self.predict_log(c, window))
    }
}

impl SizePredictor for GlModel {
    fn name(&self) -> String {
        "CasCN-GL".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        GlModel::predict_log(self, cascade, window)
    }
}

impl SizePredictor for PathModel {
    fn name(&self) -> String {
        "CasCN-Path".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        PathModel::predict_log(self, cascade, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::{Cascade, Event};

    struct ConstPredictor(f32);

    impl SizePredictor for ConstPredictor {
        fn name(&self) -> String {
            "const".into()
        }

        fn predict_log(&self, _: &Cascade, _: f64) -> f32 {
            self.0
        }
    }

    fn cascade_with_growth(extra_after: usize) -> Cascade {
        let mut events = vec![Event { user: 0, parent: None, time: 0.0 }];
        for i in 0..extra_after {
            events.push(Event {
                user: 1 + i as u64,
                parent: Some(0),
                time: 100.0 + i as f64,
            });
        }
        Cascade::new(1, 0.0, events)
    }

    #[test]
    fn evaluate_scores_perfect_predictor_zero() {
        let c = cascade_with_growth(5);
        let target = cascn_nn::metrics::log_label(5);
        let m = ConstPredictor(target);
        assert!(evaluate(&m, &[c], 50.0).abs() < 1e-6);
    }

    #[test]
    fn evaluate_penalizes_wrong_predictor() {
        let c = cascade_with_growth(5);
        let m = ConstPredictor(0.0);
        let expected = cascn_nn::metrics::log_label(5).powi(2);
        assert!((evaluate(&m, &[c], 50.0) - expected).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty cascade set")]
    fn evaluate_rejects_empty_set() {
        let m = ConstPredictor(0.0);
        let _ = evaluate(&m, &[], 1.0);
    }

    #[test]
    fn try_evaluate_reports_empty_set_as_error() {
        let m = ConstPredictor(0.0);
        let err = try_evaluate(&m, &[], 1.0, 1).unwrap_err();
        assert!(matches!(err, CascnError::EmptyDataset(_)), "{err}");
    }

    #[test]
    fn default_predict_many_is_an_ordered_loop() {
        struct Echo;
        impl SizePredictor for Echo {
            fn name(&self) -> String {
                "echo".into()
            }
            fn predict_log(&self, c: &Cascade, _: f64) -> f32 {
                c.final_size() as f32
            }
        }
        let cascades: Vec<Cascade> = (1..=7).map(cascade_with_growth).collect();
        let expect: Vec<f32> = cascades.iter().map(|c| c.final_size() as f32).collect();
        // Works through a trait object (the serving registry's view) and is
        // identical for any thread count.
        let dyn_model: &dyn SizePredictor = &Echo;
        for threads in [1, 3, 0] {
            assert_eq!(dyn_model.predict_many(&cascades, 9.0, threads), expect);
        }
    }

    #[test]
    fn try_evaluate_is_thread_count_invariant() {
        let cascades: Vec<Cascade> = (1..=9).map(cascade_with_growth).collect();
        let m = ConstPredictor(0.7);
        let serial = try_evaluate(&m, &cascades, 50.0, 1).unwrap();
        for threads in [2, 4, 0] {
            let threaded = try_evaluate(&m, &cascades, 50.0, threads).unwrap();
            assert_eq!(serial.to_bits(), threaded.to_bits(), "threads={threads}");
        }
        assert_eq!(serial.to_bits(), evaluate(&m, &cascades, 50.0).to_bits());
    }
}
