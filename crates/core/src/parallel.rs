//! Deterministic data-parallel execution on scoped threads.
//!
//! CasCN's per-cascade pipeline (CasLaplacian → Chebyshev bases →
//! RNN-over-snapshots) is embarrassingly parallel across cascades, and
//! within a mini-batch every example's forward/backward pass is independent
//! of the others. This module is the single fan-out primitive the whole
//! workspace uses to exploit that:
//!
//! * [`parallel_map`] applies a pure function to every item of a slice on a
//!   pool of scoped worker threads and returns the results **in item
//!   order**, regardless of which worker computed what, when. Work is
//!   distributed dynamically (an atomic cursor), so stragglers — one huge
//!   cascade among many small ones — do not idle the other workers.
//! * `threads <= 1` runs inline on the calling thread with no pool at all:
//!   the exact serial path, preserved for `--threads 1`.
//!
//! # Determinism contract
//!
//! `parallel_map(t, items, f)` returns the same `Vec` for every `t` as long
//! as `f` is a pure function of `(index, item)`. Training builds on this:
//! workers compute per-example losses and gradients, and the caller reduces
//! them *in example-index order* (see `ParamStore::merge_grads`), so
//! threaded training is bit-identical to serial — the property the
//! resume-parity guarantee and `tests/thread_parity.rs` depend on.
//!
//! No external dependencies: plain `std::thread::scope`, one allocation per
//! call, no channels.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested worker count: `0` means "use all available
/// parallelism" (the `--threads` CLI default); any other value is taken
/// as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Applies `f(index, &item)` to every item and returns the results in item
/// order.
///
/// `threads` is resolved via [`resolve_threads`] and clamped to the item
/// count; a resolved count of 1 (or a slice with fewer than two items) runs
/// inline on the calling thread without spawning anything.
///
/// `f` must be a pure function of its arguments for the determinism
/// contract to hold; it may freely read shared state (`&ParamStore`, model
/// clones) since it only gets `&self` access.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Claim items one at a time off the shared cursor; buffer
                // results locally and publish them under a single lock per
                // worker so the mutex is never on the hot path.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                // lint: allow(no-panic) — lock poisoning implies a sibling worker panicked, which the scope is already propagating
                let mut published = slots.lock().expect("no worker panicked holding the lock");
                for (i, r) in local {
                    published[i] = Some(r);
                }
            });
        }
    });

    slots
        .into_inner()
        // lint: allow(no-panic) — scope exit joined every worker; the mutex cannot be held or poisoned here
        .expect("workers joined by scope exit")
        .into_iter()
        // lint: allow(no-panic) — the atomic cursor hands each index to exactly one worker, so every slot is filled
        .map(|r| r.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_matches_serial_exactly() {
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let f = |_: usize, x: &f32| (x.sin() * 1e6).to_bits();
        let serial = parallel_map(1, &items, f);
        for threads in [2, 4, 16] {
            assert_eq!(parallel_map(threads, &items, f), serial, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(64, &[1u32, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        // And the auto setting still produces ordered results.
        let items: Vec<usize> = (0..50).collect();
        assert_eq!(parallel_map(0, &items, |_, &x| x), items);
    }

    #[test]
    fn workers_share_read_only_state() {
        let table: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let items: Vec<usize> = (0..32).collect();
        let out = parallel_map(4, &items, |_, &i| table[i] + 1.0);
        assert_eq!(out[31], 32.0);
    }
}
