//! CasCN model configuration and the Table IV / Table V variant space.

/// How the largest eigenvalue of the CasLaplacian is obtained for Chebyshev
/// scaling (Table V compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LambdaMax {
    /// Compute the exact value per cascade by power iteration
    /// (`λmax = real` in Table V — the better-performing choice).
    Exact,
    /// Use the paper's shortcut `λ_max ≈ 2`.
    Approx2,
}

/// Which recurrent cell wraps the graph convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecurrentKind {
    /// ChebConv-LSTM with peepholes (Eq. 12–14) — the full CasCN.
    Lstm,
    /// ChebConv-GRU (the `CasCN-GRU` variant).
    Gru,
}

/// Which Laplacian drives the spectral convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaplacianKind {
    /// The directed CasLaplacian `Δ_c` of Eq. 8 (full CasCN).
    Directed,
    /// The symmetric normalized Laplacian of Eq. 9 over the symmetrized
    /// cascade (the `CasCN-Undirected` variant).
    Undirected,
}

/// Which compute kernel carries the Chebyshev convolution stack.
///
/// Both kernels implement the same convolution `W ∗G X = Σ_k T_k(Δ̃_c)·X·W_k`
/// and agree within the accuracy gate; they differ in cost and float
/// rounding. Mixing kernels across a serving fleet is prevented by folding
/// the kernel into the spectral-cache fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChebKernel {
    /// Operator form (the default): keep the scaled Laplacian sparse and
    /// carry the Chebyshev recurrence on `n×d` feature blocks —
    /// `T_k·X = 2·Δ̃·(T_{k-1}·X) − T_{k-2}·X` — so no dense `n×n` basis is
    /// ever materialized.
    Sparse,
    /// Materialize the `K+1` dense `T_k(Δ̃_c)` bases and multiply per order
    /// (the pre-optimization path; kept for gradient checking and
    /// A/B validation).
    Dense,
}

/// How snapshot hidden states are re-weighted over time (Section IV-D).
///
/// The paper argues for a *learned* discrete decay (Eq. 15–16) over the
/// parametric kernels used by prior work; the parametric options here allow
/// the ablation benchmark to quantify that choice. Parametric kernels use
/// fixed shape constants (an assumed prior — exactly what the paper
/// criticizes), with `t` normalized by the observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecayMode {
    /// The paper's learned per-interval multipliers `λ_m` (Eq. 15–16).
    Learned,
    /// Power-law `φ(t) = (t/T + 0.1)^{-1.5}` (social-network prior).
    PowerLaw,
    /// Exponential `φ(t) = e^{-t/T}` (financial-data prior).
    Exponential,
    /// Rayleigh `φ(t) = e^{-(t/T)²}` (epidemiology prior).
    Rayleigh,
    /// No re-weighting (the `CasCN-Time` variant).
    None,
}

impl DecayMode {
    /// The fixed kernel value at normalized time `x = t / T` (1.0 for
    /// `Learned` / `None`, which do not use a fixed kernel).
    pub fn kernel(&self, x: f64) -> f32 {
        let x = x.clamp(0.0, 1.0);
        match self {
            DecayMode::PowerLaw => ((x + 0.1).powf(-1.5)) as f32,
            DecayMode::Exponential => (-x).exp() as f32,
            DecayMode::Rayleigh => (-(x * x)).exp() as f32,
            DecayMode::Learned | DecayMode::None => 1.0,
        }
    }
}

/// How the per-snapshot hidden states are aggregated into the cascade
/// representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pooling {
    /// The paper's sum over time (Eq. 17).
    Sum,
    /// Additive attention over snapshots — the paper's future-work
    /// extension ("introducing attention mechanisms to transform CasCN
    /// into an inductive model", §VI). Attention weights are learned
    /// end-to-end; decay re-weighting still applies first.
    Attention,
}

/// Which prediction task the model is trained for.
///
/// The spectral-conv recurrent stack is shared; the task selects the head
/// on top of the pooled cascade representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskKind {
    /// Macroscopic cascade-size regression (the paper's task): an MLP
    /// predicting `ln(1 + ΔS)`.
    #[default]
    SizeRegression,
    /// Microscopic next-user ranking (Topo-LSTM's task): a masked softmax
    /// over the user vocabulary predicting who adopts next.
    NextUser,
}

impl TaskKind {
    /// CLI / config-file name of the task.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::SizeRegression => "size",
            TaskKind::NextUser => "next-user",
        }
    }

    /// Parses a CLI task name (`size` | `next-user`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "size" => Some(TaskKind::SizeRegression),
            "next-user" => Some(TaskKind::NextUser),
            _ => None,
        }
    }
}

/// Hyper-parameters of the CasCN family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascnConfig {
    /// Chebyshev order `K` (paper: 2; Table V sweeps {1, 2, 3}).
    pub k: usize,
    /// Hidden state size `d_h` (paper: 32).
    pub hidden: usize,
    /// Hidden width of the two-layer prediction MLP (paper: 32 → 16 → 1).
    pub mlp_hidden: usize,
    /// Cascades are truncated/padded to this many observed nodes
    /// (paper pads to 100; CPU-scale default is smaller).
    pub max_nodes: usize,
    /// Cap on the sub-cascade snapshot sequence length.
    pub max_steps: usize,
    /// Number of learned time-decay intervals `l` (Eq. 15).
    pub decay_intervals: usize,
    /// Teleport probability `α` of the transition matrix (Eq. 7).
    pub alpha: f32,
    /// λ_max strategy (Table V).
    pub lambda_max: LambdaMax,
    /// Recurrent cell flavor.
    pub recurrent: RecurrentKind,
    /// Laplacian flavor.
    pub laplacian: LaplacianKind,
    /// Time-decay mode (Eq. 15–16 by default; `None` = `CasCN-Time`).
    pub decay: DecayMode,
    /// Chebyshev convolution kernel (sparse operator form by default).
    pub cheb_kernel: ChebKernel,
    /// Temporal pooling (the paper's sum, or the attention extension).
    pub pooling: Pooling,
    /// Which task head sits on the pooled representation.
    pub task: TaskKind,
    /// Size of the user-id space for the next-user head: user `u` maps to
    /// table row `u + 1` when `u < vocab_users`, row 0 (UNK) otherwise.
    /// Ignored (and conventionally 0) for size regression. Must match
    /// between training and serving — it shapes the head's parameters,
    /// exactly like `hidden`.
    pub vocab_users: usize,
    /// Parameter-initialization seed.
    pub seed: u64,
    /// Worker threads for cascade preprocessing and prediction sweeps:
    /// `1` (the default) is the exact serial path, `0` means all available
    /// parallelism. Results are identical for any value (see
    /// [`crate::parallel`]).
    pub threads: usize,
}

impl Default for CascnConfig {
    fn default() -> Self {
        Self {
            k: 2,
            hidden: 16,
            mlp_hidden: 16,
            max_nodes: 30,
            max_steps: 12,
            decay_intervals: 6,
            alpha: 0.85,
            lambda_max: LambdaMax::Exact,
            recurrent: RecurrentKind::Lstm,
            laplacian: LaplacianKind::Directed,
            decay: DecayMode::Learned,
            cheb_kernel: ChebKernel::Sparse,
            pooling: Pooling::Sum,
            task: TaskKind::SizeRegression,
            vocab_users: 0,
            seed: 42,
            threads: 1,
        }
    }
}

impl CascnConfig {
    /// The paper-scale configuration (hidden 32, 100-node padding) — used by
    /// the `--full` experiment mode; expensive on one CPU core.
    pub fn paper_scale() -> Self {
        Self {
            hidden: 32,
            max_nodes: 100,
            max_steps: 100,
            ..Self::default()
        }
    }

    /// Applies a Table IV variant to this configuration. `Variant::Gl` and
    /// `Variant::Path` change the architecture rather than the config and
    /// are handled by [`crate::GlModel`] / [`crate::PathModel`].
    pub fn with_variant(mut self, variant: Variant) -> Self {
        match variant {
            Variant::Full | Variant::Gl | Variant::Path => {}
            Variant::Gru => self.recurrent = RecurrentKind::Gru,
            Variant::Undirected => self.laplacian = LaplacianKind::Undirected,
            Variant::NoTimeDecay => self.decay = DecayMode::None,
        }
        self
    }
}

/// The model family of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full CasCN.
    Full,
    /// `CasCN-GRU`: GRU gating instead of LSTM.
    Gru,
    /// `CasCN-GL`: per-snapshot GCN followed by a dense LSTM.
    Gl,
    /// `CasCN-Path`: random-walk path input instead of snapshots.
    Path,
    /// `CasCN-Undirected`: symmetric Laplacian.
    Undirected,
    /// `CasCN-Time`: no time-decay weighting.
    NoTimeDecay,
}

impl Variant {
    /// All variants in Table IV order.
    pub fn all() -> [Variant; 6] {
        [
            Variant::Full,
            Variant::Gru,
            Variant::Path,
            Variant::Gl,
            Variant::Undirected,
            Variant::NoTimeDecay,
        ]
    }

    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Full => "CasCN",
            Variant::Gru => "CasCN-GRU",
            Variant::Gl => "CasCN-GL",
            Variant::Path => "CasCN-Path",
            Variant::Undirected => "CasCN-Undirected",
            Variant::NoTimeDecay => "CasCN-Time",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = CascnConfig::default();
        assert_eq!(c.k, 2, "paper selects K = 2");
        assert_eq!(c.lambda_max, LambdaMax::Exact, "paper: exact λmax is better");
        assert_eq!(c.decay, DecayMode::Learned);
        assert_eq!(c.recurrent, RecurrentKind::Lstm);
    }

    #[test]
    fn variants_modify_config() {
        let base = CascnConfig::default();
        assert_eq!(
            base.with_variant(Variant::Gru).recurrent,
            RecurrentKind::Gru
        );
        assert_eq!(
            base.with_variant(Variant::Undirected).laplacian,
            LaplacianKind::Undirected
        );
        assert_eq!(
            base.with_variant(Variant::NoTimeDecay).decay,
            DecayMode::None
        );
        assert_eq!(base.with_variant(Variant::Full), base);
    }

    #[test]
    fn task_names_round_trip() {
        for task in [TaskKind::SizeRegression, TaskKind::NextUser] {
            assert_eq!(TaskKind::parse(task.name()), Some(task));
        }
        assert_eq!(TaskKind::parse("macro"), None);
        assert_eq!(TaskKind::default(), TaskKind::SizeRegression);
    }

    #[test]
    fn variant_names_match_table_iv() {
        let names: Vec<&str> = Variant::all().iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec![
                "CasCN",
                "CasCN-GRU",
                "CasCN-Path",
                "CasCN-GL",
                "CasCN-Undirected",
                "CasCN-Time"
            ]
        );
    }
}

#[cfg(test)]
mod decay_tests {
    use super::*;

    #[test]
    fn kernels_decay_monotonically() {
        for mode in [DecayMode::PowerLaw, DecayMode::Exponential, DecayMode::Rayleigh] {
            let mut prev = mode.kernel(0.0);
            for i in 1..=10 {
                let v = mode.kernel(i as f64 / 10.0);
                assert!(v <= prev, "{mode:?} not monotone at {i}");
                assert!(v > 0.0);
                prev = v;
            }
        }
    }

    #[test]
    fn learned_and_none_have_unit_kernel() {
        assert_eq!(DecayMode::Learned.kernel(0.5), 1.0);
        assert_eq!(DecayMode::None.kernel(0.5), 1.0);
    }
}
