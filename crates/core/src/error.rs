//! The structured error taxonomy of the training runtime.
//!
//! Load and train paths return [`CascnError`] instead of panicking, so the
//! CLI can exit with a clean one-line message and callers can distinguish
//! recoverable conditions (a corrupt checkpoint, a malformed dataset) from
//! programming errors (which still panic).

use std::io;

use cascn_cascades::io::ReadError;

/// Everything that can go wrong on the load/train/predict paths.
#[derive(Debug)]
pub enum CascnError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed dataset input, with the 1-based offending line.
    DataParse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A checkpoint file is corrupt or from an unknown format version.
    Checkpoint(String),
    /// A checkpoint file ends before its checksum footer — the signature of
    /// a truncated copy (crash mid-write on a non-atomic filesystem, a
    /// partial download). Distinct from [`CascnError::Checkpoint`] so
    /// callers can tell "re-fetch the file" from "the file is garbage".
    CheckpointTruncated {
        /// Byte offset at which the file ended (where the remainder of the
        /// checkpoint, up to its footer, was expected).
        offset: usize,
        /// Explanation.
        message: String,
    },
    /// A checkpoint does not match the model architecture it is being loaded
    /// into (shape-header or parameter-count mismatch).
    Architecture(String),
    /// Invalid configuration or option combination.
    Config(String),
    /// A failure inside the training loop itself.
    Train(String),
    /// An operation that needs at least one example received none — e.g.
    /// evaluating a metric over a split whose cascades were all filtered or
    /// quarantined away.
    EmptyDataset(String),
}

impl std::fmt::Display for CascnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CascnError::Io(e) => write!(f, "io error: {e}"),
            CascnError::DataParse { line, message } => {
                write!(f, "data parse error at line {line}: {message}")
            }
            CascnError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            CascnError::CheckpointTruncated { offset, message } => {
                write!(f, "checkpoint truncated at byte {offset}: {message}")
            }
            CascnError::Architecture(m) => write!(f, "architecture mismatch: {m}"),
            CascnError::Config(m) => write!(f, "config error: {m}"),
            CascnError::Train(m) => write!(f, "training error: {m}"),
            CascnError::EmptyDataset(m) => write!(f, "empty dataset: {m}"),
        }
    }
}

impl std::error::Error for CascnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CascnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CascnError {
    fn from(e: io::Error) -> Self {
        CascnError::Io(e)
    }
}

impl From<ReadError> for CascnError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Io(e) => CascnError::Io(e),
            ReadError::Parse { line, message } => CascnError::DataParse { line, message },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let errors: Vec<CascnError> = vec![
            io::Error::other("disk gone").into(),
            ReadError::Parse { line: 12, message: "bad parent".into() }.into(),
            CascnError::Checkpoint("checksum mismatch".into()),
            CascnError::CheckpointTruncated { offset: 512, message: "missing footer".into() },
            CascnError::Architecture("hidden 8 vs 16".into()),
            CascnError::EmptyDataset("no test cascades after filtering".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.contains('\n'), "multi-line error display: {s}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn truncation_display_carries_byte_offset() {
        let e = CascnError::CheckpointTruncated {
            offset: 4096,
            message: "missing checksum footer".into(),
        };
        let s = e.to_string();
        assert!(s.contains("truncated at byte 4096"), "{s}");
        assert!(s.contains("missing checksum footer"), "{s}");
    }

    #[test]
    fn read_error_conversion_keeps_line() {
        let e: CascnError = ReadError::Parse { line: 7, message: "x".into() }.into();
        assert!(matches!(e, CascnError::DataParse { line: 7, .. }));
    }
}
