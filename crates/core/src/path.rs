//! `CasCN-Path` (Table IV, Fig. 6): the sampling ablation — random-walk
//! node sequences with 50-dimensional user embeddings feed an LSTM instead
//! of the sub-cascade snapshot sequence. Its gap to full CasCN measures the
//! value of snapshot sampling.

use cascn_autograd::{ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_graph::walks::{sample_walks, WalkConfig};
use cascn_nn::train::History;
use cascn_nn::{Activation, Embedding, LstmCell, Mlp, Vocab};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::CascnConfig;
use crate::parallel::parallel_map;
use crate::trainer::{predict_with, train_loop, TrainOpts};

/// A cascade reduced to random-walk sequences of embedding-table rows.
#[derive(Debug, Clone)]
pub struct PathSample {
    /// Walks as vocabulary indices.
    pub walks: Vec<Vec<usize>>,
    /// Ground-truth log-increment.
    pub label_log: f32,
    /// Raw increment label.
    pub increment: usize,
}

/// The random-walk ablation model.
#[derive(Debug, Clone)]
pub struct PathModel {
    cfg: CascnConfig,
    store: ParamStore,
    vocab: Vocab,
    embedding: Embedding,
    lstm: LstmCell,
    mlp: Mlp,
    walk_cfg: WalkConfig,
    embed_dim: usize,
}

impl PathModel {
    /// User-embedding width (DeepCas / the paper's setup: 50).
    pub const EMBED_DIM: usize = 50;

    /// Builds the model. The vocabulary is constructed from the *observed*
    /// users of the training cascades, so test-time unknowns map to UNK.
    pub fn new(cfg: CascnConfig, train: &[Cascade], window: f64) -> Self {
        let vocab = Vocab::build(
            train
                .iter()
                .flat_map(|c| c.observe(window).users().into_iter()),
            0,
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let embed_dim = Self::EMBED_DIM;
        let embedding = Embedding::new(
            &mut store,
            "path.embed",
            vocab.table_size(),
            embed_dim,
            &mut rng,
        );
        let lstm = LstmCell::new(&mut store, "path.lstm", embed_dim, cfg.hidden, &mut rng);
        let mlp = Mlp::new(
            &mut store,
            "path.mlp",
            &[cfg.hidden, cfg.mlp_hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            cfg,
            store,
            vocab,
            embedding,
            lstm,
            mlp,
            walk_cfg: WalkConfig {
                num_walks: 12,
                walk_length: 8,
            },
            embed_dim,
        }
    }

    /// Number of known users in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Converts a cascade into its walk sample. Walk sampling is seeded by
    /// the cascade id so preprocessing is deterministic.
    pub fn preprocess(&self, cascade: &Cascade, window: f64) -> PathSample {
        let observed = cascade.observe(window);
        let g = observed.graph();
        let users = observed.users();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ cascade.id.wrapping_mul(0x9E37_79B9));
        let walks = sample_walks(&g, self.walk_cfg, &mut rng)
            .into_iter()
            .map(|walk| walk.into_iter().map(|v| self.vocab.lookup(users[v])).collect())
            .collect();
        let increment = cascade.increment_size(window);
        PathSample {
            walks,
            label_log: cascn_nn::metrics::log_label(increment),
            increment,
        }
    }

    /// Forward pass: per-walk LSTM over user embeddings, mean of final walk
    /// states, MLP head.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, sample: &PathSample) -> Var {
        let mut finals = Vec::with_capacity(sample.walks.len());
        for walk in &sample.walks {
            let emb = self.embedding.forward(tape, store, walk.clone());
            let inputs: Vec<Var> = (0..walk.len())
                .map(|i| tape.slice_rows(emb, i, 1))
                .collect();
            let hs = self.lstm.run(tape, store, &inputs, 1);
            let Some(&last) = hs.last() else {
                continue; // unreachable: the walk sampler never emits empty walks
            };
            finals.push(last);
        }
        let stacked = tape.concat_rows(&finals);
        let pooled = tape.mean_rows(stacked);
        debug_assert_eq!(tape.value(pooled).cols(), self.cfg.hidden);
        let _ = self.embed_dim;
        self.mlp.forward(tape, store, pooled)
    }

    /// Trains the model.
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples: Vec<PathSample> =
            parallel_map(self.cfg.threads, train, |_, c| self.preprocess(c, window));
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples: Vec<PathSample> =
            parallel_map(self.cfg.threads, val, |_, c| self.preprocess(c, window));
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PathSample| {
            model.forward(tape, store, s)
        };
        train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }

    /// Predicted log-increment for a cascade.
    pub fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = self.preprocess(cascade, window);
        let forward = |tape: &mut Tape, store: &ParamStore, s: &PathSample| {
            self.forward(tape, store, s)
        };
        predict_with(&self.store, &forward, &sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};

    fn tiny_cfg() -> CascnConfig {
        CascnConfig {
            hidden: 4,
            mlp_hidden: 4,
            ..CascnConfig::default()
        }
    }

    fn data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 80,
            seed: 6,
            max_size: 100,
        })
        .generate()
        .filter_observed_size(3600.0, 2, 50)
    }

    #[test]
    fn vocab_is_built_from_training_users() {
        let d = data();
        let model = PathModel::new(tiny_cfg(), &d.cascades, 3600.0);
        assert!(model.vocab_size() > 10);
    }

    #[test]
    fn preprocess_is_deterministic() {
        let d = data();
        let model = PathModel::new(tiny_cfg(), &d.cascades, 3600.0);
        let a = model.preprocess(&d.cascades[0], 3600.0);
        let b = model.preprocess(&d.cascades[0], 3600.0);
        assert_eq!(a.walks, b.walks);
    }

    #[test]
    fn forward_is_finite_and_trains_one_epoch() {
        let d = data();
        let half = d.cascades.len() / 2;
        let mut model = PathModel::new(tiny_cfg(), &d.cascades[..half], 3600.0);
        let p = model.predict_log(&d.cascades[0], 3600.0);
        assert!(p.is_finite());
        let opts = TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        };
        let hist = model.fit(&d.cascades[..half], &d.cascades[half..], 3600.0, &opts);
        assert!(hist.records()[0].val_loss.is_finite());
    }
}
