//! The CasCN model (Fig. 2): ChebConv recurrence → time decay → sum
//! pooling → MLP.

use cascn_autograd::{AdamState, ParamId, ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_nn::{metrics, Activation, ChebConvGruCell, ChebConvLstmCell, Mlp, NextUserHead, TimeDecay};
use cascn_nn::train::History;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::{StopperState, TrainCheckpoint};
use crate::config::{CascnConfig, DecayMode, Pooling, RecurrentKind, TaskKind};
use crate::error::CascnError;
use crate::input::{preprocess, PreprocessedCascade};
use crate::parallel::parallel_map;
use crate::trainer::{
    predict_with, train_loop, train_loop_ranked, train_loop_resumable, CheckpointPolicy,
    TrainHooks, TrainOpts,
};


/// The recurrent core, selected by [`RecurrentKind`].
#[derive(Debug, Clone)]
enum Cell {
    Lstm(ChebConvLstmCell),
    Gru(ChebConvGruCell),
}

/// CasCN and its config-level variants (`CasCN-GRU`, `CasCN-Undirected`,
/// `CasCN-Time`, and the Table V parameter grid).
#[derive(Debug, Clone)]
pub struct CascnModel {
    cfg: CascnConfig,
    store: ParamStore,
    cell: Cell,
    decay: TimeDecay,
    /// Attention projection (used only under [`Pooling::Attention`]).
    att_w: ParamId,
    /// Attention scoring vector.
    att_v: ParamId,
    mlp: Mlp,
    /// The microscopic next-user head (present iff `cfg.task == NextUser`).
    /// Registered after every size-task parameter, so size-regression
    /// checkpoints are layout-identical with or without this code path.
    next_head: Option<NextUserHead>,
}

/// One next-user training/evaluation example: the preprocessed cascade
/// prefix, the infected-user mask over the head's table, and the row of the
/// true next adopter.
#[derive(Debug, Clone)]
pub struct NextUserSample {
    /// The shared spectral-conv input for the observed prefix.
    pub pre: PreprocessedCascade,
    /// `mask[row]` is `true` for every already-infected user (and UNK).
    pub mask: Vec<bool>,
    /// Table row of the first adopter after the observation window.
    pub target_row: usize,
    /// That adopter's global user id.
    pub target_user: u64,
}

impl CascnModel {
    /// Builds an untrained model with seeded initialization.
    pub fn new(cfg: CascnConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let cell = match cfg.recurrent {
            RecurrentKind::Lstm => Cell::Lstm(ChebConvLstmCell::new(
                &mut store,
                "cascn.cell",
                cfg.k,
                cfg.max_nodes,
                cfg.hidden,
                &mut rng,
            )),
            RecurrentKind::Gru => Cell::Gru(ChebConvGruCell::new(
                &mut store,
                "cascn.cell",
                cfg.k,
                cfg.max_nodes,
                cfg.hidden,
                &mut rng,
            )),
        };
        let decay = TimeDecay::new(&mut store, "cascn.decay", cfg.decay_intervals);
        let att_w = store.register(
            "cascn.att.w",
            cascn_nn::init::xavier_uniform(cfg.hidden, cfg.hidden, &mut rng),
        );
        let att_v = store.register(
            "cascn.att.v",
            cascn_nn::init::xavier_uniform(cfg.hidden, 1, &mut rng),
        );
        let mlp = Mlp::new(
            &mut store,
            "cascn.mlp",
            &[cfg.hidden, cfg.mlp_hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        let next_head = match cfg.task {
            TaskKind::SizeRegression => None,
            TaskKind::NextUser => {
                assert!(
                    cfg.vocab_users >= 1,
                    "task next-user requires vocab_users >= 1"
                );
                Some(NextUserHead::new(
                    &mut store,
                    "cascn.next",
                    cfg.hidden,
                    cfg.vocab_users + 1,
                    &mut rng,
                ))
            }
        };
        Self {
            cfg,
            store,
            cell,
            decay,
            att_w,
            att_v,
            mlp,
            next_head,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &CascnConfig {
        &self.cfg
    }

    /// The parameter store (for inspection and tests).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Replaces the parameter store (e.g. with a snapshot captured by a
    /// [`CascnModel::fit_observed`] observer).
    ///
    /// # Panics
    /// Panics if the store's parameter count differs from this model's.
    pub fn set_params(&mut self, store: ParamStore) {
        assert_eq!(
            store.len(),
            self.store.len(),
            "set_params: parameter count mismatch"
        );
        self.store = store;
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Forward pass to the pooled cascade representation `h(C_i(t))`
    /// (Eq. 17), a `1 x hidden` variable.
    fn forward_representation(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &PreprocessedCascade,
    ) -> Var {
        let operands = sample.operands(tape);
        let inputs: Vec<Var> = sample
            .snapshots
            .iter()
            .map(|s| tape.constant(s.clone()))
            .collect();
        let hs = match &self.cell {
            Cell::Lstm(cell) => cell.run(tape, store, &operands, &inputs, sample.n),
            Cell::Gru(cell) => cell.run(tape, store, &operands, &inputs, sample.n),
        };
        // Eq. 16: re-weight each hidden state by its interval's λ.
        let weighted: Vec<Var> = hs
            .iter()
            .enumerate()
            .map(|(t, &h)| match self.cfg.decay {
                DecayMode::Learned => {
                    self.decay
                        .apply(tape, store, h, sample.times[t], sample.window)
                }
                DecayMode::None => h,
                kernel => {
                    let k = kernel.kernel(sample.times[t] / sample.window.max(f64::MIN_POSITIVE));
                    tape.scale(h, k)
                }
            })
            .collect();
        match self.cfg.pooling {
            // Eq. 17: sum over time, then over nodes.
            Pooling::Sum => {
                let mut acc: Option<Var> = None;
                for &w in &weighted {
                    acc = Some(match acc {
                        Some(a) => tape.add(a, w),
                        None => w,
                    });
                }
                // lint: allow(no-panic) — snapshots() emits ≥ 1 matrix (max_steps ≥ 1 is asserted), so the fold is never empty
                let summed = acc.expect("at least one snapshot");
                tape.sum_rows(summed)
            }
            // Future-work extension: additive attention over snapshots.
            Pooling::Attention => {
                let pooled: Vec<Var> = weighted.iter().map(|&w| tape.sum_rows(w)).collect();
                let stacked = tape.concat_rows(&pooled); // T x hidden
                let w = tape.param(store, self.att_w);
                let v = tape.param(store, self.att_v);
                let proj = tape.matmul(stacked, w);
                let act = tape.tanh(proj);
                let scores = tape.matmul(act, v); // T x 1
                let alpha = tape.softmax_col(scores);
                let ones = tape.constant(cascn_tensor::Matrix::full(1, self.cfg.hidden, 1.0));
                let tiled = tape.matmul(alpha, ones);
                let mixed = tape.hadamard(tiled, stacked);
                tape.sum_rows(mixed)
            }
        }
    }

    /// Full forward pass to the `1x1` predicted log-increment (Eq. 18).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &PreprocessedCascade,
    ) -> Var {
        let rep = self.forward_representation(tape, store, sample);
        self.mlp.forward(tape, store, rep)
    }

    /// Preprocesses a cascade set (Fig. 3 sampling + Laplacian + Chebyshev
    /// bases), fanned out across `cfg.threads` workers. Preprocessing is a
    /// pure per-cascade function and results come back in cascade order, so
    /// the output is identical for any thread count.
    fn preprocess_all(&self, cascades: &[Cascade], window: f64) -> Vec<PreprocessedCascade> {
        parallel_map(self.cfg.threads, cascades, |_, c| {
            preprocess(c, window, &self.cfg)
        })
    }

    /// Trains on `train`, early-stopping on `val` (Algorithm 2). Returns the
    /// loss history; the model keeps the best-validation parameters.
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples = self.preprocess_all(train, window);
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples = self.preprocess_all(val, window);
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();

        let model = self.clone(); // immutable view for the forward closure
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }

    /// [`CascnModel::fit`] with fault tolerance: optionally resumes from a
    /// [`TrainCheckpoint`] and/or writes periodic checkpoints per the
    /// [`CheckpointPolicy`]. An interrupted run resumed from its checkpoint
    /// finishes bit-identically to an uninterrupted one.
    pub fn fit_resumable(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
        resume: Option<&TrainCheckpoint>,
        checkpoint: Option<&CheckpointPolicy>,
    ) -> Result<History, CascnError> {
        let train_samples = self.preprocess_all(train, window);
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples = self.preprocess_all(val, window);
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        train_loop_resumable(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
            resume,
            checkpoint,
            &mut |_, _| {},
            TrainHooks::default(),
        )
    }

    /// [`CascnModel::fit`] with a per-epoch observer receiving the epoch
    /// index and the current parameters (used to trace metrics on
    /// sub-populations during training, as in Fig. 8).
    pub fn fit_observed(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
        observer: &mut dyn FnMut(usize, &ParamStore),
    ) -> History {
        let train_samples = self.preprocess_all(train, window);
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples = self.preprocess_all(val, window);
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        crate::trainer::train_loop_observed(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
            observer,
        )
    }

    /// Predicted log-increment `ln(1 + ΔS)` for a cascade.
    pub fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = preprocess(cascade, window, &self.cfg);
        self.predict_log_sample(&sample)
    }

    /// Predicted log-increment for an already-preprocessed sample — the
    /// entry point the serving layer uses after a spectral-cache hit
    /// ([`crate::preprocess_with_basis`]). `predict_log` is exactly
    /// `preprocess` followed by this, so cached and direct predictions are
    /// bit-identical.
    pub fn predict_log_sample(&self, sample: &PreprocessedCascade) -> f32 {
        let forward = |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            self.forward(tape, store, s)
        };
        predict_with(&self.store, &forward, sample)
    }

    /// Predicted log-increments for a batch of cascades, with preprocessing
    /// and the forward passes fanned out across `cfg.threads` workers.
    /// Output order matches the input and is identical for any thread count.
    pub fn predict_logs(&self, cascades: &[Cascade], window: f64) -> Vec<f32> {
        crate::predictor::SizePredictor::predict_many(self, cascades, window, self.cfg.threads)
    }

    /// The learned cascade representation `h(C_i(t))` — the vector Fig. 9
    /// visualizes.
    pub fn representation(&self, cascade: &Cascade, window: f64) -> Vec<f32> {
        let sample = preprocess(cascade, window, &self.cfg);
        let mut tape = Tape::new();
        let rep = self.forward_representation(&mut tape, &self.store, &sample);
        tape.value(rep).as_slice().to_vec()
    }

    /// Current time-decay multipliers `λ_m`.
    pub fn decay_values(&self) -> Vec<f32> {
        self.decay.values(&self.store)
    }

    /// Table row for a global user id: identity embedding with row 0
    /// reserved for out-of-vocabulary users. Users `0..vocab_users` map to
    /// rows `1..=vocab_users`; everything else folds to UNK.
    pub fn user_row(&self, user: u64) -> usize {
        match usize::try_from(user) {
            Ok(u) if u < self.cfg.vocab_users => u + 1,
            _ => 0,
        }
    }

    fn head(&self) -> &NextUserHead {
        self.next_head
            .as_ref()
            // lint: allow(no-panic) — internal invariant: the head exists whenever cfg.task == NextUser, which new() establishes for every next-user model
            .expect("next-user API requires cfg.task = next-user")
    }

    /// Infected-user mask over the head's table for an observed prefix:
    /// `mask[row]` is true for every user in `observed` plus the UNK row.
    pub fn infected_mask(&self, observed: &[u64]) -> Vec<bool> {
        let mut mask = vec![false; self.head().table_size()];
        mask[0] = true;
        for &u in observed {
            mask[self.user_row(u)] = true;
        }
        mask
    }

    /// Builds the next-user training example for a cascade prefix, or `None`
    /// when the prefix carries no supervision: nothing happens after the
    /// window, the next adopter is out of vocabulary, or (with a folding
    /// vocabulary) the target row is already infected.
    pub fn next_sample(&self, cascade: &Cascade, window: f64) -> Option<NextUserSample> {
        let observed = cascade.observed_size(window);
        let target = cascade.events.get(observed)?;
        let target_row = self.user_row(target.user);
        let prefix: Vec<u64> = cascade.events[..observed].iter().map(|e| e.user).collect();
        let mask = self.infected_mask(&prefix);
        if target_row == 0 || mask[target_row] {
            return None;
        }
        let pre = preprocess(cascade, window, &self.cfg);
        Some(NextUserSample {
            pre,
            mask,
            target_row,
            target_user: target.user,
        })
    }

    /// Next-event cross-entropy `-log p(u_next | C(t))` for one sample
    /// (a `1x1` variable on the tape).
    pub fn next_loss(&self, tape: &mut Tape, store: &ParamStore, sample: &NextUserSample) -> Var {
        let rep = self.forward_representation(tape, store, &sample.pre);
        self.head()
            .loss(tape, store, rep, &sample.mask, sample.target_row)
    }

    /// Trains the next-user head (and the shared recurrent stack) with
    /// next-event cross-entropy. Gradients are merged in example order by
    /// the shared trainer, so the result is bit-identical for any
    /// `cfg.threads`. Returns the loss history; the model keeps the
    /// best-validation parameters.
    pub fn fit_next_user(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let collect = |cascades: &[Cascade]| -> Vec<NextUserSample> {
            parallel_map(self.cfg.threads, cascades, |_, c| {
                self.next_sample(c, window)
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let train_samples = collect(train);
        let val_samples = collect(val);
        assert!(
            !train_samples.is_empty(),
            "fit_next_user: no trainable next-user example in the training split"
        );
        let model = self.clone();
        let loss = move |tape: &mut Tape, store: &ParamStore, s: &NextUserSample| {
            model.next_loss(tape, store, s)
        };
        train_loop_ranked(&mut self.store, &loss, &train_samples, &val_samples, opts)
    }

    /// Masked next-user probabilities over the head's table for an
    /// already-preprocessed prefix. Rows of users in `observed` (and UNK)
    /// have probability exactly `0.0`.
    pub fn next_probs(&self, sample: &PreprocessedCascade, observed: &[u64]) -> Vec<f32> {
        let mask = self.infected_mask(observed);
        let mut tape = Tape::new();
        let rep = self.forward_representation(&mut tape, &self.store, sample);
        self.head()
            .predict_probs(&mut tape, &self.store, rep, &mask)
    }

    /// Top-`k` next adopters `(user, probability)` for an
    /// already-preprocessed prefix — the entry point the serving layer uses
    /// after a spectral-cache hit, so cached and direct predictions are
    /// bit-identical. Already-infected users are excluded from the
    /// candidates; ties break toward the smaller user id.
    pub fn predict_next_sample(
        &self,
        sample: &PreprocessedCascade,
        observed: &[u64],
        k: usize,
    ) -> Vec<(u64, f32)> {
        let mask = self.infected_mask(observed);
        let probs = self.next_probs(sample, observed);
        let mut ranked: Vec<(usize, f32)> = (1..probs.len())
            .filter(|&row| !mask[row])
            .map(|row| (row, probs[row]))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.into_iter().map(|(row, p)| ((row - 1) as u64, p)).collect()
    }

    /// Top-`k` next adopters for a cascade observed up to `window`.
    /// Exactly `preprocess` + [`CascnModel::predict_next_sample`].
    pub fn predict_next(&self, cascade: &Cascade, window: f64, k: usize) -> Vec<(u64, f32)> {
        let sample = preprocess(cascade, window, &self.cfg);
        let observed: Vec<u64> = cascade.observe(window).users();
        self.predict_next_sample(&sample, &observed, k)
    }

    /// 0-based rank of the true next adopter among the uninfected candidate
    /// users (deterministic ties via [`metrics::rank_of`]), or `None` when
    /// the prefix has no in-vocabulary target. Feed these into
    /// [`metrics::hit_at_k`] / [`metrics::mean_average_precision`].
    pub fn next_user_rank(&self, cascade: &Cascade, window: f64) -> Option<usize> {
        let s = self.next_sample(cascade, window)?;
        let observed: Vec<u64> = cascade.observe(window).users();
        let probs = self.next_probs(&s.pre, &observed);
        let mut scores = Vec::with_capacity(probs.len());
        let mut target_idx = None;
        for (row, &p) in probs.iter().enumerate().skip(1) {
            if s.mask[row] {
                continue;
            }
            if row == s.target_row {
                target_idx = Some(scores.len());
            }
            scores.push(p);
        }
        Some(metrics::rank_of(&scores, target_idx?))
    }

    /// Ranks for every evaluable cascade in `cascades`, fanned out across
    /// `cfg.threads` workers in input order (bit-identical for any thread
    /// count). Cascades without a trainable target are skipped.
    pub fn next_user_ranks(&self, cascades: &[Cascade], window: f64) -> Vec<usize> {
        parallel_map(self.cfg.threads, cascades, |_, c| {
            self.next_user_rank(c, window)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Wraps the current parameters in a v2 [`TrainCheckpoint`] with empty
    /// optimizer state — the format [`CascnModel::load`] and the serving
    /// registry consume. Lets a freshly trained next-user model be exported
    /// for `cascn-serve` without going through the resumable trainer.
    pub fn export_checkpoint(&self) -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 0,
            shuffle_seed: 0,
            base_lr: 0.0,
            eff_lr: 0.0,
            bad_streak: 0,
            stopper: StopperState {
                patience: 0,
                best: f32::MAX,
                best_epoch: 0,
                stale: 0,
                epochs_seen: 0,
            },
            history: History::default(),
            adam: AdamState {
                step: 0,
                m: Vec::new(),
                v: Vec::new(),
            },
            params: self.store.clone(),
            best_params: Some(self.store.clone()),
        }
    }

    /// Saves the trained parameters to a text checkpoint.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.save(path)
    }

    /// Loads parameters from a checkpoint written by [`CascnModel::save`]
    /// (v1 params file) or from a v2 train checkpoint (preferring the best
    /// validation-epoch parameters) into a freshly built model with the same
    /// configuration.
    ///
    /// # Errors
    /// Fails on I/O or parse errors, or when the checkpoint does not cover
    /// every parameter of this architecture.
    pub fn load(cfg: CascnConfig, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        if TrainCheckpoint::is_v2(&text) {
            let ckpt = TrainCheckpoint::from_text(&text).map_err(std::io::Error::other)?;
            Self::from_checkpoint(cfg, &ckpt).map_err(std::io::Error::other)
        } else {
            let params = ParamStore::from_text(&text).map_err(std::io::Error::other)?;
            Self::with_params(cfg, &params).map_err(std::io::Error::other)
        }
    }

    /// Builds an inference-ready model of configuration `cfg` from an
    /// in-memory [`TrainCheckpoint`], preferring the best-validation-epoch
    /// parameters — the constructor the serving registry uses after
    /// verifying a checkpoint file.
    ///
    /// # Errors
    /// [`CascnError::Architecture`] when the checkpoint does not cover
    /// every parameter of this architecture.
    pub fn from_checkpoint(cfg: CascnConfig, ckpt: &TrainCheckpoint) -> Result<Self, CascnError> {
        let params = ckpt.best_params.as_ref().unwrap_or(&ckpt.params);
        Self::with_params(cfg, params)
    }

    /// Builds a model of configuration `cfg` and restores `params` into it.
    ///
    /// # Errors
    /// [`CascnError::Architecture`] on a shape mismatch or when `params`
    /// does not cover every parameter of the architecture.
    pub fn with_params(cfg: CascnConfig, params: &ParamStore) -> Result<Self, CascnError> {
        let mut model = Self::new(cfg);
        let restored = model
            .store
            .restore_from(params)
            .map_err(CascnError::Architecture)?;
        if restored != model.store.len() {
            return Err(CascnError::Architecture(format!(
                "checkpoint restored {restored} of {} parameters — wrong architecture?",
                model.store.len()
            )));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn tiny_cfg() -> CascnConfig {
        CascnConfig {
            hidden: 4,
            mlp_hidden: 4,
            max_nodes: 12,
            max_steps: 6,
            ..CascnConfig::default()
        }
    }

    fn tiny_data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 260,
            seed: 31,
            max_size: 200,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 60)
    }

    #[test]
    fn forward_produces_scalar() {
        let model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let sample = preprocess(&data.cascades[0], 3600.0, model.config());
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, model.params(), &sample);
        assert_eq!(tape.value(out).shape(), (1, 1));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn representation_has_hidden_width() {
        let model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let rep = model.representation(&data.cascades[0], 3600.0);
        assert_eq!(rep.len(), 4);
    }

    #[test]
    fn fit_improves_over_initialization() {
        let mut model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let window = 3600.0;
        let train = data.split(Split::Train);
        let val = data.split(Split::Validation);
        assert!(train.len() >= 20, "need enough cascades, got {}", train.len());
        let opts = TrainOpts {
            epochs: 4,
            patience: 4,
            ..TrainOpts::default()
        };
        let hist = model.fit(train, val, window, &opts);
        let first = hist.records()[0].val_loss;
        let best = hist.best().unwrap().val_loss;
        assert!(
            best <= first,
            "validation loss should not get worse: {first} → {best}"
        );
        assert!(best.is_finite());
    }

    #[test]
    fn variants_share_the_same_interface() {
        use crate::config::Variant;
        let data = tiny_data();
        for variant in [Variant::Gru, Variant::Undirected, Variant::NoTimeDecay] {
            let cfg = tiny_cfg().with_variant(variant);
            let model = CascnModel::new(cfg);
            let p = model.predict_log(&data.cascades[0], 3600.0);
            assert!(p.is_finite(), "{variant:?} produced {p}");
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let mut model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        // Perturb a parameter so the checkpoint differs from init.
        let id = model.store.ids().next().unwrap();
        model.store.value_mut(id).as_mut_slice()[0] = 0.777;
        let dir = std::env::temp_dir().join("cascn_model_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.params");
        model.save(&path).unwrap();
        let loaded = CascnModel::load(tiny_cfg(), &path).unwrap();
        let a = model.predict_log(&data.cascades[0], 3600.0);
        let b = loaded.predict_log(&data.cascades[0], 3600.0);
        assert_eq!(a, b, "loaded model must predict identically");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let model = CascnModel::new(tiny_cfg());
        let dir = std::env::temp_dir().join("cascn_model_ckpt2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.params");
        model.save(&path).unwrap();
        let bigger = CascnConfig {
            hidden: 8,
            ..tiny_cfg()
        };
        let err = CascnModel::load(bigger, &path);
        assert!(err.is_err(), "differing hidden size must be rejected");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn attention_pooling_trains_and_differs_from_sum() {
        use crate::config::Pooling;
        let data = tiny_data();
        let sum_model = CascnModel::new(tiny_cfg());
        let att_model = CascnModel::new(CascnConfig {
            pooling: Pooling::Attention,
            ..tiny_cfg()
        });
        let c = &data.cascades[0];
        let a = sum_model.predict_log(c, 3600.0);
        let b = att_model.predict_log(c, 3600.0);
        assert!(a.is_finite() && b.is_finite());
        assert_ne!(a, b, "pooling modes must differ");
        // Attention mode must also train.
        let mut att_model = att_model;
        let train: Vec<_> = data.cascades.iter().take(30).cloned().collect();
        let hist = att_model.fit(
            &train,
            &[],
            3600.0,
            &TrainOpts {
                epochs: 1,
                ..TrainOpts::default()
            },
        );
        assert!(hist.records()[0].train_loss.is_finite());
    }

    #[test]
    fn from_checkpoint_prefers_best_params_and_matches_load() {
        use cascn_autograd::AdamState;
        use cascn_nn::train::History;
        use crate::checkpoint::{StopperState, TrainCheckpoint};

        let mut model = CascnModel::new(tiny_cfg());
        let id = model.store.ids().next().unwrap();
        model.store.value_mut(id).as_mut_slice()[0] = 0.5;
        let mut best = model.store.clone();
        best.value_mut(id).as_mut_slice()[0] = 0.9;
        let ckpt = TrainCheckpoint {
            epoch: 1,
            shuffle_seed: 3,
            base_lr: 1e-3,
            eff_lr: 1e-3,
            bad_streak: 0,
            stopper: StopperState {
                patience: 5,
                best: 1.0,
                best_epoch: 1,
                stale: 0,
                epochs_seen: 1,
            },
            history: History::new(),
            adam: AdamState { step: 0, m: vec![], v: vec![] },
            params: model.store.clone(),
            best_params: Some(best),
        };
        let restored = CascnModel::from_checkpoint(tiny_cfg(), &ckpt).unwrap();
        let rid = restored.store.ids().next().unwrap();
        assert_eq!(restored.store.value(rid).as_slice()[0], 0.9, "best params win");

        // Wrong architecture is an Architecture error, not a panic.
        let bigger = CascnConfig { hidden: 8, ..tiny_cfg() };
        let err = CascnModel::from_checkpoint(bigger, &ckpt).unwrap_err();
        assert!(matches!(err, crate::CascnError::Architecture(_)), "{err}");
    }

    #[test]
    fn predict_many_matches_serial_predict_log() {
        use crate::predictor::SizePredictor;
        let model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let cascades: Vec<_> = data.cascades.iter().take(12).cloned().collect();
        let serial: Vec<f32> = cascades.iter().map(|c| model.predict_log(c, 3600.0)).collect();
        for threads in [1, 2, 0] {
            let batch = model.predict_many(&cascades, 3600.0, threads);
            let serial_bits: Vec<u32> = serial.iter().map(|x| x.to_bits()).collect();
            let batch_bits: Vec<u32> = batch.iter().map(|x| x.to_bits()).collect();
            assert_eq!(serial_bits, batch_bits, "threads={threads}");
        }
    }

    #[test]
    fn sparse_and_dense_kernels_agree_within_the_accuracy_gate() {
        use crate::config::ChebKernel;
        let data = tiny_data();
        let sparse = CascnModel::new(tiny_cfg());
        let dense = CascnModel::new(CascnConfig {
            cheb_kernel: ChebKernel::Dense,
            ..tiny_cfg()
        });
        assert_eq!(
            sparse.num_parameters(),
            dense.num_parameters(),
            "kernels share one architecture"
        );
        for c in data.cascades.iter().take(8) {
            let a = sparse.predict_log(c, 3600.0);
            let b = dense.predict_log(c, 3600.0);
            assert!(
                (a - b).abs() < 5e-4,
                "kernel outputs diverged beyond the gate: sparse {a} vs dense {b}"
            );
        }
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let data = tiny_data();
        let a = CascnModel::new(tiny_cfg()).predict_log(&data.cascades[1], 3600.0);
        let b = CascnModel::new(tiny_cfg()).predict_log(&data.cascades[1], 3600.0);
        assert_eq!(a, b);
    }

    fn next_cfg() -> CascnConfig {
        CascnConfig {
            task: TaskKind::NextUser,
            vocab_users: 5000,
            ..tiny_cfg()
        }
    }

    #[test]
    fn next_user_task_adds_a_head_without_touching_the_size_layout() {
        let size = CascnModel::new(tiny_cfg());
        let next = CascnModel::new(next_cfg());
        assert!(next.num_parameters() > size.num_parameters());
        // Every size-task parameter restores into the next-user model: the
        // head is appended after the shared stack, not interleaved.
        let mut probe = CascnModel::new(next_cfg());
        let restored = probe.store.restore_from(size.params()).unwrap();
        assert_eq!(restored, size.params().len());
    }

    #[test]
    fn infected_users_have_zero_probability_and_never_rank() {
        let model = CascnModel::new(next_cfg());
        let data = tiny_data();
        let window = 3600.0;
        let mut checked = 0usize;
        for cascade in data.cascades.iter().take(40) {
            let Some(sample) = model.next_sample(cascade, window) else {
                continue;
            };
            checked += 1;
            let observed: Vec<u64> = cascade.observe(window).users();
            let probs = model.next_probs(&sample.pre, &observed);
            for &u in &observed {
                assert_eq!(
                    probs[model.user_row(u)],
                    0.0,
                    "infected user {u} must carry exactly zero probability"
                );
            }
            assert_eq!(probs[0], 0.0, "UNK row must stay masked");
            let total: f32 = probs.iter().sum();
            assert!((total - 1.0).abs() < 1e-4, "probs sum to {total}");
            // Ranked candidates exclude every infected user at any k.
            let top = model.predict_next(cascade, window, probs.len());
            for &(u, _) in &top {
                assert!(
                    !observed.contains(&u),
                    "infected user {u} leaked into the ranking"
                );
            }
            // Ranking is sorted by probability, ties toward smaller ids.
            for pair in top.windows(2) {
                assert!(
                    pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                    "ranking order violated: {pair:?}"
                );
            }
        }
        assert!(checked >= 10, "only {checked} cascades had a next-user target");
    }

    #[test]
    fn next_probs_are_bit_identical_across_thread_counts() {
        let data = tiny_data();
        let window = 3600.0;
        let ranks: Vec<Vec<usize>> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let model = CascnModel::new(CascnConfig {
                    threads,
                    ..next_cfg()
                });
                model.next_user_ranks(&data.cascades[..40], window)
            })
            .collect();
        assert!(!ranks[0].is_empty());
        assert_eq!(ranks[0], ranks[1], "1 vs 2 threads diverged");
        assert_eq!(ranks[0], ranks[2], "1 vs 4 threads diverged");
    }

    #[test]
    fn fit_next_user_learns_and_is_thread_invariant() {
        let data = tiny_data();
        let window = 3600.0;
        let opts = TrainOpts {
            epochs: 3,
            patience: 3,
            ..TrainOpts::default()
        };
        let run = |threads: usize| {
            let mut model = CascnModel::new(CascnConfig {
                threads,
                ..next_cfg()
            });
            let hist = model.fit_next_user(
                &data.split(Split::Train)[..30],
                &data.split(Split::Validation)[..10],
                window,
                &TrainOpts { threads, ..opts },
            );
            (model, hist)
        };
        let (m1, h1) = run(1);
        let (m4, h4) = run(4);
        let first = h1.records()[0].val_loss;
        let best = h1.best().unwrap().val_loss;
        assert!(
            best <= first,
            "next-user validation loss should not get worse: {first} → {best}"
        );
        for (a, b) in h1.records().iter().zip(h4.records()) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            assert_eq!(a.val_loss.to_bits(), b.val_loss.to_bits());
        }
        for c in data.cascades.iter().take(5) {
            let p1 = m1.predict_next(c, window, 5);
            let p4 = m4.predict_next(c, window, 5);
            assert_eq!(p1.len(), p4.len());
            for (a, b) in p1.iter().zip(&p4) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn predict_next_matches_predict_next_sample_bit_for_bit() {
        let model = CascnModel::new(next_cfg());
        let data = tiny_data();
        let window = 3600.0;
        let cascade = &data.cascades[2];
        let direct = model.predict_next(cascade, window, 10);
        let sample = preprocess(cascade, window, model.config());
        let observed: Vec<u64> = cascade.observe(window).users();
        let via_sample = model.predict_next_sample(&sample, &observed, 10);
        assert_eq!(direct.len(), via_sample.len());
        for (a, b) in direct.iter().zip(&via_sample) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn exported_checkpoint_round_trips_through_load() {
        let model = CascnModel::new(next_cfg());
        let data = tiny_data();
        let ckpt = model.export_checkpoint();
        let dir = std::env::temp_dir().join("cascn-next-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.ckpt");
        std::fs::write(&path, ckpt.to_text()).unwrap();
        let loaded = CascnModel::load(next_cfg(), &path).unwrap();
        let a = model.predict_next(&data.cascades[0], 3600.0, 5);
        let b = loaded.predict_next(&data.cascades[0], 3600.0, 5);
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn next_user_ranks_feed_hit_at_k_and_map() {
        let model = CascnModel::new(next_cfg());
        let data = tiny_data();
        let ranks = model.next_user_ranks(&data.cascades[..40], 3600.0);
        assert!(!ranks.is_empty());
        let h10 = metrics::hit_at_k(&ranks, 10);
        let map = metrics::mean_average_precision(&ranks);
        assert!((0.0..=1.0).contains(&h10));
        assert!((0.0..=1.0).contains(&map));
    }
}
