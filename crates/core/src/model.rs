//! The CasCN model (Fig. 2): ChebConv recurrence → time decay → sum
//! pooling → MLP.

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_nn::{Activation, ChebConvGruCell, ChebConvLstmCell, Mlp, TimeDecay};
use cascn_nn::train::History;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::TrainCheckpoint;
use crate::config::{CascnConfig, DecayMode, Pooling, RecurrentKind};
use crate::error::CascnError;
use crate::input::{preprocess, PreprocessedCascade};
use crate::parallel::parallel_map;
use crate::trainer::{
    predict_with, train_loop, train_loop_resumable, CheckpointPolicy, TrainHooks, TrainOpts,
};


/// The recurrent core, selected by [`RecurrentKind`].
#[derive(Debug, Clone)]
enum Cell {
    Lstm(ChebConvLstmCell),
    Gru(ChebConvGruCell),
}

/// CasCN and its config-level variants (`CasCN-GRU`, `CasCN-Undirected`,
/// `CasCN-Time`, and the Table V parameter grid).
#[derive(Debug, Clone)]
pub struct CascnModel {
    cfg: CascnConfig,
    store: ParamStore,
    cell: Cell,
    decay: TimeDecay,
    /// Attention projection (used only under [`Pooling::Attention`]).
    att_w: ParamId,
    /// Attention scoring vector.
    att_v: ParamId,
    mlp: Mlp,
}

impl CascnModel {
    /// Builds an untrained model with seeded initialization.
    pub fn new(cfg: CascnConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let cell = match cfg.recurrent {
            RecurrentKind::Lstm => Cell::Lstm(ChebConvLstmCell::new(
                &mut store,
                "cascn.cell",
                cfg.k,
                cfg.max_nodes,
                cfg.hidden,
                &mut rng,
            )),
            RecurrentKind::Gru => Cell::Gru(ChebConvGruCell::new(
                &mut store,
                "cascn.cell",
                cfg.k,
                cfg.max_nodes,
                cfg.hidden,
                &mut rng,
            )),
        };
        let decay = TimeDecay::new(&mut store, "cascn.decay", cfg.decay_intervals);
        let att_w = store.register(
            "cascn.att.w",
            cascn_nn::init::xavier_uniform(cfg.hidden, cfg.hidden, &mut rng),
        );
        let att_v = store.register(
            "cascn.att.v",
            cascn_nn::init::xavier_uniform(cfg.hidden, 1, &mut rng),
        );
        let mlp = Mlp::new(
            &mut store,
            "cascn.mlp",
            &[cfg.hidden, cfg.mlp_hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            cfg,
            store,
            cell,
            decay,
            att_w,
            att_v,
            mlp,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &CascnConfig {
        &self.cfg
    }

    /// The parameter store (for inspection and tests).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Replaces the parameter store (e.g. with a snapshot captured by a
    /// [`CascnModel::fit_observed`] observer).
    ///
    /// # Panics
    /// Panics if the store's parameter count differs from this model's.
    pub fn set_params(&mut self, store: ParamStore) {
        assert_eq!(
            store.len(),
            self.store.len(),
            "set_params: parameter count mismatch"
        );
        self.store = store;
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Forward pass to the pooled cascade representation `h(C_i(t))`
    /// (Eq. 17), a `1 x hidden` variable.
    fn forward_representation(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &PreprocessedCascade,
    ) -> Var {
        let operands = sample.operands(tape);
        let inputs: Vec<Var> = sample
            .snapshots
            .iter()
            .map(|s| tape.constant(s.clone()))
            .collect();
        let hs = match &self.cell {
            Cell::Lstm(cell) => cell.run(tape, store, &operands, &inputs, sample.n),
            Cell::Gru(cell) => cell.run(tape, store, &operands, &inputs, sample.n),
        };
        // Eq. 16: re-weight each hidden state by its interval's λ.
        let weighted: Vec<Var> = hs
            .iter()
            .enumerate()
            .map(|(t, &h)| match self.cfg.decay {
                DecayMode::Learned => {
                    self.decay
                        .apply(tape, store, h, sample.times[t], sample.window)
                }
                DecayMode::None => h,
                kernel => {
                    let k = kernel.kernel(sample.times[t] / sample.window.max(f64::MIN_POSITIVE));
                    tape.scale(h, k)
                }
            })
            .collect();
        match self.cfg.pooling {
            // Eq. 17: sum over time, then over nodes.
            Pooling::Sum => {
                let mut acc: Option<Var> = None;
                for &w in &weighted {
                    acc = Some(match acc {
                        Some(a) => tape.add(a, w),
                        None => w,
                    });
                }
                // lint: allow(no-panic) — snapshots() emits ≥ 1 matrix (max_steps ≥ 1 is asserted), so the fold is never empty
                let summed = acc.expect("at least one snapshot");
                tape.sum_rows(summed)
            }
            // Future-work extension: additive attention over snapshots.
            Pooling::Attention => {
                let pooled: Vec<Var> = weighted.iter().map(|&w| tape.sum_rows(w)).collect();
                let stacked = tape.concat_rows(&pooled); // T x hidden
                let w = tape.param(store, self.att_w);
                let v = tape.param(store, self.att_v);
                let proj = tape.matmul(stacked, w);
                let act = tape.tanh(proj);
                let scores = tape.matmul(act, v); // T x 1
                let alpha = tape.softmax_col(scores);
                let ones = tape.constant(cascn_tensor::Matrix::full(1, self.cfg.hidden, 1.0));
                let tiled = tape.matmul(alpha, ones);
                let mixed = tape.hadamard(tiled, stacked);
                tape.sum_rows(mixed)
            }
        }
    }

    /// Full forward pass to the `1x1` predicted log-increment (Eq. 18).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &PreprocessedCascade,
    ) -> Var {
        let rep = self.forward_representation(tape, store, sample);
        self.mlp.forward(tape, store, rep)
    }

    /// Preprocesses a cascade set (Fig. 3 sampling + Laplacian + Chebyshev
    /// bases), fanned out across `cfg.threads` workers. Preprocessing is a
    /// pure per-cascade function and results come back in cascade order, so
    /// the output is identical for any thread count.
    fn preprocess_all(&self, cascades: &[Cascade], window: f64) -> Vec<PreprocessedCascade> {
        parallel_map(self.cfg.threads, cascades, |_, c| {
            preprocess(c, window, &self.cfg)
        })
    }

    /// Trains on `train`, early-stopping on `val` (Algorithm 2). Returns the
    /// loss history; the model keeps the best-validation parameters.
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples = self.preprocess_all(train, window);
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples = self.preprocess_all(val, window);
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();

        let model = self.clone(); // immutable view for the forward closure
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }

    /// [`CascnModel::fit`] with fault tolerance: optionally resumes from a
    /// [`TrainCheckpoint`] and/or writes periodic checkpoints per the
    /// [`CheckpointPolicy`]. An interrupted run resumed from its checkpoint
    /// finishes bit-identically to an uninterrupted one.
    pub fn fit_resumable(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
        resume: Option<&TrainCheckpoint>,
        checkpoint: Option<&CheckpointPolicy>,
    ) -> Result<History, CascnError> {
        let train_samples = self.preprocess_all(train, window);
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples = self.preprocess_all(val, window);
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        train_loop_resumable(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
            resume,
            checkpoint,
            &mut |_, _| {},
            TrainHooks::default(),
        )
    }

    /// [`CascnModel::fit`] with a per-epoch observer receiving the epoch
    /// index and the current parameters (used to trace metrics on
    /// sub-populations during training, as in Fig. 8).
    pub fn fit_observed(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
        observer: &mut dyn FnMut(usize, &ParamStore),
    ) -> History {
        let train_samples = self.preprocess_all(train, window);
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples = self.preprocess_all(val, window);
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        crate::trainer::train_loop_observed(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
            observer,
        )
    }

    /// Predicted log-increment `ln(1 + ΔS)` for a cascade.
    pub fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = preprocess(cascade, window, &self.cfg);
        self.predict_log_sample(&sample)
    }

    /// Predicted log-increment for an already-preprocessed sample — the
    /// entry point the serving layer uses after a spectral-cache hit
    /// ([`crate::preprocess_with_basis`]). `predict_log` is exactly
    /// `preprocess` followed by this, so cached and direct predictions are
    /// bit-identical.
    pub fn predict_log_sample(&self, sample: &PreprocessedCascade) -> f32 {
        let forward = |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            self.forward(tape, store, s)
        };
        predict_with(&self.store, &forward, sample)
    }

    /// Predicted log-increments for a batch of cascades, with preprocessing
    /// and the forward passes fanned out across `cfg.threads` workers.
    /// Output order matches the input and is identical for any thread count.
    pub fn predict_logs(&self, cascades: &[Cascade], window: f64) -> Vec<f32> {
        crate::predictor::SizePredictor::predict_many(self, cascades, window, self.cfg.threads)
    }

    /// The learned cascade representation `h(C_i(t))` — the vector Fig. 9
    /// visualizes.
    pub fn representation(&self, cascade: &Cascade, window: f64) -> Vec<f32> {
        let sample = preprocess(cascade, window, &self.cfg);
        let mut tape = Tape::new();
        let rep = self.forward_representation(&mut tape, &self.store, &sample);
        tape.value(rep).as_slice().to_vec()
    }

    /// Current time-decay multipliers `λ_m`.
    pub fn decay_values(&self) -> Vec<f32> {
        self.decay.values(&self.store)
    }

    /// Saves the trained parameters to a text checkpoint.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.save(path)
    }

    /// Loads parameters from a checkpoint written by [`CascnModel::save`]
    /// (v1 params file) or from a v2 train checkpoint (preferring the best
    /// validation-epoch parameters) into a freshly built model with the same
    /// configuration.
    ///
    /// # Errors
    /// Fails on I/O or parse errors, or when the checkpoint does not cover
    /// every parameter of this architecture.
    pub fn load(cfg: CascnConfig, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        if TrainCheckpoint::is_v2(&text) {
            let ckpt = TrainCheckpoint::from_text(&text).map_err(std::io::Error::other)?;
            Self::from_checkpoint(cfg, &ckpt).map_err(std::io::Error::other)
        } else {
            let params = ParamStore::from_text(&text).map_err(std::io::Error::other)?;
            Self::with_params(cfg, &params).map_err(std::io::Error::other)
        }
    }

    /// Builds an inference-ready model of configuration `cfg` from an
    /// in-memory [`TrainCheckpoint`], preferring the best-validation-epoch
    /// parameters — the constructor the serving registry uses after
    /// verifying a checkpoint file.
    ///
    /// # Errors
    /// [`CascnError::Architecture`] when the checkpoint does not cover
    /// every parameter of this architecture.
    pub fn from_checkpoint(cfg: CascnConfig, ckpt: &TrainCheckpoint) -> Result<Self, CascnError> {
        let params = ckpt.best_params.as_ref().unwrap_or(&ckpt.params);
        Self::with_params(cfg, params)
    }

    /// Builds a model of configuration `cfg` and restores `params` into it.
    ///
    /// # Errors
    /// [`CascnError::Architecture`] on a shape mismatch or when `params`
    /// does not cover every parameter of the architecture.
    pub fn with_params(cfg: CascnConfig, params: &ParamStore) -> Result<Self, CascnError> {
        let mut model = Self::new(cfg);
        let restored = model
            .store
            .restore_from(params)
            .map_err(CascnError::Architecture)?;
        if restored != model.store.len() {
            return Err(CascnError::Architecture(format!(
                "checkpoint restored {restored} of {} parameters — wrong architecture?",
                model.store.len()
            )));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn tiny_cfg() -> CascnConfig {
        CascnConfig {
            hidden: 4,
            mlp_hidden: 4,
            max_nodes: 12,
            max_steps: 6,
            ..CascnConfig::default()
        }
    }

    fn tiny_data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 260,
            seed: 31,
            max_size: 200,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 60)
    }

    #[test]
    fn forward_produces_scalar() {
        let model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let sample = preprocess(&data.cascades[0], 3600.0, model.config());
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, model.params(), &sample);
        assert_eq!(tape.value(out).shape(), (1, 1));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn representation_has_hidden_width() {
        let model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let rep = model.representation(&data.cascades[0], 3600.0);
        assert_eq!(rep.len(), 4);
    }

    #[test]
    fn fit_improves_over_initialization() {
        let mut model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let window = 3600.0;
        let train = data.split(Split::Train);
        let val = data.split(Split::Validation);
        assert!(train.len() >= 20, "need enough cascades, got {}", train.len());
        let opts = TrainOpts {
            epochs: 4,
            patience: 4,
            ..TrainOpts::default()
        };
        let hist = model.fit(train, val, window, &opts);
        let first = hist.records()[0].val_loss;
        let best = hist.best().unwrap().val_loss;
        assert!(
            best <= first,
            "validation loss should not get worse: {first} → {best}"
        );
        assert!(best.is_finite());
    }

    #[test]
    fn variants_share_the_same_interface() {
        use crate::config::Variant;
        let data = tiny_data();
        for variant in [Variant::Gru, Variant::Undirected, Variant::NoTimeDecay] {
            let cfg = tiny_cfg().with_variant(variant);
            let model = CascnModel::new(cfg);
            let p = model.predict_log(&data.cascades[0], 3600.0);
            assert!(p.is_finite(), "{variant:?} produced {p}");
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let mut model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        // Perturb a parameter so the checkpoint differs from init.
        let id = model.store.ids().next().unwrap();
        model.store.value_mut(id).as_mut_slice()[0] = 0.777;
        let dir = std::env::temp_dir().join("cascn_model_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.params");
        model.save(&path).unwrap();
        let loaded = CascnModel::load(tiny_cfg(), &path).unwrap();
        let a = model.predict_log(&data.cascades[0], 3600.0);
        let b = loaded.predict_log(&data.cascades[0], 3600.0);
        assert_eq!(a, b, "loaded model must predict identically");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let model = CascnModel::new(tiny_cfg());
        let dir = std::env::temp_dir().join("cascn_model_ckpt2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.params");
        model.save(&path).unwrap();
        let bigger = CascnConfig {
            hidden: 8,
            ..tiny_cfg()
        };
        let err = CascnModel::load(bigger, &path);
        assert!(err.is_err(), "differing hidden size must be rejected");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn attention_pooling_trains_and_differs_from_sum() {
        use crate::config::Pooling;
        let data = tiny_data();
        let sum_model = CascnModel::new(tiny_cfg());
        let att_model = CascnModel::new(CascnConfig {
            pooling: Pooling::Attention,
            ..tiny_cfg()
        });
        let c = &data.cascades[0];
        let a = sum_model.predict_log(c, 3600.0);
        let b = att_model.predict_log(c, 3600.0);
        assert!(a.is_finite() && b.is_finite());
        assert_ne!(a, b, "pooling modes must differ");
        // Attention mode must also train.
        let mut att_model = att_model;
        let train: Vec<_> = data.cascades.iter().take(30).cloned().collect();
        let hist = att_model.fit(
            &train,
            &[],
            3600.0,
            &TrainOpts {
                epochs: 1,
                ..TrainOpts::default()
            },
        );
        assert!(hist.records()[0].train_loss.is_finite());
    }

    #[test]
    fn from_checkpoint_prefers_best_params_and_matches_load() {
        use cascn_autograd::AdamState;
        use cascn_nn::train::History;
        use crate::checkpoint::{StopperState, TrainCheckpoint};

        let mut model = CascnModel::new(tiny_cfg());
        let id = model.store.ids().next().unwrap();
        model.store.value_mut(id).as_mut_slice()[0] = 0.5;
        let mut best = model.store.clone();
        best.value_mut(id).as_mut_slice()[0] = 0.9;
        let ckpt = TrainCheckpoint {
            epoch: 1,
            shuffle_seed: 3,
            base_lr: 1e-3,
            eff_lr: 1e-3,
            bad_streak: 0,
            stopper: StopperState {
                patience: 5,
                best: 1.0,
                best_epoch: 1,
                stale: 0,
                epochs_seen: 1,
            },
            history: History::new(),
            adam: AdamState { step: 0, m: vec![], v: vec![] },
            params: model.store.clone(),
            best_params: Some(best),
        };
        let restored = CascnModel::from_checkpoint(tiny_cfg(), &ckpt).unwrap();
        let rid = restored.store.ids().next().unwrap();
        assert_eq!(restored.store.value(rid).as_slice()[0], 0.9, "best params win");

        // Wrong architecture is an Architecture error, not a panic.
        let bigger = CascnConfig { hidden: 8, ..tiny_cfg() };
        let err = CascnModel::from_checkpoint(bigger, &ckpt).unwrap_err();
        assert!(matches!(err, crate::CascnError::Architecture(_)), "{err}");
    }

    #[test]
    fn predict_many_matches_serial_predict_log() {
        use crate::predictor::SizePredictor;
        let model = CascnModel::new(tiny_cfg());
        let data = tiny_data();
        let cascades: Vec<_> = data.cascades.iter().take(12).cloned().collect();
        let serial: Vec<f32> = cascades.iter().map(|c| model.predict_log(c, 3600.0)).collect();
        for threads in [1, 2, 0] {
            let batch = model.predict_many(&cascades, 3600.0, threads);
            let serial_bits: Vec<u32> = serial.iter().map(|x| x.to_bits()).collect();
            let batch_bits: Vec<u32> = batch.iter().map(|x| x.to_bits()).collect();
            assert_eq!(serial_bits, batch_bits, "threads={threads}");
        }
    }

    #[test]
    fn sparse_and_dense_kernels_agree_within_the_accuracy_gate() {
        use crate::config::ChebKernel;
        let data = tiny_data();
        let sparse = CascnModel::new(tiny_cfg());
        let dense = CascnModel::new(CascnConfig {
            cheb_kernel: ChebKernel::Dense,
            ..tiny_cfg()
        });
        assert_eq!(
            sparse.num_parameters(),
            dense.num_parameters(),
            "kernels share one architecture"
        );
        for c in data.cascades.iter().take(8) {
            let a = sparse.predict_log(c, 3600.0);
            let b = dense.predict_log(c, 3600.0);
            assert!(
                (a - b).abs() < 5e-4,
                "kernel outputs diverged beyond the gate: sparse {a} vs dense {b}"
            );
        }
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let data = tiny_data();
        let a = CascnModel::new(tiny_cfg()).predict_log(&data.cascades[1], 3600.0);
        let b = CascnModel::new(tiny_cfg()).predict_log(&data.cascades[1], 3600.0);
        assert_eq!(a, b);
    }
}
