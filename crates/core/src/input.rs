//! Cascade preprocessing: snapshots, CasLaplacian, Chebyshev bases.
//!
//! Preprocessing is deterministic and model-independent, so trainers run it
//! once per cascade and cache the result across epochs.

use cascn_autograd::Tape;
use cascn_cascades::Cascade;
use cascn_graph::{laplacian, DiGraph, SpectralBasis};
use cascn_nn::ChebOperands;
use cascn_tensor::Matrix;

use crate::config::{CascnConfig, ChebKernel, LambdaMax, LaplacianKind};

/// A cascade converted to CasCN's input representation.
#[derive(Debug, Clone)]
pub struct PreprocessedCascade {
    /// The cascade's spectral handle: the scaled Laplacian `Δ̃_c` in sparse
    /// operator form plus the Chebyshev order `K`.
    pub basis: SpectralBasis,
    /// Materialized dense bases `T_k(Δ̃_c)` (length `K + 1`) — populated
    /// only under [`ChebKernel::Dense`]; the default sparse kernel never
    /// builds them.
    pub dense_bases: Option<Vec<Matrix>>,
    /// Snapshot signals `X_t`, each `n x max_nodes` (rows = observed nodes,
    /// columns zero-padded to the shared feature width).
    pub snapshots: Vec<Matrix>,
    /// Diffusion time of each snapshot (seconds since the root post).
    pub times: Vec<f64>,
    /// Number of observed nodes `n` (≤ `max_nodes`).
    pub n: usize,
    /// Observation window used.
    pub window: f64,
    /// Ground-truth log-increment `ln(1 + ΔS)`.
    pub label_log: f32,
    /// Raw increment label `ΔS`.
    pub increment: usize,
    /// The exact λ_max used for scaling (2.0 under [`LambdaMax::Approx2`]).
    pub lambda_max: f32,
}

impl PreprocessedCascade {
    /// The convolution operands a ChebConv cell runs against — dense when
    /// the config materialized bases, sparse operator form otherwise.
    pub fn operands(&self, tape: &mut Tape) -> ChebOperands {
        match &self.dense_bases {
            Some(bases) => ChebOperands::dense(tape, bases),
            None => ChebOperands::sparse(&self.basis),
        }
    }
}

/// Builds the model input for one cascade under `cfg` at observation window
/// `window`:
///
/// 1. truncate the observed prefix to `cfg.max_nodes` adopters;
/// 2. build the cascade graph and its (directed or undirected) Laplacian;
/// 3. scale by `λ_max` and expand Chebyshev bases to order `K`;
/// 4. emit the Fig. 3 adjacency snapshot sequence, column-padded to
///    `cfg.max_nodes` so every cascade shares the filter width.
pub fn preprocess(cascade: &Cascade, window: f64, cfg: &CascnConfig) -> PreprocessedCascade {
    let basis = spectral_basis(cascade, window, cfg);
    assemble(cascade, window, cfg, basis)
}

/// Step 2–3 of [`preprocess`] in isolation: the cascade's spectral handle
/// (Laplacian → scaling → Chebyshev bases).
///
/// This is the expensive, model-parameter-independent part of
/// preprocessing, so serving layers compute it once per (cascade, window)
/// and reuse it across requests via [`preprocess_with_basis`].
pub fn spectral_basis(cascade: &Cascade, window: f64, cfg: &CascnConfig) -> SpectralBasis {
    let observed = cascade.observe(window);
    let n = observed.num_nodes().min(cfg.max_nodes);

    // Local graph over the first n adopters (edges into truncated nodes are
    // dropped with them).
    let mut g = DiGraph::new(n);
    for (i, e) in observed.events().iter().enumerate().take(n).skip(1) {
        // Cascade validation guarantees non-root events carry parents.
        if let Some(p) = e.parent {
            if p < n {
                g.add_edge(p, i, 1.0);
            }
        }
    }

    let lambda_max = match cfg.lambda_max {
        LambdaMax::Exact => None,
        LambdaMax::Approx2 => Some(2.0),
    };
    match cfg.laplacian {
        // The directed scaled Laplacian is dense (teleportation touches
        // every entry), so it is kept as sparse-core + rank-1 teleport
        // instead of a materialized matrix.
        LaplacianKind::Directed => SpectralBasis::directed(&g, cfg.alpha, lambda_max, cfg.k),
        LaplacianKind::Undirected => {
            let lap = laplacian::undirected_normalized_laplacian(&g);
            SpectralBasis::from_laplacian(&lap, lambda_max, cfg.k)
        }
    }
}

/// [`preprocess`] with the spectral work already done — the cache-hit path
/// of the serving layer. `basis` must have been built by
/// [`spectral_basis`] for the same `(cascade, window, cfg)`; the output is
/// then bit-identical to [`preprocess`].
pub fn preprocess_with_basis(
    cascade: &Cascade,
    window: f64,
    cfg: &CascnConfig,
    basis: &SpectralBasis,
) -> PreprocessedCascade {
    assemble(cascade, window, cfg, basis.clone())
}

/// The shared tail of preprocessing: snapshot sampling and label
/// extraction around an owned spectral handle.
fn assemble(
    cascade: &Cascade,
    window: f64,
    cfg: &CascnConfig,
    basis: SpectralBasis,
) -> PreprocessedCascade {
    let n = basis.num_nodes();
    debug_assert_eq!(
        n,
        cascade.observe(window).num_nodes().min(cfg.max_nodes),
        "spectral basis node count disagrees with the observed prefix"
    );

    // Snapshot sequence over the truncated prefix, column-padded.
    let truncated = TruncatedView { cascade, n };
    let (snapshots, times) = truncated.snapshots_padded(cfg.max_steps, cfg.max_nodes);

    let increment = cascade.increment_size(window);
    let dense_bases = match cfg.cheb_kernel {
        ChebKernel::Dense => Some(basis.materialize()),
        ChebKernel::Sparse => None,
    };
    PreprocessedCascade {
        lambda_max: basis.lambda_max,
        basis,
        dense_bases,
        snapshots,
        times,
        n,
        window,
        label_log: cascn_nn::metrics::log_label(increment),
        increment,
    }
}

/// Internal helper that re-implements the snapshot sampling over a truncated
/// node prefix with column padding.
struct TruncatedView<'a> {
    cascade: &'a Cascade,
    n: usize,
}

impl TruncatedView<'_> {
    fn snapshots_padded(&self, max_steps: usize, width: usize) -> (Vec<Matrix>, Vec<f64>) {
        let n = self.n;
        let events = &self.cascade.events[..n];
        let steps = n.min(max_steps.max(1));
        let mut boundaries = Vec::with_capacity(steps);
        for s in 1..=steps {
            boundaries.push((s * n).div_ceil(steps));
        }
        let mut out = Vec::with_capacity(steps);
        let mut times = Vec::with_capacity(steps);
        let mut adj = Matrix::zeros(n, width);
        adj[(0, 0)] = 1.0; // root self-connection
        let mut next_event = 1usize;
        for &b in &boundaries {
            while next_event < b {
                let e = &events[next_event];
                // Cascade validation guarantees non-root events carry parents.
                if let Some(p) = e.parent {
                    if p < n && next_event < width {
                        adj[(p, next_event)] = 1.0;
                    }
                }
                next_event += 1;
            }
            out.push(adj.clone());
            times.push(events[b - 1].time);
        }
        (out, times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::Event;

    fn fig1() -> Cascade {
        Cascade::new(
            1,
            0.0,
            vec![
                Event { user: 0, parent: None, time: 0.0 },
                Event { user: 1, parent: Some(0), time: 10.0 },
                Event { user: 2, parent: Some(0), time: 20.0 },
                Event { user: 3, parent: Some(1), time: 30.0 },
                Event { user: 4, parent: Some(1), time: 40.0 },
                Event { user: 5, parent: Some(3), time: 50.0 },
            ],
        )
    }

    fn cfg() -> CascnConfig {
        CascnConfig {
            max_nodes: 10,
            max_steps: 8,
            k: 2,
            ..CascnConfig::default()
        }
    }

    #[test]
    fn shapes_are_consistent() {
        let p = preprocess(&fig1(), 60.0, &cfg());
        assert_eq!(p.n, 6);
        assert_eq!(p.basis.order(), 2, "order K");
        assert_eq!(p.basis.num_nodes(), 6);
        assert!(
            p.dense_bases.is_none(),
            "the default sparse kernel must not materialize dense bases"
        );
        assert_eq!(p.snapshots.len(), 6);
        for s in &p.snapshots {
            assert_eq!(s.shape(), (6, 10), "column padded to max_nodes");
        }
        assert_eq!(p.times.len(), p.snapshots.len());
        assert_eq!(p.increment, 0);
        assert_eq!(p.label_log, 0.0, "ln(1+0) = 0");
    }

    #[test]
    fn window_truncates_label() {
        let p = preprocess(&fig1(), 25.0, &cfg());
        assert_eq!(p.n, 3);
        assert_eq!(p.increment, 3);
        assert!((p.label_log - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn oversize_cascades_are_truncated() {
        let small = CascnConfig {
            max_nodes: 4,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &small);
        assert_eq!(p.n, 4);
        assert_eq!(p.basis.num_nodes(), 4);
        for s in &p.snapshots {
            assert_eq!(s.shape(), (4, 4));
        }
        // Edges to truncated nodes must not appear.
        let last = p.snapshots.last().unwrap();
        assert_eq!(last.sum(), 1.0 + 3.0, "self-loop + edges among first 4 nodes");
    }

    #[test]
    fn step_cap_preserves_final_snapshot() {
        let capped = CascnConfig {
            max_steps: 2,
            ..cfg()
        };
        let full = preprocess(&fig1(), 60.0, &cfg());
        let short = preprocess(&fig1(), 60.0, &capped);
        assert_eq!(short.snapshots.len(), 2);
        assert_eq!(
            short.snapshots.last().unwrap().as_slice(),
            full.snapshots.last().unwrap().as_slice(),
            "final snapshot must contain the whole observed cascade"
        );
        assert_eq!(*short.times.last().unwrap(), 50.0);
    }

    #[test]
    fn approx2_sets_lambda() {
        let c = CascnConfig {
            lambda_max: LambdaMax::Approx2,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &c);
        assert_eq!(p.lambda_max, 2.0);
        let exact = preprocess(&fig1(), 60.0, &cfg());
        assert_ne!(exact.lambda_max, 2.0);
    }

    #[test]
    fn undirected_bases_are_symmetric() {
        let c = CascnConfig {
            laplacian: LaplacianKind::Undirected,
            cheb_kernel: ChebKernel::Dense,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &c);
        let bases = p.dense_bases.as_ref().expect("Dense kernel materializes");
        assert_eq!(bases.len(), 3, "K + 1 bases");
        let t1 = &bases[1];
        for r in 0..t1.rows() {
            for cidx in 0..t1.cols() {
                assert!((t1[(r, cidx)] - t1[(cidx, r)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dense_kernel_materializes_matching_bases() {
        let dense_cfg = CascnConfig {
            cheb_kernel: ChebKernel::Dense,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &dense_cfg);
        let bases = p.dense_bases.as_ref().expect("Dense kernel materializes");
        assert_eq!(bases.len(), 3, "K + 1 bases");
        for b in bases {
            assert_eq!(b.shape(), (6, 6));
        }
        // The materialization is exactly basis.materialize() — same handle,
        // same bits — and both kernels share one spectral pipeline.
        let sparse = preprocess(&fig1(), 60.0, &cfg());
        assert_eq!(sparse.lambda_max.to_bits(), p.lambda_max.to_bits());
        for (a, b) in p.basis.materialize().iter().zip(bases) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn cached_basis_path_is_bit_identical() {
        // The serving cache depends on preprocess_with_basis(spectral_basis(…))
        // reproducing preprocess(…) exactly.
        for window in [25.0, 60.0] {
            let direct = preprocess(&fig1(), window, &cfg());
            let basis = spectral_basis(&fig1(), window, &cfg());
            let cached = preprocess_with_basis(&fig1(), window, &cfg(), &basis);
            assert_eq!(direct.n, cached.n);
            assert_eq!(direct.lambda_max.to_bits(), cached.lambda_max.to_bits());
            assert_eq!(
                direct.basis.scaled_dense().as_slice(),
                cached.basis.scaled_dense().as_slice(),
                "operators must match bit-for-bit"
            );
            for (a, b) in direct.snapshots.iter().zip(&cached.snapshots) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
            assert_eq!(direct.times, cached.times);
            assert_eq!(direct.increment, cached.increment);
        }
    }

    #[test]
    fn spectral_basis_respects_node_truncation() {
        let small = CascnConfig { max_nodes: 4, ..cfg() };
        let basis = spectral_basis(&fig1(), 60.0, &small);
        assert_eq!(basis.num_nodes(), 4);
        assert_eq!(basis.order(), small.k);
    }

    #[test]
    fn singleton_cascade_preprocesses() {
        let c = Cascade::new(9, 0.0, vec![Event { user: 7, parent: None, time: 0.0 }]);
        let p = preprocess(&c, 100.0, &cfg());
        assert_eq!(p.n, 1);
        assert_eq!(p.snapshots.len(), 1);
        assert_eq!(p.snapshots[0][(0, 0)], 1.0, "root self-loop");
        assert!(p.basis.scaled_dense().all_finite());
        assert!(p.basis.materialize().iter().all(|b| b.all_finite()));
    }
}
