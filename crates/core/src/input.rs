//! Cascade preprocessing: snapshots, CasLaplacian, Chebyshev bases.
//!
//! Preprocessing is deterministic and model-independent, so trainers run it
//! once per cascade and cache the result across epochs.

use cascn_autograd::Tape;
use cascn_cascades::{Cascade, CascadeFault, Event};
use cascn_graph::{laplacian, DiGraph, IncrementalSpectral, SpectralBasis};
use cascn_nn::ChebOperands;
use cascn_tensor::Matrix;

use crate::config::{CascnConfig, ChebKernel, LambdaMax, LaplacianKind};

/// A cascade converted to CasCN's input representation.
#[derive(Debug, Clone)]
pub struct PreprocessedCascade {
    /// The cascade's spectral handle: the scaled Laplacian `Δ̃_c` in sparse
    /// operator form plus the Chebyshev order `K`.
    pub basis: SpectralBasis,
    /// Materialized dense bases `T_k(Δ̃_c)` (length `K + 1`) — populated
    /// only under [`ChebKernel::Dense`]; the default sparse kernel never
    /// builds them.
    pub dense_bases: Option<Vec<Matrix>>,
    /// Snapshot signals `X_t`, each `n x max_nodes` (rows = observed nodes,
    /// columns zero-padded to the shared feature width).
    pub snapshots: Vec<Matrix>,
    /// Diffusion time of each snapshot (seconds since the root post).
    pub times: Vec<f64>,
    /// Number of observed nodes `n` (≤ `max_nodes`).
    pub n: usize,
    /// Observation window used.
    pub window: f64,
    /// Ground-truth log-increment `ln(1 + ΔS)`.
    pub label_log: f32,
    /// Raw increment label `ΔS`.
    pub increment: usize,
    /// The exact λ_max used for scaling (2.0 under [`LambdaMax::Approx2`]).
    pub lambda_max: f32,
}

impl PreprocessedCascade {
    /// The convolution operands a ChebConv cell runs against — dense when
    /// the config materialized bases, sparse operator form otherwise.
    pub fn operands(&self, tape: &mut Tape) -> ChebOperands {
        match &self.dense_bases {
            Some(bases) => ChebOperands::dense(tape, bases),
            None => ChebOperands::sparse(&self.basis),
        }
    }
}

/// Builds the model input for one cascade under `cfg` at observation window
/// `window`:
///
/// 1. truncate the observed prefix to `cfg.max_nodes` adopters;
/// 2. build the cascade graph and its (directed or undirected) Laplacian;
/// 3. scale by `λ_max` and expand Chebyshev bases to order `K`;
/// 4. emit the Fig. 3 adjacency snapshot sequence, column-padded to
///    `cfg.max_nodes` so every cascade shares the filter width.
pub fn preprocess(cascade: &Cascade, window: f64, cfg: &CascnConfig) -> PreprocessedCascade {
    let basis = spectral_basis(cascade, window, cfg);
    assemble(cascade, window, cfg, basis)
}

/// Step 2–3 of [`preprocess`] in isolation: the cascade's spectral handle
/// (Laplacian → scaling → Chebyshev bases).
///
/// This is the expensive, model-parameter-independent part of
/// preprocessing, so serving layers compute it once per (cascade, window)
/// and reuse it across requests via [`preprocess_with_basis`].
pub fn spectral_basis(cascade: &Cascade, window: f64, cfg: &CascnConfig) -> SpectralBasis {
    let g = observed_graph(cascade, window, cfg);
    let lambda_max = lambda_mode(cfg);
    match cfg.laplacian {
        // The directed scaled Laplacian is dense (teleportation touches
        // every entry), so it is kept as sparse-core + rank-1 teleport
        // instead of a materialized matrix.
        LaplacianKind::Directed => SpectralBasis::directed(&g, cfg.alpha, lambda_max, cfg.k),
        LaplacianKind::Undirected => {
            let lap = laplacian::undirected_normalized_laplacian(&g);
            SpectralBasis::from_laplacian(&lap, lambda_max, cfg.k)
        }
    }
}

/// The local cascade graph over the observed, truncated prefix: the first
/// `min(observed, max_nodes)` adopters with edges into truncated nodes
/// dropped alongside them.
fn observed_graph(cascade: &Cascade, window: f64, cfg: &CascnConfig) -> DiGraph {
    let observed = cascade.observe(window);
    let n = observed.num_nodes().min(cfg.max_nodes);
    let mut g = DiGraph::new(n);
    for (i, e) in observed.events().iter().enumerate().take(n).skip(1) {
        // Cascade validation guarantees non-root events carry parents.
        if let Some(p) = e.parent {
            if p < n {
                g.add_edge(p, i, 1.0);
            }
        }
    }
    g
}

fn lambda_mode(cfg: &CascnConfig) -> Option<f32> {
    match cfg.lambda_max {
        LambdaMax::Exact => None,
        LambdaMax::Approx2 => Some(2.0),
    }
}

/// [`preprocess`] with the spectral work already done — the cache-hit path
/// of the serving layer. `basis` must have been built by
/// [`spectral_basis`] for the same `(cascade, window, cfg)`; the output is
/// then bit-identical to [`preprocess`].
pub fn preprocess_with_basis(
    cascade: &Cascade,
    window: f64,
    cfg: &CascnConfig,
    basis: &SpectralBasis,
) -> PreprocessedCascade {
    assemble(cascade, window, cfg, basis.clone())
}

/// The shared tail of preprocessing: snapshot sampling and label
/// extraction around an owned spectral handle.
fn assemble(
    cascade: &Cascade,
    window: f64,
    cfg: &CascnConfig,
    basis: SpectralBasis,
) -> PreprocessedCascade {
    let dense_bases = match cfg.cheb_kernel {
        ChebKernel::Dense => Some(basis.materialize()),
        ChebKernel::Sparse => None,
    };
    assemble_with(cascade, window, cfg, basis, dense_bases)
}

/// [`assemble`] with the dense Chebyshev blocks (if any) already in hand —
/// lets [`WindowedPreprocessor`] reuse materialized `T_k` blocks across
/// overlapping windows instead of re-expanding them per request.
fn assemble_with(
    cascade: &Cascade,
    window: f64,
    cfg: &CascnConfig,
    basis: SpectralBasis,
    dense_bases: Option<Vec<Matrix>>,
) -> PreprocessedCascade {
    let n = basis.num_nodes();
    debug_assert_eq!(
        n,
        cascade.observe(window).num_nodes().min(cfg.max_nodes),
        "spectral basis node count disagrees with the observed prefix"
    );

    // Snapshot sequence over the truncated prefix, column-padded.
    let truncated = TruncatedView { cascade, n };
    let (snapshots, times) = truncated.snapshots_padded(cfg.max_steps, cfg.max_nodes);

    let increment = cascade.increment_size(window);
    PreprocessedCascade {
        lambda_max: basis.lambda_max,
        basis,
        dense_bases,
        snapshots,
        times,
        n,
        window,
        label_log: cascn_nn::metrics::log_label(increment),
        increment,
    }
}

/// Streaming preprocessor for one growing cascade.
///
/// Keeps the cascade's spectral state warm across appended adoption events
/// and overlapping observation windows: the directed operator advances via
/// [`IncrementalSpectral::push_child`] instead of a cold rebuild, and
/// materialized dense Chebyshev `T_k` blocks persist until an observed event
/// actually invalidates them (a push-style refresh at window crossings —
/// events beyond the window touch only the label side, so the spectral
/// handle and the `T_k` blocks are reused untouched).
///
/// Parity contract (tested here and in the workspace property suite):
/// [`WindowedPreprocessor::current`] matches [`preprocess`] on the same
/// `(cascade, window, cfg)` — snapshots, times and labels bit-identical,
/// the operator within the streaming tolerance (`5e-4` on predictions).
pub struct WindowedPreprocessor {
    cascade: Cascade,
    cfg: CascnConfig,
    window: f64,
    /// Incremental spectral state — populated only for the directed
    /// CasLaplacian; the undirected variant rebuilds cold on refresh.
    spectral: Option<IncrementalSpectral>,
    basis: SpectralBasis,
    /// Cached dense `T_k` blocks (under [`ChebKernel::Dense`]); dropped
    /// whenever the operator refreshes.
    dense: Option<Vec<Matrix>>,
}

impl WindowedPreprocessor {
    /// Registers a live cascade: one cold preprocessing pass, after which
    /// appends and window advances are incremental.
    pub fn new(cascade: Cascade, window: f64, cfg: &CascnConfig) -> Self {
        let (spectral, basis) = cold_state(&cascade, window, cfg);
        Self { cascade, cfg: *cfg, window, spectral, basis, dense: None }
    }

    /// The cascade as currently observed (input prefix plus future events).
    pub fn cascade(&self) -> &Cascade {
        &self.cascade
    }

    /// The active observation window.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The current spectral handle (cheap clone; heavy parts are `Arc`ed).
    pub fn basis(&self) -> SpectralBasis {
        self.basis.clone()
    }

    /// Observed-and-truncated node count — the operator's dimension.
    pub fn num_nodes(&self) -> usize {
        self.nodes()
    }

    /// Cold restarts taken by the incremental φ iteration (0 for the
    /// undirected variant, which has no warm path).
    pub fn warm_fallbacks(&self) -> u64 {
        self.spectral.as_ref().map_or(0, IncrementalSpectral::warm_fallbacks)
    }

    /// Approximate heap footprint for registry memory accounting.
    pub fn approx_bytes(&self) -> usize {
        let events = self.cascade.final_size() * std::mem::size_of::<Event>();
        let spectral = match &self.spectral {
            Some(s) => s.approx_bytes(),
            None => self.basis.approx_bytes(),
        };
        let dense: usize = self.dense.as_ref().map_or(0, |blocks| {
            blocks.iter().map(|m| m.rows() * m.cols() * std::mem::size_of::<f32>()).sum()
        });
        events + spectral + dense
    }

    /// Appends one adoption event, validated with the same invariants as
    /// the strict loader. Returns `Ok(true)` when the event landed inside
    /// the window (the operator was refreshed incrementally) and
    /// `Ok(false)` when it is label-side only or truncated past
    /// `max_nodes` (spectral state and cached `T_k` blocks reused as-is).
    pub fn observe_event(&mut self, event: Event) -> Result<bool, CascadeFault> {
        let before = self.nodes();
        self.cascade.try_append(event)?;
        let after = self.nodes();
        if after == before {
            return Ok(false);
        }
        self.dense = None;
        self.push_range(before, after);
        Ok(true)
    }

    /// Moves the observation window, pushing every event that crossed into
    /// it through the incremental operator. Returns the number of nodes
    /// that entered the observed prefix. A shrinking window has no
    /// push-style form and falls back to one cold rebuild.
    pub fn advance_window(&mut self, window: f64) -> usize {
        let before = self.nodes();
        if window < self.window {
            self.window = window;
            if self.nodes() != before {
                self.dense = None;
                let (spectral, basis) = cold_state(&self.cascade, window, &self.cfg);
                self.spectral = spectral;
                self.basis = basis;
            }
            return 0;
        }
        self.window = window;
        let after = self.nodes();
        if after == before {
            return 0;
        }
        self.dense = None;
        self.push_range(before, after);
        after - before
    }

    /// The model input at the current `(cascade, window)`. Reuses cached
    /// dense `T_k` blocks when the operator has not changed since the last
    /// call; snapshots and labels are recomputed (they are `O(n·steps)`).
    pub fn current(&mut self) -> PreprocessedCascade {
        let dense = match self.cfg.cheb_kernel {
            ChebKernel::Dense => {
                let basis = &self.basis;
                Some(self.dense.get_or_insert_with(|| basis.materialize()).clone())
            }
            ChebKernel::Sparse => None,
        };
        assemble_with(&self.cascade, self.window, &self.cfg, self.basis.clone(), dense)
    }

    fn nodes(&self) -> usize {
        self.cascade.observed_size(self.window).max(1).min(self.cfg.max_nodes)
    }

    /// Pushes nodes `before..after` (already appended and observed) through
    /// the incremental operator, or rebuilds cold for the undirected
    /// variant, then republishes the basis.
    fn push_range(&mut self, before: usize, after: usize) {
        match &mut self.spectral {
            Some(inc) => {
                for idx in before..after {
                    // Cascade validation guarantees non-root events carry
                    // in-range parents; the guard mirrors `observed_graph`.
                    if let Some(p) = self.cascade.events[idx].parent {
                        if p < idx {
                            inc.push_child(p);
                        }
                    }
                }
                self.basis = inc.basis();
            }
            None => {
                self.basis = spectral_basis(&self.cascade, self.window, &self.cfg);
            }
        }
    }
}

/// Cold spectral state for a `(cascade, window, cfg)` triple: incremental
/// handle for the directed CasLaplacian, plain basis otherwise.
fn cold_state(
    cascade: &Cascade,
    window: f64,
    cfg: &CascnConfig,
) -> (Option<IncrementalSpectral>, SpectralBasis) {
    match cfg.laplacian {
        LaplacianKind::Directed => {
            let g = observed_graph(cascade, window, cfg);
            let inc = IncrementalSpectral::from_graph(&g, cfg.alpha, lambda_mode(cfg), cfg.k);
            let basis = inc.basis();
            (Some(inc), basis)
        }
        LaplacianKind::Undirected => (None, spectral_basis(cascade, window, cfg)),
    }
}

/// Internal helper that re-implements the snapshot sampling over a truncated
/// node prefix with column padding.
struct TruncatedView<'a> {
    cascade: &'a Cascade,
    n: usize,
}

impl TruncatedView<'_> {
    fn snapshots_padded(&self, max_steps: usize, width: usize) -> (Vec<Matrix>, Vec<f64>) {
        let n = self.n;
        let events = &self.cascade.events[..n];
        let steps = n.min(max_steps.max(1));
        let mut boundaries = Vec::with_capacity(steps);
        for s in 1..=steps {
            boundaries.push((s * n).div_ceil(steps));
        }
        let mut out = Vec::with_capacity(steps);
        let mut times = Vec::with_capacity(steps);
        let mut adj = Matrix::zeros(n, width);
        adj[(0, 0)] = 1.0; // root self-connection
        let mut next_event = 1usize;
        for &b in &boundaries {
            while next_event < b {
                let e = &events[next_event];
                // Cascade validation guarantees non-root events carry parents.
                if let Some(p) = e.parent {
                    if p < n && next_event < width {
                        adj[(p, next_event)] = 1.0;
                    }
                }
                next_event += 1;
            }
            out.push(adj.clone());
            times.push(events[b - 1].time);
        }
        (out, times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::Event;

    fn fig1() -> Cascade {
        Cascade::new(
            1,
            0.0,
            vec![
                Event { user: 0, parent: None, time: 0.0 },
                Event { user: 1, parent: Some(0), time: 10.0 },
                Event { user: 2, parent: Some(0), time: 20.0 },
                Event { user: 3, parent: Some(1), time: 30.0 },
                Event { user: 4, parent: Some(1), time: 40.0 },
                Event { user: 5, parent: Some(3), time: 50.0 },
            ],
        )
    }

    fn cfg() -> CascnConfig {
        CascnConfig {
            max_nodes: 10,
            max_steps: 8,
            k: 2,
            ..CascnConfig::default()
        }
    }

    #[test]
    fn shapes_are_consistent() {
        let p = preprocess(&fig1(), 60.0, &cfg());
        assert_eq!(p.n, 6);
        assert_eq!(p.basis.order(), 2, "order K");
        assert_eq!(p.basis.num_nodes(), 6);
        assert!(
            p.dense_bases.is_none(),
            "the default sparse kernel must not materialize dense bases"
        );
        assert_eq!(p.snapshots.len(), 6);
        for s in &p.snapshots {
            assert_eq!(s.shape(), (6, 10), "column padded to max_nodes");
        }
        assert_eq!(p.times.len(), p.snapshots.len());
        assert_eq!(p.increment, 0);
        assert_eq!(p.label_log, 0.0, "ln(1+0) = 0");
    }

    #[test]
    fn window_truncates_label() {
        let p = preprocess(&fig1(), 25.0, &cfg());
        assert_eq!(p.n, 3);
        assert_eq!(p.increment, 3);
        assert!((p.label_log - 4.0f32.ln()).abs() < 1e-6);
    }

    /// Boundary pin: an event at exactly `t == window` belongs to the model
    /// input, not to the label — `observe`, `increment_size`, and label
    /// truncation must all agree on that, at the boundary and ±ε around it.
    #[test]
    fn window_boundary_event_is_input_not_label() {
        let c = fig1(); // has an event at exactly t = 20.0
        let eps = 1e-9;
        let at = preprocess(&c, 20.0, &cfg());
        assert_eq!(at.n, 3, "boundary event is observed");
        assert_eq!(at.increment, 3, "boundary event is not predicted");
        assert!((at.label_log - 4.0f32.ln()).abs() < 1e-6);
        assert_eq!(*at.times.last().unwrap(), 20.0, "boundary event's time is in the input");

        let below = preprocess(&c, 20.0 - eps, &cfg());
        assert_eq!((below.n, below.increment), (2, 4));
        let above = preprocess(&c, 20.0 + eps, &cfg());
        assert_eq!((above.n, above.increment), (3, 3));
        for p in [&at, &below, &above] {
            assert_eq!(p.n + p.increment, c.final_size(), "no event lost or double-counted");
        }
    }

    #[test]
    fn oversize_cascades_are_truncated() {
        let small = CascnConfig {
            max_nodes: 4,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &small);
        assert_eq!(p.n, 4);
        assert_eq!(p.basis.num_nodes(), 4);
        for s in &p.snapshots {
            assert_eq!(s.shape(), (4, 4));
        }
        // Edges to truncated nodes must not appear.
        let last = p.snapshots.last().unwrap();
        assert_eq!(last.sum(), 1.0 + 3.0, "self-loop + edges among first 4 nodes");
    }

    #[test]
    fn step_cap_preserves_final_snapshot() {
        let capped = CascnConfig {
            max_steps: 2,
            ..cfg()
        };
        let full = preprocess(&fig1(), 60.0, &cfg());
        let short = preprocess(&fig1(), 60.0, &capped);
        assert_eq!(short.snapshots.len(), 2);
        assert_eq!(
            short.snapshots.last().unwrap().as_slice(),
            full.snapshots.last().unwrap().as_slice(),
            "final snapshot must contain the whole observed cascade"
        );
        assert_eq!(*short.times.last().unwrap(), 50.0);
    }

    #[test]
    fn approx2_sets_lambda() {
        let c = CascnConfig {
            lambda_max: LambdaMax::Approx2,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &c);
        assert_eq!(p.lambda_max, 2.0);
        let exact = preprocess(&fig1(), 60.0, &cfg());
        assert_ne!(exact.lambda_max, 2.0);
    }

    #[test]
    fn undirected_bases_are_symmetric() {
        let c = CascnConfig {
            laplacian: LaplacianKind::Undirected,
            cheb_kernel: ChebKernel::Dense,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &c);
        let bases = p.dense_bases.as_ref().expect("Dense kernel materializes");
        assert_eq!(bases.len(), 3, "K + 1 bases");
        let t1 = &bases[1];
        for r in 0..t1.rows() {
            for cidx in 0..t1.cols() {
                assert!((t1[(r, cidx)] - t1[(cidx, r)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dense_kernel_materializes_matching_bases() {
        let dense_cfg = CascnConfig {
            cheb_kernel: ChebKernel::Dense,
            ..cfg()
        };
        let p = preprocess(&fig1(), 60.0, &dense_cfg);
        let bases = p.dense_bases.as_ref().expect("Dense kernel materializes");
        assert_eq!(bases.len(), 3, "K + 1 bases");
        for b in bases {
            assert_eq!(b.shape(), (6, 6));
        }
        // The materialization is exactly basis.materialize() — same handle,
        // same bits — and both kernels share one spectral pipeline.
        let sparse = preprocess(&fig1(), 60.0, &cfg());
        assert_eq!(sparse.lambda_max.to_bits(), p.lambda_max.to_bits());
        for (a, b) in p.basis.materialize().iter().zip(bases) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn cached_basis_path_is_bit_identical() {
        // The serving cache depends on preprocess_with_basis(spectral_basis(…))
        // reproducing preprocess(…) exactly.
        for window in [25.0, 60.0] {
            let direct = preprocess(&fig1(), window, &cfg());
            let basis = spectral_basis(&fig1(), window, &cfg());
            let cached = preprocess_with_basis(&fig1(), window, &cfg(), &basis);
            assert_eq!(direct.n, cached.n);
            assert_eq!(direct.lambda_max.to_bits(), cached.lambda_max.to_bits());
            assert_eq!(
                direct.basis.scaled_dense().as_slice(),
                cached.basis.scaled_dense().as_slice(),
                "operators must match bit-for-bit"
            );
            for (a, b) in direct.snapshots.iter().zip(&cached.snapshots) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
            assert_eq!(direct.times, cached.times);
            assert_eq!(direct.increment, cached.increment);
        }
    }

    #[test]
    fn spectral_basis_respects_node_truncation() {
        let small = CascnConfig { max_nodes: 4, ..cfg() };
        let basis = spectral_basis(&fig1(), 60.0, &small);
        assert_eq!(basis.num_nodes(), 4);
        assert_eq!(basis.order(), small.k);
    }

    /// Entrywise operator distance between two bases of equal dimension.
    fn basis_gap(a: &SpectralBasis, b: &SpectralBasis) -> f32 {
        let (da, db) = (a.scaled_dense(), b.scaled_dense());
        da.as_slice()
            .iter()
            .zip(db.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }

    fn assert_matches_cold(p: &PreprocessedCascade, cascade: &Cascade, window: f64, c: &CascnConfig) {
        let cold = preprocess(cascade, window, c);
        assert_eq!(p.n, cold.n);
        assert_eq!(p.increment, cold.increment);
        assert_eq!(p.times, cold.times);
        for (a, b) in p.snapshots.iter().zip(&cold.snapshots) {
            assert_eq!(a.as_slice(), b.as_slice(), "snapshots must be bit-identical");
        }
        let gap = basis_gap(&p.basis, &cold.basis);
        assert!(gap < 5e-4, "operator drifted from cold preprocessing: {gap}");
        if let (Some(warm), Some(cold_b)) = (&p.dense_bases, &cold.dense_bases) {
            for (wm, cm) in warm.iter().zip(cold_b) {
                let g = wm
                    .as_slice()
                    .iter()
                    .zip(cm.as_slice())
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(g < 5e-4, "dense T_k block drifted: {g}");
            }
        }
    }

    #[test]
    fn windowed_preprocessor_tracks_cold_preprocessing_per_event() {
        let full = fig1();
        // Start from the first three events; stream the rest in one by one.
        let seed = Cascade::new(1, 0.0, full.events[..3].to_vec());
        let window = 100.0;
        let mut wp = WindowedPreprocessor::new(seed, window, &cfg());
        assert_matches_cold(&wp.current(), wp.cascade(), window, &cfg());
        for e in &full.events[3..] {
            assert!(wp.observe_event(e.clone()).unwrap(), "in-window event refreshes");
            let snapshot = wp.cascade().clone();
            assert_matches_cold(&wp.current(), &snapshot, window, &cfg());
        }
        assert_eq!(wp.num_nodes(), 6);
        assert_eq!(wp.warm_fallbacks(), 0, "healthy tree never needs a cold restart");
    }

    #[test]
    fn future_events_touch_only_the_label_side() {
        let full = fig1();
        let seed = Cascade::new(1, 0.0, full.events[..3].to_vec());
        let window = 25.0; // events at t=30,40,50 stay label-side
        let mut wp = WindowedPreprocessor::new(seed, window, &cfg());
        let before = wp.current();
        for e in &full.events[3..] {
            assert!(!wp.observe_event(e.clone()).unwrap(), "beyond-window event must not refresh");
        }
        let after = wp.current();
        assert_eq!(after.n, before.n);
        assert_eq!(after.increment, 3, "label side saw all three future events");
        assert_eq!(
            before.basis.scaled_dense().as_slice(),
            after.basis.scaled_dense().as_slice(),
            "spectral handle reused bit-for-bit"
        );
        assert_matches_cold(&after, wp.cascade(), window, &cfg());
    }

    #[test]
    fn window_crossing_pushes_pending_events() {
        let full = fig1();
        let mut wp = WindowedPreprocessor::new(full.clone(), 25.0, &cfg());
        assert_eq!(wp.num_nodes(), 3);
        // Crossing to t=45 pulls events at 30 and 40 into the prefix.
        assert_eq!(wp.advance_window(45.0), 2);
        assert_matches_cold(&wp.current(), &full, 45.0, &cfg());
        // A boundary-exact crossing pulls the t=50 event (inclusive).
        assert_eq!(wp.advance_window(50.0), 1);
        assert_matches_cold(&wp.current(), &full, 50.0, &cfg());
        // No-op advance refreshes nothing.
        assert_eq!(wp.advance_window(60.0), 0);
        // Shrinking rebuilds cold and still matches.
        wp.advance_window(25.0);
        assert_matches_cold(&wp.current(), &full, 25.0, &cfg());
        assert_eq!(wp.num_nodes(), 3);
    }

    #[test]
    fn dense_blocks_are_reused_across_unchanged_windows() {
        let dense_cfg = CascnConfig { cheb_kernel: ChebKernel::Dense, ..cfg() };
        let full = fig1();
        let mut wp = WindowedPreprocessor::new(full.clone(), 25.0, &dense_cfg);
        let first = wp.current();
        // Label-side append: cached blocks survive and stay bit-identical.
        wp.observe_event(Event { user: 9, parent: Some(2), time: 60.0 }).unwrap();
        let second = wp.current();
        let (a, b) = (
            first.dense_bases.as_ref().expect("Dense kernel materializes"),
            second.dense_bases.as_ref().expect("Dense kernel materializes"),
        );
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.as_slice(), y.as_slice(), "T_k blocks reused across windows");
        }
        // A refresh (window crossing) invalidates and rebuilds them.
        assert!(wp.advance_window(60.0) > 0);
        let snapshot = wp.cascade().clone();
        assert_matches_cold(&wp.current(), &snapshot, 60.0, &dense_cfg);
        // And out-of-order or invalid appends are rejected untouched.
        wp.observe_event(Event { user: 10, parent: Some(2), time: 24.9 }).unwrap_err();
        wp.observe_event(Event { user: 10, parent: None, time: 70.0 }).unwrap_err();
    }

    #[test]
    fn windowed_preprocessor_handles_undirected_and_truncation() {
        let und = CascnConfig { laplacian: LaplacianKind::Undirected, ..cfg() };
        let full = fig1();
        let seed = Cascade::new(1, 0.0, full.events[..2].to_vec());
        let mut wp = WindowedPreprocessor::new(seed, 100.0, &und);
        for e in &full.events[2..] {
            wp.observe_event(e.clone()).unwrap();
        }
        let snapshot = wp.cascade().clone();
        assert_matches_cold(&wp.current(), &snapshot, 100.0, &und);

        // Truncation: past max_nodes the operator must stop growing.
        let small = CascnConfig { max_nodes: 4, ..cfg() };
        let mut wp = WindowedPreprocessor::new(full.clone(), 100.0, &small);
        assert_eq!(wp.num_nodes(), 4);
        assert!(!wp.observe_event(Event { user: 11, parent: Some(3), time: 70.0 }).unwrap());
        assert_eq!(wp.num_nodes(), 4);
        let snapshot = wp.cascade().clone();
        assert_matches_cold(&wp.current(), &snapshot, 100.0, &small);
    }

    #[test]
    fn singleton_cascade_preprocesses() {
        let c = Cascade::new(9, 0.0, vec![Event { user: 7, parent: None, time: 0.0 }]);
        let p = preprocess(&c, 100.0, &cfg());
        assert_eq!(p.n, 1);
        assert_eq!(p.snapshots.len(), 1);
        assert_eq!(p.snapshots[0][(0, 0)], 1.0, "root self-loop");
        assert!(p.basis.scaled_dense().all_finite());
        assert!(p.basis.materialize().iter().all(|b| b.all_finite()));
    }
}
