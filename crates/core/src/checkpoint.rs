//! Resumable training checkpoints (format v2).
//!
//! A v2 checkpoint carries everything needed to continue a run *bit-exactly*:
//! model parameters, Adam moments and step counter, the early-stopping
//! state, the loss history, the effective learning rate and anomaly-guard
//! streak, and the shuffle seed (the batch RNG is resumed by replaying the
//! per-epoch shuffles, which keeps the format independent of RNG internals).
//!
//! ```text
//! # cascn train checkpoint v2
//! # section meta
//! epoch 5
//! shuffle_seed 7
//! ...
//! # section stopper
//! ...
//! # section params
//! param <name> <rows> <cols>
//! ...
//! # checksum fnv1a64 <16 hex digits>
//! ```
//!
//! The footer is an FNV-1a 64 checksum over every byte before the footer
//! line; loading verifies it first, so truncated or bit-flipped files are
//! rejected with a precise error instead of silently misparsed. Writes go
//! through [`atomic_write`] (temp file + rename), so a crash mid-write can
//! never leave a half-written checkpoint behind.

use std::fmt::Write as _;
use std::path::Path;

use cascn_autograd::{atomic_write, fnv1a64, AdamState, ParamStore};
use cascn_nn::train::{AnomalyEvent, AnomalyKind, EpochRecord, History};
use cascn_tensor::Matrix;

use crate::error::CascnError;

/// First line of every v2 checkpoint.
pub const V2_HEADER: &str = "# cascn train checkpoint v2";
const CHECKSUM_PREFIX: &str = "# checksum fnv1a64 ";

/// Early-stopping state snapshot (mirrors `EarlyStopping`'s fields).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopperState {
    /// Configured patience.
    pub patience: usize,
    /// Best validation loss seen.
    pub best: f32,
    /// 1-based epoch of the best validation loss.
    pub best_epoch: usize,
    /// Consecutive non-improving epochs.
    pub stale: usize,
    /// Total epochs observed.
    pub epochs_seen: usize,
}

/// A complete training-run snapshot, written after an epoch completes.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Number of completed epochs.
    pub epoch: usize,
    /// Shuffle seed of the run (resume replays this many epoch shuffles).
    pub shuffle_seed: u64,
    /// The run's configured learning rate.
    pub base_lr: f32,
    /// Effective learning rate after anomaly-guard backoff.
    pub eff_lr: f32,
    /// Consecutive bad batches at snapshot time.
    pub bad_streak: usize,
    /// Early-stopping state.
    pub stopper: StopperState,
    /// Loss history so far (records and anomaly log).
    pub history: History,
    /// Adam moments and step counter.
    pub adam: AdamState,
    /// Current model parameters.
    pub params: ParamStore,
    /// Parameters of the best validation epoch, when one exists.
    pub best_params: Option<ParamStore>,
}

impl TrainCheckpoint {
    /// Whether `text` looks like a v2 train checkpoint (vs a v1 params file).
    pub fn is_v2(text: &str) -> bool {
        text.lines()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.trim() == V2_HEADER)
    }

    /// Serializes the checkpoint, including the checksum footer.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{V2_HEADER}");
        let _ = writeln!(out, "# section meta");
        let _ = writeln!(out, "epoch {}", self.epoch);
        let _ = writeln!(out, "shuffle_seed {}", self.shuffle_seed);
        let _ = writeln!(out, "base_lr {:?}", self.base_lr);
        let _ = writeln!(out, "eff_lr {:?}", self.eff_lr);
        let _ = writeln!(out, "bad_streak {}", self.bad_streak);
        let _ = writeln!(out, "# section stopper");
        let s = &self.stopper;
        let _ = writeln!(
            out,
            "stopper {} {:?} {} {} {}",
            s.patience, s.best, s.best_epoch, s.stale, s.epochs_seen
        );
        let _ = writeln!(out, "# section history");
        for r in self.history.records() {
            let _ = writeln!(out, "record {} {:?} {:?}", r.epoch, r.train_loss, r.val_loss);
        }
        for a in self.history.anomalies() {
            let _ = writeln!(out, "anomaly {} {} {}", a.epoch, a.batch, a.kind.as_token());
        }
        let _ = writeln!(out, "# section adam");
        let _ = writeln!(out, "step {}", self.adam.step);
        for (which, moments) in [("m", &self.adam.m), ("v", &self.adam.v)] {
            for (i, mat) in moments.iter().enumerate() {
                write_matrix(&mut out, &format!("moment {which} {i}"), mat);
            }
        }
        let _ = writeln!(out, "# section params");
        push_params(&mut out, &self.params);
        if let Some(best) = &self.best_params {
            let _ = writeln!(out, "# section best_params");
            push_params(&mut out, best);
        }
        let checksum = fnv1a64(out.as_bytes());
        let _ = writeln!(out, "{CHECKSUM_PREFIX}{checksum:016x}");
        out
    }

    /// Parses and integrity-checks a checkpoint produced by
    /// [`TrainCheckpoint::to_text`].
    pub fn from_text(text: &str) -> Result<Self, CascnError> {
        let body = verify_checksum(text)?;
        if !Self::is_v2(body) {
            return Err(CascnError::Checkpoint(format!(
                "unrecognized header (expected `{V2_HEADER}`) — \
                 is this a v1 params file? pass it to `predict --model` instead"
            )));
        }

        let mut meta_epoch = None;
        let mut shuffle_seed = None;
        let mut base_lr = None;
        let mut eff_lr = None;
        let mut bad_streak = 0usize;
        let mut stopper = None;
        let mut records: Vec<EpochRecord> = Vec::new();
        let mut anomalies: Vec<AnomalyEvent> = Vec::new();
        let mut adam_step = 0u64;
        let mut adam_m: Vec<Matrix> = Vec::new();
        let mut adam_v: Vec<Matrix> = Vec::new();
        let mut params_text = String::new();
        let mut best_text = String::new();

        let mut section = String::new();
        let mut lines = body.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line == V2_HEADER {
                continue;
            }
            if let Some(name) = line.strip_prefix("# section ") {
                section = name.trim().to_string();
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let err = |msg: String| {
                CascnError::Checkpoint(format!("line {lineno}: {msg}"))
            };
            match section.as_str() {
                "meta" => {
                    let (key, val) = split_kv(line, lineno)?;
                    match key {
                        "epoch" => meta_epoch = Some(parse_num(val, "epoch", lineno)?),
                        "shuffle_seed" => {
                            shuffle_seed = Some(parse_num(val, "shuffle_seed", lineno)?)
                        }
                        "base_lr" => base_lr = Some(parse_num(val, "base_lr", lineno)?),
                        "eff_lr" => eff_lr = Some(parse_num(val, "eff_lr", lineno)?),
                        "bad_streak" => bad_streak = parse_num(val, "bad_streak", lineno)?,
                        other => return Err(err(format!("unknown meta key `{other}`"))),
                    }
                }
                "stopper" => {
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    if toks.len() != 6 || toks[0] != "stopper" {
                        return Err(err("malformed stopper record".into()));
                    }
                    stopper = Some(StopperState {
                        patience: parse_num(toks[1], "patience", lineno)?,
                        best: parse_num(toks[2], "best", lineno)?,
                        best_epoch: parse_num(toks[3], "best_epoch", lineno)?,
                        stale: parse_num(toks[4], "stale", lineno)?,
                        epochs_seen: parse_num(toks[5], "epochs_seen", lineno)?,
                    });
                }
                "history" => {
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    match toks.first().copied() {
                        Some("record") if toks.len() == 4 => records.push(EpochRecord {
                            epoch: parse_num(toks[1], "epoch", lineno)?,
                            train_loss: parse_num(toks[2], "train_loss", lineno)?,
                            val_loss: parse_num(toks[3], "val_loss", lineno)?,
                        }),
                        Some("anomaly") if toks.len() == 4 => {
                            let kind = AnomalyKind::from_token(toks[3]).ok_or_else(|| {
                                err(format!("unknown anomaly kind `{}`", toks[3]))
                            })?;
                            anomalies.push(AnomalyEvent {
                                epoch: parse_num(toks[1], "epoch", lineno)?,
                                batch: parse_num(toks[2], "batch", lineno)?,
                                kind,
                            });
                        }
                        _ => return Err(err("malformed history record".into())),
                    }
                }
                "adam" => {
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    match toks.first().copied() {
                        Some("step") if toks.len() == 2 => {
                            adam_step = parse_num(toks[1], "step", lineno)?;
                        }
                        Some("moment") if toks.len() == 5 => {
                            let rows: usize = parse_num(toks[3], "rows", lineno)?;
                            let cols: usize = parse_num(toks[4], "cols", lineno)?;
                            let mat = read_matrix(&mut lines, rows, cols)
                                .map_err(CascnError::Checkpoint)?;
                            match toks[1] {
                                "m" => adam_m.push(mat),
                                "v" => adam_v.push(mat),
                                other => {
                                    return Err(err(format!("unknown moment `{other}`")))
                                }
                            }
                        }
                        _ => return Err(err("malformed adam record".into())),
                    }
                }
                "params" => {
                    params_text.push_str(raw);
                    params_text.push('\n');
                }
                "best_params" => {
                    best_text.push_str(raw);
                    best_text.push('\n');
                }
                other => {
                    return Err(err(format!("content outside a known section (`{other}`)")))
                }
            }
        }

        let missing = |what: &str| CascnError::Checkpoint(format!("missing {what}"));
        let params = ParamStore::from_text(&params_text)
            .map_err(|e| CascnError::Checkpoint(format!("params section: {e}")))?;
        if params.is_empty() {
            return Err(missing("params section"));
        }
        let best_params = if best_text.is_empty() {
            None
        } else {
            Some(
                ParamStore::from_text(&best_text)
                    .map_err(|e| CascnError::Checkpoint(format!("best_params section: {e}")))?,
            )
        };
        if adam_m.len() != adam_v.len() {
            return Err(CascnError::Checkpoint(format!(
                "adam moments mismatch: {} first vs {} second",
                adam_m.len(),
                adam_v.len()
            )));
        }
        Ok(Self {
            epoch: meta_epoch.ok_or_else(|| missing("meta `epoch`"))?,
            shuffle_seed: shuffle_seed.ok_or_else(|| missing("meta `shuffle_seed`"))?,
            base_lr: base_lr.ok_or_else(|| missing("meta `base_lr`"))?,
            eff_lr: eff_lr.ok_or_else(|| missing("meta `eff_lr`"))?,
            bad_streak,
            stopper: stopper.ok_or_else(|| missing("stopper section"))?,
            history: History::from_parts(records, anomalies),
            adam: AdamState {
                step: adam_step,
                m: adam_m,
                v: adam_v,
            },
            params,
            best_params,
        })
    }

    /// Writes the checkpoint atomically.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CascnError> {
        atomic_write(path.as_ref(), self.to_text().as_bytes())?;
        Ok(())
    }

    /// Loads and verifies a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CascnError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            CascnError::Checkpoint(format!("{}: {e}", path.display()))
        })?;
        Self::from_text(&text)
            .map_err(|e| match e {
                CascnError::Checkpoint(m) => {
                    CascnError::Checkpoint(format!("{}: {m}", path.display()))
                }
                CascnError::CheckpointTruncated { offset, message } => {
                    CascnError::CheckpointTruncated {
                        offset,
                        message: format!("{}: {message}", path.display()),
                    }
                }
                other => other,
            })
    }
}

/// Splits off and verifies the checksum footer, returning the covered body.
///
/// A file whose final line is not a complete checksum footer was cut short
/// — the footer is always the last thing written — so that case surfaces
/// as [`CascnError::CheckpointTruncated`] with the byte offset at which
/// the file ended. A present, well-formed footer that fails to match is
/// corruption instead ([`CascnError::Checkpoint`]).
fn verify_checksum(text: &str) -> Result<&str, CascnError> {
    let truncated = |message: String| CascnError::CheckpointTruncated {
        offset: text.len(),
        message,
    };
    let footer_at = text
        .lines()
        .last()
        .filter(|l| l.starts_with(CHECKSUM_PREFIX))
        .and_then(|l| text.rfind(l))
        .ok_or_else(|| {
            truncated("missing checksum footer — file cut short or not a v2 checkpoint".into())
        })?;
    let footer = text[footer_at..].trim_end();
    let hex = &footer[CHECKSUM_PREFIX.len()..];
    if hex.len() < 16 {
        // The 16-hex-digit checksum itself was cut mid-write.
        return Err(truncated(format!(
            "checksum footer cut short after {} of 16 hex digits (`{hex}`)",
            hex.len()
        )));
    }
    let expected = u64::from_str_radix(hex.trim(), 16).map_err(|_| {
        CascnError::Checkpoint(format!("malformed checksum footer `{hex}`"))
    })?;
    let body = &text[..footer_at];
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(CascnError::Checkpoint(format!(
            "checksum mismatch (footer {expected:016x}, computed {actual:016x}) — \
             file truncated or corrupted"
        )));
    }
    Ok(body)
}

fn push_params(out: &mut String, store: &ParamStore) {
    // ParamStore::to_text leads with its own `# cascn params v1` comment,
    // which section parsing skips; keeping it makes sections self-describing.
    out.push_str(&store.to_text());
}

fn write_matrix(out: &mut String, header: &str, mat: &Matrix) {
    let _ = writeln!(out, "{header} {} {}", mat.rows(), mat.cols());
    for r in 0..mat.rows() {
        let row: Vec<String> = mat.row(r).iter().map(|x| format!("{x:?}")).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
}

fn read_matrix<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = (usize, &'a str)>>,
    rows: usize,
    cols: usize,
) -> Result<Matrix, String> {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        let (lineno, row_line) = lines.next().ok_or("truncated matrix rows")?;
        for tok in row_line.split_whitespace() {
            let v: f32 = tok
                .parse()
                .map_err(|_| format!("line {}: bad float `{tok}`", lineno + 1))?;
            data.push(v);
        }
    }
    if data.len() != rows * cols {
        return Err(format!(
            "matrix expected {} values, got {}",
            rows * cols,
            data.len()
        ));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn split_kv(line: &str, lineno: usize) -> Result<(&str, &str), CascnError> {
    line.split_once(' ')
        .map(|(k, v)| (k, v.trim()))
        .ok_or_else(|| CascnError::Checkpoint(format!("line {lineno}: expected `key value`")))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str, lineno: usize) -> Result<T, CascnError> {
    tok.parse()
        .map_err(|_| CascnError::Checkpoint(format!("line {lineno}: bad {what} `{tok}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        let mut params = ParamStore::new();
        params.register("w", Matrix::from_rows(&[&[1.5, -2.0e-7], &[0.25, 3.0]]));
        params.register("b", Matrix::row_vector(&[0.125]));
        let mut best = params.clone();
        best.value_mut(best.ids().next().unwrap()).as_mut_slice()[0] = 9.0;
        let mut history = History::new();
        history.push(1.0, 2.0);
        history.push(0.5, f32::NAN);
        history.log_anomaly(2, 3, AnomalyKind::NonFiniteGrad);
        TrainCheckpoint {
            epoch: 2,
            shuffle_seed: 7,
            base_lr: 5e-3,
            eff_lr: 2.5e-3,
            bad_streak: 1,
            stopper: StopperState {
                patience: 10,
                best: 2.0,
                best_epoch: 1,
                stale: 1,
                epochs_seen: 2,
            },
            history,
            adam: AdamState {
                step: 17,
                m: vec![Matrix::full(2, 2, 0.5), Matrix::zeros(1, 1)],
                v: vec![Matrix::full(2, 2, 0.25), Matrix::full(1, 1, 1e-9)],
            },
            params,
            best_params: Some(best),
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ckpt = sample();
        let text = ckpt.to_text();
        let back = TrainCheckpoint::from_text(&text).expect("parses");
        assert_eq!(back.epoch, 2);
        assert_eq!(back.shuffle_seed, 7);
        assert_eq!(back.base_lr, 5e-3);
        assert_eq!(back.eff_lr, 2.5e-3);
        assert_eq!(back.bad_streak, 1);
        assert_eq!(back.stopper, ckpt.stopper);
        assert_eq!(back.adam, ckpt.adam);
        assert_eq!(back.history.records().len(), 2);
        assert!(back.history.records()[1].val_loss.is_nan());
        assert_eq!(back.history.anomalies(), ckpt.history.anomalies());
        for (a, b) in ckpt.params.ids().zip(back.params.ids()) {
            assert_eq!(ckpt.params.value(a).as_slice(), back.params.value(b).as_slice());
        }
        let best = back.best_params.expect("best params survive");
        assert_eq!(best.value(best.ids().next().unwrap()).as_slice()[0], 9.0);
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample().to_text();
        // Cutting anywhere — including mid-footer — must be rejected.
        for frac in [0.25, 0.6, 0.95] {
            let cut = (text.len() as f64 * frac) as usize;
            let err = TrainCheckpoint::from_text(&text[..cut]).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("checksum") || msg.contains("truncated"),
                "cut at {frac}: {msg}"
            );
        }
    }

    #[test]
    fn truncation_reports_distinct_variant_with_byte_offset() {
        // Regression: a truncated file used to surface as a generic
        // `Checkpoint` parse error; it must be its own variant carrying the
        // byte offset where the file ended.
        let text = sample().to_text();
        for cut in [text.len() / 3, text.len() - 40, text.len() - 5] {
            match TrainCheckpoint::from_text(&text[..cut]).unwrap_err() {
                CascnError::CheckpointTruncated { offset, .. } => {
                    assert_eq!(offset, cut, "offset must be where the bytes stop");
                }
                other => panic!("cut at {cut}: expected CheckpointTruncated, got {other}"),
            }
        }
        // And the file loader preserves the variant while prefixing the path.
        let dir = std::env::temp_dir().join("cascn_ckpt_trunc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.ckpt");
        let cut = text.len() / 2;
        std::fs::write(&path, &text[..cut]).unwrap();
        match TrainCheckpoint::load(&path).unwrap_err() {
            CascnError::CheckpointTruncated { offset, message } => {
                assert_eq!(offset, cut);
                assert!(message.contains("cut.ckpt"), "{message}");
            }
            other => panic!("expected CheckpointTruncated, got {other}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corruption_keeps_the_generic_checkpoint_variant() {
        // A full-length file with a matching-length footer but flipped body
        // bytes is corruption, not truncation.
        let text = sample().to_text();
        let flipped = text.replacen("0.25", "0.26", 1);
        match TrainCheckpoint::from_text(&flipped).unwrap_err() {
            CascnError::Checkpoint(m) => assert!(m.contains("checksum mismatch"), "{m}"),
            other => panic!("expected Checkpoint, got {other}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let text = sample().to_text();
        let flipped = text.replacen("0.25", "0.26", 1);
        assert_ne!(flipped, text, "test must actually corrupt a byte");
        let err = TrainCheckpoint::from_text(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn v1_params_file_is_rejected_with_guidance() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 1));
        let v1 = store.to_text();
        let err = TrainCheckpoint::from_text(&v1).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum") || msg.contains("v1"),
            "unhelpful v1 error: {msg}"
        );
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("cascn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        ckpt.save(&path).unwrap(); // overwrite is fine
        let back = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(back.epoch, ckpt.epoch);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn is_v2_detects_format() {
        assert!(TrainCheckpoint::is_v2(&sample().to_text()));
        assert!(!TrainCheckpoint::is_v2("# cascn params v1\n"));
        assert!(!TrainCheckpoint::is_v2(""));
    }
}
