//! The Algorithm 2 training loop, shared by CasCN, its variants, and the
//! deep baselines.

use cascn_autograd::{Adam, Optimizer, ParamStore, Tape, Var};
use cascn_nn::metrics;
use cascn_nn::train::{shuffled_batches, EarlyStopping, History};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Training options (paper defaults: Adam, learning rate 5e-3, batch 32,
/// stop after 10 stagnant validation epochs).
#[derive(Debug, Clone, Copy)]
pub struct TrainOpts {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged within a batch).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Seed for batch shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainOpts {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            lr: 5e-3,
            patience: 10,
            grad_clip: 5.0,
            shuffle_seed: 7,
        }
    }
}

/// Runs the generic train loop over preprocessed samples.
///
/// `forward` builds the model's forward pass for one sample and returns the
/// `1x1` predicted log-increment. Training minimizes the squared error to
/// `train_labels` (Eq. 19); after every epoch the validation MSLE (Eq. 20)
/// is recorded, and the parameters of the best validation epoch are restored
/// before returning.
pub fn train_loop<S>(
    store: &mut ParamStore,
    forward: &dyn Fn(&mut Tape, &ParamStore, &S) -> Var,
    train: &[S],
    train_labels: &[f32],
    val: &[S],
    val_increments: &[usize],
    opts: &TrainOpts,
) -> History {
    train_loop_observed(
        store,
        forward,
        train,
        train_labels,
        val,
        val_increments,
        opts,
        &mut |_, _| {},
    )
}

/// [`train_loop`] with a per-epoch observer: after every epoch the observer
/// receives the (1-based) epoch index and the current parameters — used by
/// the Fig. 8 experiment to trace MSLE on sub-populations during training.
#[allow(clippy::too_many_arguments)]
pub fn train_loop_observed<S>(
    store: &mut ParamStore,
    forward: &dyn Fn(&mut Tape, &ParamStore, &S) -> Var,
    train: &[S],
    train_labels: &[f32],
    val: &[S],
    val_increments: &[usize],
    opts: &TrainOpts,
    observer: &mut dyn FnMut(usize, &ParamStore),
) -> History {
    assert_eq!(train.len(), train_labels.len(), "train labels mismatch");
    assert_eq!(val.len(), val_increments.len(), "val labels mismatch");
    assert!(!train.is_empty(), "train_loop: empty training set");

    let mut opt = Adam::with_lr(opts.lr);
    let mut rng = StdRng::seed_from_u64(opts.shuffle_seed);
    let mut stopper = EarlyStopping::new(opts.patience);
    let mut history = History::new();
    let mut best_params: Option<ParamStore> = None;

    for epoch in 0..opts.epochs {
        let mut train_loss = 0.0f64;
        for batch in shuffled_batches(train.len(), opts.batch_size, &mut rng) {
            store.zero_grads();
            for &i in &batch {
                let mut tape = Tape::new();
                let pred = forward(&mut tape, store, &train[i]);
                let loss = tape.squared_error(pred, train_labels[i]);
                train_loss += tape.scalar(loss) as f64;
                tape.backward(loss);
                tape.accumulate_param_grads(store);
            }
            store.scale_grads(1.0 / batch.len() as f32);
            if opts.grad_clip > 0.0 {
                store.clip_grad_norm(opts.grad_clip);
            }
            opt.step(store);
        }
        let train_loss = (train_loss / train.len() as f64) as f32;

        let val_loss = if val.is_empty() {
            train_loss
        } else {
            let preds: Vec<f32> = val.iter().map(|s| predict_with(store, forward, s)).collect();
            metrics::msle(&preds, val_increments)
        };
        history.push(train_loss, val_loss);
        observer(epoch + 1, store);
        let improved = val_loss <= stopper.best();
        if improved || best_params.is_none() {
            best_params = Some(store.clone());
        }
        if stopper.observe(val_loss) {
            break;
        }
    }
    if let Some(best) = best_params {
        *store = best;
    }
    history
}

/// Runs `forward` for one sample on a fresh tape and returns the scalar
/// prediction.
pub fn predict_with<S>(
    store: &ParamStore,
    forward: &dyn Fn(&mut Tape, &ParamStore, &S) -> Var,
    sample: &S,
) -> f32 {
    let mut tape = Tape::new();
    let pred = forward(&mut tape, store, sample);
    tape.scalar(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::Matrix;

    /// Fits y = log-label through a single weight: the loop must drive the
    /// weight toward the mean label.
    #[test]
    fn train_loop_reduces_loss() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
            let wv = tape.param(store, w);
            let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
            tape.hadamard(wv, xv)
        };
        let train: Vec<f32> = vec![1.0; 64];
        let labels: Vec<f32> = vec![2.0; 64];
        let val: Vec<f32> = vec![1.0; 8];
        let val_inc: Vec<usize> = vec![(2.0f32.exp() - 1.0).round() as usize; 8];
        let opts = TrainOpts {
            epochs: 60,
            patience: 60,
            lr: 0.05,
            ..TrainOpts::default()
        };
        let hist = train_loop(&mut store, &forward, &train, &labels, &val, &val_inc, &opts);
        assert!(hist.records().len() > 5);
        let first = hist.records()[0].train_loss;
        let last = hist.records().last().unwrap().train_loss;
        assert!(last < first * 0.1, "loss should shrink: {first} → {last}");
        assert!((store.value(w)[(0, 0)] - 2.0).abs() < 0.2);
    }

    #[test]
    fn best_epoch_params_are_restored() {
        // With a high LR the loop may overshoot; the restored parameters
        // must correspond to the best validation epoch, i.e. re-evaluating
        // val MSLE after training must equal the recorded best.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
            let wv = tape.param(store, w);
            let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
            tape.hadamard(wv, xv)
        };
        let train: Vec<f32> = vec![1.0; 16];
        let labels: Vec<f32> = vec![1.0; 16];
        let val: Vec<f32> = vec![1.0; 4];
        let val_inc: Vec<usize> = vec![2; 4]; // ln 3 ≈ 1.0986 target
        let opts = TrainOpts {
            epochs: 15,
            patience: 4,
            lr: 0.3,
            ..TrainOpts::default()
        };
        let hist = train_loop(&mut store, &forward, &train, &labels, &val, &val_inc, &opts);
        let best = hist.best().unwrap().val_loss;
        let preds: Vec<f32> = val.iter().map(|s| predict_with(&store, &forward, s)).collect();
        let final_msle = cascn_nn::metrics::msle(&preds, &val_inc);
        assert!(
            (final_msle - best).abs() < 1e-5,
            "restored params give {final_msle}, best recorded {best}"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_is_rejected() {
        let mut store = ParamStore::new();
        let forward = |_: &mut Tape, _: &ParamStore, _: &f32| unreachable!();
        let _ = train_loop::<f32>(&mut store, &forward, &[], &[], &[], &[], &TrainOpts::default());
    }
}
