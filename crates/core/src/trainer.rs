//! The Algorithm 2 training loop, shared by CasCN, its variants, and the
//! deep baselines — hardened with an anomaly guard, periodic resumable
//! checkpoints, and deterministic fault-injection hooks.

use std::path::PathBuf;

use cascn_autograd::{Adam, AdamState, Optimizer, ParamStore, Tape, Var};
use cascn_nn::metrics;
use cascn_nn::train::{shuffled_batches, AnomalyKind, EarlyStopping, History};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::{StopperState, TrainCheckpoint};
use crate::error::CascnError;
use crate::parallel::parallel_map;

/// Anomaly-guard configuration: what the training loop does when a batch
/// produces a non-finite loss, gradient, or parameter update.
#[derive(Debug, Clone, Copy)]
pub struct GuardOpts {
    /// Master switch; when false the loop behaves exactly like the unguarded
    /// Algorithm 2.
    pub enabled: bool,
    /// Multiplier applied to the effective learning rate after a bad batch.
    pub lr_backoff: f32,
    /// Multiplier applied after a good batch, recovering toward the base
    /// learning rate (never exceeding it).
    pub lr_recovery: f32,
    /// Number of *consecutive* bad batches after which the parameters and
    /// optimizer are rolled back to the last good epoch snapshot.
    pub rollback_after: usize,
}

impl Default for GuardOpts {
    fn default() -> Self {
        Self {
            enabled: true,
            lr_backoff: 0.5,
            lr_recovery: 1.25,
            rollback_after: 5,
        }
    }
}

/// Training options (paper defaults: Adam, learning rate 5e-3, batch 32,
/// stop after 10 stagnant validation epochs).
#[derive(Debug, Clone, Copy)]
pub struct TrainOpts {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged within a batch).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Seed for batch shuffling.
    pub shuffle_seed: u64,
    /// Worker threads for per-example forward/backward passes and
    /// validation sweeps: `1` (the default) is the exact serial path, `0`
    /// means all available parallelism. Any value produces bit-identical
    /// results — gradients are reduced in fixed example order (see
    /// [`crate::parallel`]).
    pub threads: usize,
    /// Anomaly-guard behavior.
    pub guard: GuardOpts,
}

impl Default for TrainOpts {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            lr: 5e-3,
            patience: 10,
            grad_clip: 5.0,
            shuffle_seed: 7,
            threads: 1,
            guard: GuardOpts::default(),
        }
    }
}

/// When and where the loop writes resumable checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file (written atomically, overwritten in place).
    pub path: PathBuf,
    /// Write after every `every` completed epochs (0 disables).
    pub every: usize,
}

/// Signature of the post-gradient hook: 1-based epoch, 0-based batch index,
/// and the parameter store whose gradients were just accumulated.
pub type PostGradHook<'a> = &'a mut dyn FnMut(usize, usize, &mut ParamStore);

/// Test and fault-injection hooks into the training loop. All hooks default
/// to `None`; production runs never pay for them.
#[derive(Default)]
pub struct TrainHooks<'a> {
    /// Called after a batch's gradients are accumulated, scaled and clipped,
    /// *before* the anomaly check and optimizer step — the seam where the
    /// fault injector corrupts gradients.
    pub post_grad: Option<PostGradHook<'a>>,
}

/// Runs the generic train loop over preprocessed samples.
///
/// `forward` builds the model's forward pass for one sample and returns the
/// `1x1` predicted log-increment. Training minimizes the squared error to
/// `train_labels` (Eq. 19); after every epoch the validation MSLE (Eq. 20)
/// is recorded, and the parameters of the best validation epoch are restored
/// before returning.
pub fn train_loop<S: Sync>(
    store: &mut ParamStore,
    forward: &(dyn Fn(&mut Tape, &ParamStore, &S) -> Var + Sync),
    train: &[S],
    train_labels: &[f32],
    val: &[S],
    val_increments: &[usize],
    opts: &TrainOpts,
) -> History {
    train_loop_observed(
        store,
        forward,
        train,
        train_labels,
        val,
        val_increments,
        opts,
        &mut |_, _| {},
    )
}

/// [`train_loop`] with a per-epoch observer: after every epoch the observer
/// receives the (1-based) epoch index and the current parameters — used by
/// the Fig. 8 experiment to trace MSLE on sub-populations during training.
#[allow(clippy::too_many_arguments)]
pub fn train_loop_observed<S: Sync>(
    store: &mut ParamStore,
    forward: &(dyn Fn(&mut Tape, &ParamStore, &S) -> Var + Sync),
    train: &[S],
    train_labels: &[f32],
    val: &[S],
    val_increments: &[usize],
    opts: &TrainOpts,
    observer: &mut dyn FnMut(usize, &ParamStore),
) -> History {
    train_loop_resumable(
        store,
        forward,
        train,
        train_labels,
        val,
        val_increments,
        opts,
        None,
        None,
        observer,
        TrainHooks::default(),
    )
    // lint: allow(no-panic) — infallible here: every Err path in train_loop_resumable requires checkpoint/resume, and both are None
    .expect("train_loop without checkpointing cannot fail")
}

/// The full-fat training loop: [`train_loop_observed`] plus resumable
/// checkpointing and fault-injection hooks.
///
/// * `resume` — continue a run from a [`TrainCheckpoint`]: parameters, Adam
///   moments, early-stopping state, loss history, effective learning rate
///   and the batch-shuffle stream are all restored, so an interrupted run
///   finishes bit-identically to an uninterrupted one. The caller's
///   `opts.shuffle_seed` must match the checkpoint's.
/// * `checkpoint` — write a checkpoint after every `every` completed epochs.
///
/// The anomaly guard (see [`GuardOpts`]) checks every batch: a non-finite
/// loss or gradient discards the step and halves the effective learning
/// rate (recovering gradually on good batches); `rollback_after`
/// consecutive bad batches — or a non-finite *parameter* after a step —
/// roll the model and optimizer back to the last healthy epoch snapshot.
/// Every event lands in the returned [`History`]'s anomaly log.
#[allow(clippy::too_many_arguments)]
pub fn train_loop_resumable<S: Sync>(
    store: &mut ParamStore,
    forward: &(dyn Fn(&mut Tape, &ParamStore, &S) -> Var + Sync),
    train: &[S],
    train_labels: &[f32],
    val: &[S],
    val_increments: &[usize],
    opts: &TrainOpts,
    resume: Option<&TrainCheckpoint>,
    checkpoint: Option<&CheckpointPolicy>,
    observer: &mut dyn FnMut(usize, &ParamStore),
    mut hooks: TrainHooks<'_>,
) -> Result<History, CascnError> {
    assert_eq!(train.len(), train_labels.len(), "train labels mismatch");
    assert_eq!(val.len(), val_increments.len(), "val labels mismatch");
    assert!(!train.is_empty(), "train_loop: empty training set");

    let guard = opts.guard;
    let mut opt = Adam::with_lr(opts.lr);
    let mut rng = StdRng::seed_from_u64(opts.shuffle_seed);
    let mut stopper = EarlyStopping::new(opts.patience);
    let mut history = History::new();
    let mut best_params: Option<ParamStore> = None;
    let mut eff_lr = opts.lr;
    let mut bad_streak = 0usize;
    let mut start_epoch = 0usize;

    if let Some(ckpt) = resume {
        if ckpt.shuffle_seed != opts.shuffle_seed {
            return Err(CascnError::Config(format!(
                "resume shuffle seed mismatch: checkpoint has {}, options have {}",
                ckpt.shuffle_seed, opts.shuffle_seed
            )));
        }
        restore_params(store, &ckpt.params)?;
        restore_adam(&mut opt, store, &ckpt.adam)?;
        let s = ckpt.stopper;
        stopper = EarlyStopping::from_state(
            opts.patience,
            s.best,
            s.best_epoch,
            s.stale,
            s.epochs_seen,
        );
        history = ckpt.history.clone();
        if let Some(best) = &ckpt.best_params {
            let mut restored = store.clone();
            restore_params(&mut restored, best)?;
            best_params = Some(restored);
        }
        eff_lr = ckpt.eff_lr;
        bad_streak = ckpt.bad_streak;
        start_epoch = ckpt.epoch;
        // The batch shuffles are a pure function of (seed, n, batch_size,
        // epoch); replaying the completed epochs resumes the stream exactly
        // without serializing RNG internals.
        for _ in 0..start_epoch {
            let _ = shuffled_batches(train.len(), opts.batch_size, &mut rng);
        }
    }

    // The rollback target: parameters + optimizer state at the end of the
    // last healthy epoch (or at initialization).
    let mut snapshot: (ParamStore, AdamState) = (store.clone(), opt.state());

    for epoch in start_epoch..opts.epochs {
        // A resumed run whose patience was already exhausted must not train
        // further (fresh runs skip this: epochs_seen == 0).
        if stopper.epochs_seen() > 0 && stopper.stale() >= stopper.patience() {
            break;
        }
        let mut train_loss = 0.0f64;
        let mut counted = 0usize;
        for (batch_idx, batch) in shuffled_batches(train.len(), opts.batch_size, &mut rng)
            .into_iter()
            .enumerate()
        {
            store.zero_grads();
            // Each example's forward/backward runs on its own tape against a
            // shared read-only view of the parameters; gradients come back as
            // per-binding (ParamId, Matrix) lists and are merged below in
            // example-index order — replaying exactly the accumulate calls
            // the serial loop makes, so any thread count is bit-identical.
            let store_view: &ParamStore = store;
            let per_example = parallel_map(opts.threads, &batch, |_, &i| {
                let mut tape = Tape::new();
                let pred = forward(&mut tape, store_view, &train[i]);
                let loss = tape.squared_error(pred, train_labels[i]);
                let loss_val = tape.scalar(loss) as f64;
                tape.backward(loss);
                (loss_val, tape.param_grads())
            });
            let mut batch_loss = 0.0f64;
            for (loss_val, grads) in &per_example {
                batch_loss += loss_val;
                store.merge_grads(grads);
            }
            store.scale_grads(1.0 / batch.len() as f32);
            if opts.grad_clip > 0.0 {
                store.clip_grad_norm(opts.grad_clip);
            }
            if let Some(hook) = hooks.post_grad.as_mut() {
                hook(epoch + 1, batch_idx, store);
            }

            if guard.enabled {
                let kind = if !batch_loss.is_finite() {
                    Some(AnomalyKind::NonFiniteLoss)
                } else if store.grads_non_finite() {
                    Some(AnomalyKind::NonFiniteGrad)
                } else {
                    None
                };
                if let Some(kind) = kind {
                    history.log_anomaly(epoch + 1, batch_idx, kind);
                    bad_streak += 1;
                    eff_lr *= guard.lr_backoff;
                    if guard.rollback_after > 0 && bad_streak >= guard.rollback_after {
                        roll_back(store, &mut opt, &snapshot, &mut history, epoch + 1, batch_idx);
                        bad_streak = 0;
                    }
                    continue; // discard this step
                }
            }

            opt.set_lr(eff_lr);
            opt.step(store);

            if guard.enabled && store.values_non_finite() {
                // Update overflow: the parameters themselves are poisoned, so
                // roll back immediately — skipping alone cannot recover.
                history.log_anomaly(epoch + 1, batch_idx, AnomalyKind::NonFiniteParam);
                roll_back(store, &mut opt, &snapshot, &mut history, epoch + 1, batch_idx);
                bad_streak = 0;
                eff_lr *= guard.lr_backoff;
                continue;
            }

            bad_streak = 0;
            eff_lr = (eff_lr * guard.lr_recovery).min(opts.lr);
            train_loss += batch_loss;
            counted += batch.len();
        }
        // An epoch in which the guard discarded every batch has no
        // meaningful loss; NaN keeps it out of best-epoch tracking (both
        // `History::best` and `EarlyStopping` treat NaN as non-improving).
        let train_loss = if counted == 0 {
            f32::NAN
        } else {
            (train_loss / counted as f64) as f32
        };

        let val_loss = if val.is_empty() {
            train_loss
        } else {
            let store_view: &ParamStore = store;
            let preds = parallel_map(opts.threads, val, |_, s| {
                predict_with(store_view, forward, s)
            });
            metrics::msle(&preds, val_increments)
        };
        history.push(train_loss, val_loss);
        observer(epoch + 1, store);
        let improved = val_loss <= stopper.best();
        if improved || best_params.is_none() {
            best_params = Some(store.clone());
        }
        let stop = stopper.observe(val_loss);
        if !guard.enabled || !store.values_non_finite() {
            snapshot = (store.clone(), opt.state());
        }
        if let Some(cp) = checkpoint {
            if cp.every > 0 && (epoch + 1 - start_epoch).is_multiple_of(cp.every) {
                let ckpt = TrainCheckpoint {
                    epoch: epoch + 1,
                    shuffle_seed: opts.shuffle_seed,
                    base_lr: opts.lr,
                    eff_lr,
                    bad_streak,
                    stopper: StopperState {
                        patience: stopper.patience(),
                        best: stopper.best(),
                        best_epoch: stopper.best_epoch(),
                        stale: stopper.stale(),
                        epochs_seen: stopper.epochs_seen(),
                    },
                    history: history.clone(),
                    adam: opt.state(),
                    params: store.clone(),
                    best_params: best_params.clone(),
                };
                ckpt.save(&cp.path)?;
            }
        }
        if stop {
            break;
        }
    }
    if let Some(best) = best_params {
        *store = best;
    }
    Ok(history)
}

/// The training loop for tasks whose loss is built *inside* the forward
/// closure — the next-user head's masked cross-entropy, where the loss
/// depends on per-sample structure (target index, infected mask) rather
/// than a scalar label.
///
/// `loss_forward` returns the per-example `1x1` loss variable directly.
/// Validation records the mean of the same loss over `val` (falling back
/// to the train loss when `val` is empty); early stopping and
/// best-parameter restoration follow [`train_loop`].
///
/// Thread parity is preserved exactly as in [`train_loop`]: per-example
/// tapes run in parallel but gradients are merged in example-index order
/// via `merge_grads`, so any `opts.threads` produces bit-identical
/// parameters. The anomaly guard degrades gracefully here — non-finite
/// batches are skipped with a learning-rate backoff, without the epoch
/// rollback machinery (ranked training has no resumable-checkpoint path).
pub fn train_loop_ranked<S: Sync>(
    store: &mut ParamStore,
    loss_forward: &(dyn Fn(&mut Tape, &ParamStore, &S) -> Var + Sync),
    train: &[S],
    val: &[S],
    opts: &TrainOpts,
) -> History {
    assert!(!train.is_empty(), "train_loop_ranked: empty training set");

    let guard = opts.guard;
    let mut opt = Adam::with_lr(opts.lr);
    let mut rng = StdRng::seed_from_u64(opts.shuffle_seed);
    let mut stopper = EarlyStopping::new(opts.patience);
    let mut history = History::new();
    let mut best_params: Option<ParamStore> = None;
    let mut eff_lr = opts.lr;

    for epoch in 0..opts.epochs {
        let mut train_loss = 0.0f64;
        let mut counted = 0usize;
        for (batch_idx, batch) in shuffled_batches(train.len(), opts.batch_size, &mut rng)
            .into_iter()
            .enumerate()
        {
            store.zero_grads();
            let store_view: &ParamStore = store;
            let per_example = parallel_map(opts.threads, &batch, |_, &i| {
                let mut tape = Tape::new();
                let loss = loss_forward(&mut tape, store_view, &train[i]);
                let loss_val = tape.scalar(loss) as f64;
                tape.backward(loss);
                (loss_val, tape.param_grads())
            });
            let mut batch_loss = 0.0f64;
            for (loss_val, grads) in &per_example {
                batch_loss += loss_val;
                store.merge_grads(grads);
            }
            store.scale_grads(1.0 / batch.len() as f32);
            if opts.grad_clip > 0.0 {
                store.clip_grad_norm(opts.grad_clip);
            }

            if guard.enabled && (!batch_loss.is_finite() || store.grads_non_finite()) {
                let kind = if batch_loss.is_finite() {
                    AnomalyKind::NonFiniteGrad
                } else {
                    AnomalyKind::NonFiniteLoss
                };
                history.log_anomaly(epoch + 1, batch_idx, kind);
                eff_lr *= guard.lr_backoff;
                continue; // discard this step
            }

            opt.set_lr(eff_lr);
            opt.step(store);
            eff_lr = (eff_lr * guard.lr_recovery).min(opts.lr);
            train_loss += batch_loss;
            counted += batch.len();
        }
        let train_loss = if counted == 0 {
            f32::NAN
        } else {
            (train_loss / counted as f64) as f32
        };

        let val_loss = if val.is_empty() {
            train_loss
        } else {
            let store_view: &ParamStore = store;
            let losses = parallel_map(opts.threads, val, |_, s| {
                predict_with(store_view, loss_forward, s)
            });
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        history.push(train_loss, val_loss);
        let improved = val_loss <= stopper.best();
        if improved || best_params.is_none() {
            best_params = Some(store.clone());
        }
        if stopper.observe(val_loss) {
            break;
        }
    }
    if let Some(best) = best_params {
        *store = best;
    }
    history
}

/// Restores `store`'s values from `saved`, requiring full name/shape
/// coverage.
fn restore_params(store: &mut ParamStore, saved: &ParamStore) -> Result<(), CascnError> {
    let restored = store
        .restore_from(saved)
        .map_err(CascnError::Architecture)?;
    if restored != store.len() {
        return Err(CascnError::Architecture(format!(
            "checkpoint covers {restored} of {} parameters — wrong architecture?",
            store.len()
        )));
    }
    Ok(())
}

/// Restores Adam state from a checkpoint, validating against the store's
/// parameter shapes (moments are stored in registration order).
fn restore_adam(
    opt: &mut Adam,
    store: &ParamStore,
    state: &AdamState,
) -> Result<(), CascnError> {
    if state.m.len() != state.v.len() {
        return Err(CascnError::Checkpoint(format!(
            "adam moments mismatch: {} first vs {} second",
            state.m.len(),
            state.v.len()
        )));
    }
    if !state.m.is_empty() && state.m.len() != store.len() {
        return Err(CascnError::Architecture(format!(
            "adam state has {} moment tensors for {} parameters",
            state.m.len(),
            store.len()
        )));
    }
    for (id, m) in store.ids().zip(&state.m) {
        if store.value(id).shape() != m.shape() {
            return Err(CascnError::Architecture(format!(
                "adam moment shape mismatch for `{}`: {:?} vs {:?}",
                store.name(id),
                store.value(id).shape(),
                m.shape()
            )));
        }
    }
    opt.set_state(state.clone());
    Ok(())
}

/// Rolls parameters and optimizer back to the last healthy snapshot,
/// recording the event.
fn roll_back(
    store: &mut ParamStore,
    opt: &mut Adam,
    snapshot: &(ParamStore, AdamState),
    history: &mut History,
    epoch: usize,
    batch: usize,
) {
    *store = snapshot.0.clone();
    opt.set_state(snapshot.1.clone());
    history.log_anomaly(epoch, batch, AnomalyKind::Rollback);
}

/// Runs `forward` for one sample on a fresh tape and returns the scalar
/// prediction.
pub fn predict_with<S>(
    store: &ParamStore,
    forward: &(dyn Fn(&mut Tape, &ParamStore, &S) -> Var + Sync),
    sample: &S,
) -> f32 {
    let mut tape = Tape::new();
    let pred = forward(&mut tape, store, sample);
    tape.scalar(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::Matrix;

    /// Fits y = log-label through a single weight: the loop must drive the
    /// weight toward the mean label.
    #[test]
    fn train_loop_reduces_loss() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
            let wv = tape.param(store, w);
            let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
            tape.hadamard(wv, xv)
        };
        let train: Vec<f32> = vec![1.0; 64];
        let labels: Vec<f32> = vec![2.0; 64];
        let val: Vec<f32> = vec![1.0; 8];
        let val_inc: Vec<usize> = vec![(2.0f32.exp() - 1.0).round() as usize; 8];
        let opts = TrainOpts {
            epochs: 60,
            patience: 60,
            lr: 0.05,
            ..TrainOpts::default()
        };
        let hist = train_loop(&mut store, &forward, &train, &labels, &val, &val_inc, &opts);
        assert!(hist.records().len() > 5);
        let first = hist.records()[0].train_loss;
        let last = hist.records().last().unwrap().train_loss;
        assert!(last < first * 0.1, "loss should shrink: {first} → {last}");
        assert!((store.value(w)[(0, 0)] - 2.0).abs() < 0.2);
        assert!(hist.anomalies().is_empty(), "healthy run logs no anomalies");
    }

    #[test]
    fn best_epoch_params_are_restored() {
        // With a high LR the loop may overshoot; the restored parameters
        // must correspond to the best validation epoch, i.e. re-evaluating
        // val MSLE after training must equal the recorded best.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
            let wv = tape.param(store, w);
            let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
            tape.hadamard(wv, xv)
        };
        let train: Vec<f32> = vec![1.0; 16];
        let labels: Vec<f32> = vec![1.0; 16];
        let val: Vec<f32> = vec![1.0; 4];
        let val_inc: Vec<usize> = vec![2; 4]; // ln 3 ≈ 1.0986 target
        let opts = TrainOpts {
            epochs: 15,
            patience: 4,
            lr: 0.3,
            ..TrainOpts::default()
        };
        let hist = train_loop(&mut store, &forward, &train, &labels, &val, &val_inc, &opts);
        let best = hist.best().unwrap().val_loss;
        let preds: Vec<f32> = val.iter().map(|s| predict_with(&store, &forward, s)).collect();
        let final_msle = cascn_nn::metrics::msle(&preds, &val_inc);
        assert!(
            (final_msle - best).abs() < 1e-5,
            "restored params give {final_msle}, best recorded {best}"
        );
    }

    #[test]
    fn train_loop_ranked_concentrates_mass_on_the_target() {
        let mut store = ParamStore::new();
        let w = store.register("logits", Matrix::zeros(1, 3));
        let loss_forward = move |tape: &mut Tape, store: &ParamStore, target: &usize| {
            let logits = tape.param(store, w);
            let logp = tape.log_softmax_row(logits);
            let picked = tape.pick(logp, 0, *target);
            tape.scale(picked, -1.0)
        };
        let train: Vec<usize> = vec![2; 48];
        let val: Vec<usize> = vec![2; 8];
        let opts = TrainOpts {
            epochs: 40,
            patience: 40,
            lr: 0.1,
            ..TrainOpts::default()
        };
        let hist = train_loop_ranked(&mut store, &loss_forward, &train, &val, &opts);
        let first = hist.records()[0].val_loss;
        let last = hist.records().last().unwrap().val_loss;
        assert!(last < first * 0.2, "cross-entropy should shrink: {first} → {last}");
        let logits = store.value(w);
        assert!(
            logits[(0, 2)] > logits[(0, 0)] && logits[(0, 2)] > logits[(0, 1)],
            "target logit must dominate: {:?}",
            logits.as_slice()
        );
    }

    #[test]
    fn train_loop_ranked_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut store = ParamStore::new();
            let w = store.register("logits", Matrix::zeros(1, 4));
            let loss_forward = move |tape: &mut Tape, store: &ParamStore, target: &usize| {
                let logits = tape.param(store, w);
                let logp = tape.log_softmax_row(logits);
                let picked = tape.pick(logp, 0, *target);
                tape.scale(picked, -1.0)
            };
            let train: Vec<usize> = (0..32).map(|i| 1 + i % 3).collect();
            let opts = TrainOpts {
                epochs: 3,
                batch_size: 8,
                threads,
                ..TrainOpts::default()
            };
            let _ = train_loop_ranked(&mut store, &loss_forward, &train, &[], &opts);
            store
                .value(w)
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<u32>>()
        };
        let serial = run(1);
        assert_eq!(serial, run(2), "2 threads must match serial bit-for-bit");
        assert_eq!(serial, run(4), "4 threads must match serial bit-for-bit");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_is_rejected() {
        let mut store = ParamStore::new();
        let forward = |_: &mut Tape, _: &ParamStore, _: &f32| unreachable!();
        let _ = train_loop::<f32>(&mut store, &forward, &[], &[], &[], &[], &TrainOpts::default());
    }

    #[test]
    fn guard_skips_nan_gradient_batches() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
            let wv = tape.param(store, w);
            let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
            tape.hadamard(wv, xv)
        };
        let train: Vec<f32> = vec![1.0; 32];
        let labels: Vec<f32> = vec![2.0; 32];
        let opts = TrainOpts {
            epochs: 25,
            patience: 25,
            lr: 0.05,
            batch_size: 8,
            ..TrainOpts::default()
        };
        // Poison the gradient of every batch in epoch 2.
        let mut inject = |epoch: usize, _batch: usize, s: &mut ParamStore| {
            if epoch == 2 {
                let id = s.ids().next().unwrap();
                let g = s.grad(id).clone();
                let mut g = g;
                g.as_mut_slice()[0] = f32::NAN;
                s.zero_grads();
                s.accumulate_grad(id, &g);
            }
        };
        let hist = train_loop_resumable(
            &mut store,
            &forward,
            &train,
            &labels,
            &[],
            &[],
            &opts,
            None,
            None,
            &mut |_, _| {},
            TrainHooks { post_grad: Some(&mut inject) },
        )
        .unwrap();
        assert!(hist.skipped_steps() >= 4, "all epoch-2 batches skipped");
        assert!(
            !store.values_non_finite(),
            "parameters stay finite through the poisoned epoch"
        );
        assert!(hist.records().last().unwrap().train_loss.is_finite());
        // Training still converges afterwards.
        assert!((store.value(w)[(0, 0)] - 2.0).abs() < 0.5);
    }

    #[test]
    fn guard_disabled_matches_legacy_behavior() {
        // With the guard off, a poisoned batch propagates NaN into the
        // parameters (the legacy failure mode) — proving the guard is what
        // prevents it.
        let run = |enabled: bool| {
            let mut store = ParamStore::new();
            let w = store.register("w", Matrix::zeros(1, 1));
            let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
                let wv = tape.param(store, w);
                let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
                tape.hadamard(wv, xv)
            };
            let train: Vec<f32> = vec![1.0; 8];
            let labels: Vec<f32> = vec![2.0; 8];
            let opts = TrainOpts {
                epochs: 2,
                batch_size: 8,
                guard: GuardOpts { enabled, ..GuardOpts::default() },
                ..TrainOpts::default()
            };
            let mut inject = |_e: usize, _b: usize, s: &mut ParamStore| {
                let id = s.ids().next().unwrap();
                let mut g = s.grad(id).clone();
                g.as_mut_slice()[0] = f32::NAN;
                s.zero_grads();
                s.accumulate_grad(id, &g);
            };
            let _ = train_loop_resumable(
                &mut store,
                &forward,
                &train,
                &labels,
                &[],
                &[],
                &opts,
                None,
                None,
                &mut |_, _| {},
                TrainHooks { post_grad: Some(&mut inject) },
            )
            .unwrap();
            store.values_non_finite()
        };
        assert!(run(false), "without the guard, NaN reaches the parameters");
        assert!(!run(true), "the guard keeps parameters finite");
    }

    #[test]
    fn rollback_fires_after_consecutive_bad_batches() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &f32| {
            let wv = tape.param(store, w);
            let xv = tape.constant(Matrix::from_vec(1, 1, vec![*x]));
            tape.hadamard(wv, xv)
        };
        let train: Vec<f32> = vec![1.0; 24];
        let labels: Vec<f32> = vec![2.0; 24];
        let opts = TrainOpts {
            epochs: 3,
            batch_size: 4, // 6 batches per epoch > rollback_after
            guard: GuardOpts { rollback_after: 3, ..GuardOpts::default() },
            ..TrainOpts::default()
        };
        let mut inject = |epoch: usize, _b: usize, s: &mut ParamStore| {
            if epoch == 2 {
                let id = s.ids().next().unwrap();
                let mut g = s.grad(id).clone();
                g.as_mut_slice()[0] = f32::INFINITY;
                s.zero_grads();
                s.accumulate_grad(id, &g);
            }
        };
        let hist = train_loop_resumable(
            &mut store,
            &forward,
            &train,
            &labels,
            &[],
            &[],
            &opts,
            None,
            None,
            &mut |_, _| {},
            TrainHooks { post_grad: Some(&mut inject) },
        )
        .unwrap();
        assert!(hist.rollbacks() >= 1, "expected a rollback: {:?}", hist.anomalies());
        assert!(!store.values_non_finite());
    }
}
