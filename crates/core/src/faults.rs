//! Deterministic fault injection for robustness testing.
//!
//! A seeded [`FaultInjector`] produces reproducible corruption — NaN/Inf
//! gradients, truncated checkpoint files, mangled dataset lines — so the
//! integration tests can drive the anomaly guard, the checkpoint checksum,
//! and the data quarantine through their recovery paths on every CI run,
//! not just when the stars align.

use std::io;
use std::path::Path;

use cascn_autograd::ParamStore;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Seeded source of reproducible faults.
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector; the same seed yields the same fault sequence.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Poisons one random accumulated-gradient entry with NaN or ±Inf.
    pub fn corrupt_grads(&mut self, store: &mut ParamStore) {
        let Some((id, len)) = self.pick_tensor(store) else {
            return;
        };
        let at = self.rng.random_range(0..len);
        let poison = self.pick_poison();
        let mut g = store.grad(id).clone();
        g.as_mut_slice()[at] = poison;
        // Re-accumulate: zero first so the poisoned copy replaces the
        // original rather than adding to it.
        let ids: Vec<_> = store.ids().collect();
        let saved: Vec<_> = ids.iter().map(|&i| store.grad(i).clone()).collect();
        store.zero_grads();
        for (&i, s) in ids.iter().zip(&saved) {
            if i == id {
                store.accumulate_grad(i, &g);
            } else {
                store.accumulate_grad(i, s);
            }
        }
    }

    /// Poisons one random parameter value with NaN or ±Inf.
    pub fn corrupt_values(&mut self, store: &mut ParamStore) {
        let Some((id, len)) = self.pick_tensor(store) else {
            return;
        };
        let at = self.rng.random_range(0..len);
        let poison = self.pick_poison();
        store.value_mut(id).as_mut_slice()[at] = poison;
    }

    /// Truncates the file at `path` to a random fraction of its length
    /// (between 10% and 90%), simulating a crash mid-write. Returns the new
    /// length.
    pub fn truncate_file(&mut self, path: impl AsRef<Path>) -> io::Result<usize> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let frac = self.rng.random_range(0.1..0.9f64);
        let keep = ((bytes.len() as f64) * frac) as usize;
        std::fs::write(path, &bytes[..keep])?;
        Ok(keep)
    }

    /// Flips one random bit in each of `n` random bytes of the file at
    /// `path` — bit rot, a torn sector, a buggy writer — and returns the
    /// corrupted offsets. Used by the serving chaos tests to prove a
    /// corrupted cache snapshot cold-starts instead of serving garbage.
    pub fn flip_bytes(&mut self, path: impl AsRef<Path>, n: usize) -> io::Result<Vec<usize>> {
        let path = path.as_ref();
        let mut bytes = std::fs::read(path)?;
        if bytes.is_empty() {
            return Ok(Vec::new());
        }
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            let at = self.rng.random_range(0..bytes.len());
            let bit = self.rng.random_range(0..8u32);
            bytes[at] ^= 1 << bit;
            offsets.push(at);
        }
        std::fs::write(path, &bytes)?;
        Ok(offsets)
    }

    /// Picks a victim index in `0..n` — e.g. which replica a chaos test
    /// kills next. Deterministic under the injector's seed.
    pub fn pick_index(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.rng.random_range(0..n)
        }
    }

    /// Mangles up to `n` random data lines of a cascade file's text:
    /// corrupting a token into garbage, swapping a parent index out of
    /// range, or negating a timestamp. Comment lines are left alone so the
    /// file still parses as the cascade format.
    pub fn mangle_dataset_lines(&mut self, text: &str, n: usize) -> String {
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let candidates: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return text.to_string();
        }
        for _ in 0..n {
            let at = candidates[self.rng.random_range(0..candidates.len())];
            let toks: Vec<&str> = lines[at].split_whitespace().collect();
            let mangled = match self.rng.random_range(0..3u32) {
                // Garble the record keyword so the line no longer parses.
                0 => {
                    let mut t = toks.clone();
                    if !t.is_empty() {
                        t[0] = "evnt";
                    }
                    t.join(" ")
                }
                // Point a parent reference far out of range.
                1 if toks.first() == Some(&"event") && toks.len() == 4 => {
                    format!("event {} 9999999 {}", toks[1], toks[3])
                }
                // Negate the timestamp.
                _ if toks.first() == Some(&"event") && toks.len() == 4 => {
                    format!("event {} {} -{}", toks[1], toks[2], toks[3].trim_start_matches('-'))
                }
                _ => {
                    let mut t = toks.clone();
                    if !t.is_empty() {
                        t[0] = "evnt";
                    }
                    t.join(" ")
                }
            };
            lines[at] = mangled;
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    fn pick_tensor(&mut self, store: &ParamStore) -> Option<(cascn_autograd::ParamId, usize)> {
        let ids: Vec<_> = store.ids().collect();
        if ids.is_empty() {
            return None;
        }
        let id = ids[self.rng.random_range(0..ids.len())];
        let len = store.value(id).len();
        if len == 0 {
            return None;
        }
        Some((id, len))
    }

    fn pick_poison(&mut self) -> f32 {
        match self.rng.random_range(0..3u32) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::Matrix;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("a", Matrix::full(2, 3, 1.0));
        s.register("b", Matrix::full(1, 4, 2.0));
        s
    }

    #[test]
    fn corrupt_grads_introduces_non_finite() {
        let mut s = store();
        let mut inj = FaultInjector::new(1);
        assert!(!s.grads_non_finite());
        inj.corrupt_grads(&mut s);
        assert!(s.grads_non_finite());
        assert!(!s.values_non_finite(), "values untouched");
    }

    #[test]
    fn corrupt_values_introduces_non_finite() {
        let mut s = store();
        let mut inj = FaultInjector::new(2);
        inj.corrupt_values(&mut s);
        assert!(s.values_non_finite());
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| {
            let mut s = store();
            FaultInjector::new(seed).corrupt_values(&mut s);
            s.ids()
                .flat_map(|id| s.value(id).as_slice().to_vec())
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn flip_bytes_corrupts_in_place_and_is_seed_deterministic() {
        let dir = std::env::temp_dir().join("cascn_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |seed: u64, name: &str| {
            let path = dir.join(name);
            std::fs::write(&path, vec![0u8; 64]).unwrap();
            let offsets = FaultInjector::new(seed).flip_bytes(&path, 3).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            (offsets, bytes)
        };
        let (off_a, bytes_a) = run(7, "flip_a.bin");
        let (off_b, bytes_b) = run(7, "flip_b.bin");
        assert_eq!(off_a, off_b, "same seed, same offsets");
        assert_eq!(bytes_a, bytes_b, "same seed, same corruption");
        assert_eq!(off_a.len(), 3);
        assert_ne!(bytes_a, vec![0u8; 64], "bits actually flipped");
        assert_eq!(bytes_a.len(), 64, "length unchanged — corruption, not truncation");
    }

    #[test]
    fn pick_index_stays_in_range_and_is_deterministic() {
        let picks = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            (0..32).map(|_| inj.pick_index(5)).collect::<Vec<_>>()
        };
        assert_eq!(picks(11), picks(11));
        assert!(picks(11).iter().all(|&i| i < 5));
        assert_eq!(FaultInjector::new(0).pick_index(0), 0, "degenerate n is safe");
        assert_eq!(FaultInjector::new(0).pick_index(1), 0);
    }

    #[test]
    fn truncate_file_shrinks() {
        let dir = std::env::temp_dir().join("cascn_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.txt");
        std::fs::write(&path, vec![b'x'; 1000]).unwrap();
        let kept = FaultInjector::new(3).truncate_file(&path).unwrap();
        assert!(kept < 1000);
        assert_eq!(std::fs::read(&path).unwrap().len(), kept);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mangled_lines_break_strict_parsing_but_not_lenient() {
        use cascn_cascades::io;
        use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 20,
            seed: 5,
            max_size: 80,
        })
        .generate();
        let text = io::dataset_to_string(&d);
        let mangled = FaultInjector::new(4).mangle_dataset_lines(&text, 5);
        assert_ne!(mangled, text);
        assert!(io::dataset_from_str(&mangled, "x").is_err(), "strict must fail");
        let (kept, report) = io::dataset_from_str_lenient(&mangled, "x");
        assert!(!report.is_clean());
        assert!(kept.cascades.len() > d.cascades.len() / 2, "most cascades survive");
        assert!(
            kept.cascades.len() < d.cascades.len(),
            "a mangled cascade must not be silently kept"
        );
    }
}
