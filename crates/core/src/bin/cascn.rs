//! `cascn` — command-line interface to the CasCN reproduction.
//!
//! ```text
//! cascn generate --dataset weibo --n 2000 --seed 7 --out weibo.cascades
//! cascn stats weibo.cascades --window 3600
//! cascn train --data weibo.cascades --window 3600 --epochs 10 --out model.params
//! cascn predict --data weibo.cascades --window 3600 --model model.params
//! ```
//!
//! Dataset files use the line-based format of `cascn_cascades::io`; files in
//! the public DeepHawkes format are auto-detected by their tab-separated
//! layout, and EchoFlow `user_id,topic_id,timestamp` CSV exports by their
//! comma-separated layout.
//!
//! `--task next-user` switches training and prediction to the microscopic
//! task: who adopts next, ranked by a masked softmax over the user
//! vocabulary and scored with Hit@k / MAP.

use std::process::exit;

use cascn::{CascnConfig, CascnModel, CheckpointPolicy, TaskKind, TrainCheckpoint, TrainOpts};
use cascn_cascades::{deephawkes_format, io, Dataset, Split};
use cascn_nn::metrics;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let flags = Flags::parse(&args[1..]);
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "predict" => cmd_predict(&flags),
        "--help" | "-h" | "help" => {
            usage_and_exit();
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "cascn — cascade size prediction (CasCN, ICDE 2019)\n\n\
         USAGE:\n  cascn generate --dataset weibo|hepph [--n N] [--seed S] --out FILE\n  \
         cascn stats FILE [--window SECS]\n  \
         cascn train --data FILE --window SECS [--epochs N] [--hidden H] [--out MODEL]\n    \
         [--threads N] [--checkpoint CKPT [--checkpoint-every N]] [--resume CKPT]\n  \
         cascn predict --data FILE --window SECS --model MODEL [--top K] [--threads N]\n\n\
         --task size|next-user: macroscopic size regression (default) or\n\
         microscopic next-user ranking (masked softmax over the vocabulary;\n\
         set --vocab-users N or let it derive from the data)\n\
         --threads N: worker threads for preprocessing, training, and\n\
         prediction (default: all cores; results are identical for any N)"
    );
    exit(2);
}

/// Minimal `--flag value` parser (positional args allowed before flags).
struct Flags {
    positional: Vec<String>,
    named: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut named = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                named.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Self { positional, named }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.named
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{name} `{v}`")),
        }
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    // Auto-detect: DeepHawkes lines are tab-separated; EchoFlow exports are
    // comma-separated CSV; ours start with '#' or the `cascade` keyword.
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let first_data_line = text
        .lines()
        .find(|l| !l.trim().is_empty() && !l.starts_with('#'));
    match first_data_line {
        Some(l) if l.contains('\t') => {
            deephawkes_format::parse(&text, path).map_err(|e| e.to_string())
        }
        _ if cascn_cascades::looks_like_echoflow(&text) => {
            cascn_cascades::dataset_from_echoflow_str(&text, path).map_err(|e| e.to_string())
        }
        _ => io::dataset_from_str(&text, path).map_err(|e| e.to_string()),
    }
}

/// Like [`load_dataset`], but quarantines malformed cascades (native and
/// EchoFlow formats) instead of failing; the quarantine summary is returned
/// alongside.
fn load_dataset_lenient(path: &str) -> Result<(Dataset, Option<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let first_data_line = text
        .lines()
        .find(|l| !l.trim().is_empty() && !l.starts_with('#'));
    match first_data_line {
        Some(l) if l.contains('\t') => {
            let d = deephawkes_format::parse(&text, path).map_err(|e| e.to_string())?;
            Ok((d, None))
        }
        _ if cascn_cascades::looks_like_echoflow(&text) => {
            let (d, report) = cascn_cascades::dataset_from_echoflow_str_lenient(&text, path);
            let summary = (!report.is_clean()).then(|| report.summary());
            Ok((d, summary))
        }
        _ => {
            let (d, report) = io::dataset_from_str_lenient(&text, path);
            let summary = (!report.is_clean()).then(|| report.summary());
            Ok((d, summary))
        }
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    use cascn_cascades::synth::{
        CitationConfig, CitationGenerator, WeiboConfig, WeiboGenerator,
    };
    let kind = flags.require("dataset")?;
    let n: usize = flags.parse_or("n", 2000)?;
    let seed: u64 = flags.parse_or("seed", 2019)?;
    let out = flags.require("out")?;
    let dataset = match kind {
        "weibo" => WeiboGenerator::new(WeiboConfig {
            num_cascades: n,
            seed,
            ..WeiboConfig::default()
        })
        .generate(),
        "hepph" => CitationGenerator::new(CitationConfig {
            num_cascades: n,
            seed,
            ..CitationConfig::default()
        })
        .generate(),
        other => return Err(format!("unknown dataset `{other}` (weibo|hepph)")),
    };
    io::write_dataset(out, &dataset).map_err(|e| e.to_string())?;
    println!("wrote {} cascades to {out}", dataset.cascades.len());
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let path = flags
        .positional
        .first()
        .map(String::as_str)
        .or_else(|| flags.get("data"))
        .ok_or("missing dataset file")?;
    let dataset = load_dataset(path)?;
    let window: f64 = flags.parse_or("window", f64::MAX)?;
    println!("dataset: {} ({} cascades)", dataset.name, dataset.cascades.len());
    println!("total edges: {}", dataset.total_edges());
    for split in [Split::Train, Split::Validation, Split::Test] {
        let s = dataset.split_stats(split, window);
        println!(
            "{split:?}: {} cascades, avg nodes {:.2}, avg edges {:.2}",
            s.count, s.avg_nodes, s.avg_edges
        );
    }
    let hist = cascn_cascades::stats::size_distribution(&dataset);
    println!("size histogram (log2 bins):");
    for (size, count) in hist {
        println!("  >= {size:<6} {count}");
    }
    Ok(())
}

fn train_config(flags: &Flags) -> Result<(CascnConfig, TrainOpts), String> {
    let hidden: usize = flags.parse_or("hidden", 16)?;
    let epochs: usize = flags.parse_or("epochs", 10)?;
    // `--threads 0` (the default) resolves to all available cores; any
    // value produces bit-identical models, so this is purely a speed knob.
    let threads: usize = flags.parse_or("threads", 0)?;
    let task = match flags.get("task") {
        None => TaskKind::SizeRegression,
        Some(name) => TaskKind::parse(name)
            .ok_or_else(|| format!("unknown --task `{name}` (size|next-user)"))?,
    };
    let cfg = CascnConfig {
        hidden,
        mlp_hidden: hidden,
        max_nodes: flags.parse_or("max-nodes", 30)?,
        max_steps: flags.parse_or("max-steps", 10)?,
        seed: flags.parse_or("seed", 42)?,
        threads,
        task,
        // 0 means "derive from the dataset" (see `resolve_vocab`).
        vocab_users: flags.parse_or("vocab-users", 0)?,
        ..CascnConfig::default()
    };
    let opts = TrainOpts {
        epochs,
        patience: flags.parse_or("patience", epochs.div_ceil(2))?,
        lr: flags.parse_or("lr", 5e-3)?,
        threads,
        ..TrainOpts::default()
    };
    Ok((cfg, opts))
}

/// Fills in `vocab_users` for the next-user task when the flag was omitted:
/// the smallest vocabulary covering every user id in the dataset.
fn resolve_vocab(cfg: &mut CascnConfig, dataset: &Dataset) {
    if cfg.task != TaskKind::NextUser || cfg.vocab_users != 0 {
        return;
    }
    let max_user = dataset
        .cascades
        .iter()
        .flat_map(|c| c.events.iter())
        .map(|e| e.user)
        .max()
        .unwrap_or(0);
    cfg.vocab_users = usize::try_from(max_user).unwrap_or(usize::MAX - 1) + 1;
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let data_path = flags.require("data")?;
    let window: f64 = flags
        .require("window")?
        .parse()
        .map_err(|_| "invalid --window")?;
    let (dataset, quarantine) = load_dataset_lenient(data_path)?;
    if let Some(summary) = quarantine {
        eprintln!("warning: {summary}");
    }
    let (mut cfg, opts) = train_config(flags)?;
    // Derive the vocabulary from the *unfiltered* dataset so `predict` and
    // `serve` (which apply no size filter) resolve the same table shape.
    resolve_vocab(&mut cfg, &dataset);
    let dataset = dataset
        .filter_observed_size(window, flags.parse_or("min-size", 5)?, flags.parse_or("max-size", 100)?);
    if dataset.cascades.len() < 20 {
        return Err(format!(
            "only {} cascades survive the size filter — relax --min-size",
            dataset.cascades.len()
        ));
    }
    if cfg.task == TaskKind::NextUser {
        return train_next_user(flags, cfg, &opts, &dataset, window);
    }
    let mut opts = opts;
    let resume = match flags.get("resume") {
        Some(p) => Some(TrainCheckpoint::load(p).map_err(|e| e.to_string())?),
        None => None,
    };
    if let Some(ckpt) = &resume {
        // Continue the interrupted run's shuffle stream, whatever seed it
        // used.
        opts.shuffle_seed = ckpt.shuffle_seed;
    }
    let checkpoint = match flags.get("checkpoint") {
        Some(p) => Some(CheckpointPolicy {
            path: p.into(),
            every: flags.parse_or("checkpoint-every", 1)?,
        }),
        None => None,
    };
    let mut model = CascnModel::new(cfg);
    let threads = cascn::resolve_threads(opts.threads);
    match &resume {
        Some(ckpt) => println!(
            "resuming CasCN training from epoch {} ({} parameters, {threads} threads)…",
            ckpt.epoch,
            model.num_parameters()
        ),
        None => println!(
            "training CasCN ({} parameters) on {} cascades, {threads} threads…",
            model.num_parameters(),
            dataset.split(Split::Train).len()
        ),
    }
    let history = model
        .fit_resumable(
            dataset.split(Split::Train),
            dataset.split(Split::Validation),
            window,
            &opts,
            resume.as_ref(),
            checkpoint.as_ref(),
        )
        .map_err(|e| e.to_string())?;
    for r in history.records() {
        println!(
            "epoch {:>3}: train {:.4}  val {:.4}",
            r.epoch, r.train_loss, r.val_loss
        );
    }
    if !history.anomalies().is_empty() {
        println!(
            "anomaly guard: {} discarded steps, {} rollbacks",
            history.skipped_steps(),
            history.rollbacks()
        );
    }
    match cascn::try_evaluate(&model, dataset.split(Split::Test), window, opts.threads) {
        Ok(msle) => println!("test MSLE: {msle:.4}"),
        Err(e) => eprintln!("warning: skipping test metric — {e}"),
    }
    if let Some(out) = flags.get("out") {
        model.save(out).map_err(|e| e.to_string())?;
        println!("saved model to {out}");
    }
    Ok(())
}

/// The microscopic training path: next-event cross-entropy on the shared
/// recurrent stack plus the masked softmax head, scored with Hit@k / MAP,
/// saved as a v2 train checkpoint `cascn-serve` can load directly.
fn train_next_user(
    flags: &Flags,
    cfg: CascnConfig,
    opts: &TrainOpts,
    dataset: &Dataset,
    window: f64,
) -> Result<(), String> {
    if flags.get("resume").is_some() || flags.get("checkpoint").is_some() {
        return Err("--resume/--checkpoint are not supported with --task next-user".into());
    }
    let vocab = cfg.vocab_users;
    let mut model = CascnModel::new(cfg);
    let threads = cascn::resolve_threads(opts.threads);
    println!(
        "training CasCN next-user head ({} parameters, vocab {vocab}) on {} cascades, {threads} threads…",
        model.num_parameters(),
        dataset.split(Split::Train).len()
    );
    let history = model.fit_next_user(
        dataset.split(Split::Train),
        dataset.split(Split::Validation),
        window,
        opts,
    );
    for r in history.records() {
        println!(
            "epoch {:>3}: train CE {:.4}  val CE {:.4}",
            r.epoch, r.train_loss, r.val_loss
        );
    }
    let ranks = model.next_user_ranks(dataset.split(Split::Test), window);
    if ranks.is_empty() {
        eprintln!("warning: no test cascade has a next-user target — skipping metrics");
    } else {
        println!(
            "test ({} prefixes): Hit@1 {:.4}  Hit@5 {:.4}  Hit@10 {:.4}  MAP {:.4}",
            ranks.len(),
            metrics::hit_at_k(&ranks, 1),
            metrics::hit_at_k(&ranks, 5),
            metrics::hit_at_k(&ranks, 10),
            metrics::mean_average_precision(&ranks)
        );
    }
    if let Some(out) = flags.get("out") {
        model
            .export_checkpoint()
            .save(out)
            .map_err(|e| e.to_string())?;
        println!("saved next-user checkpoint to {out}");
    }
    Ok(())
}

fn cmd_predict(flags: &Flags) -> Result<(), String> {
    let data_path = flags.require("data")?;
    let model_path = flags.require("model")?;
    let window: f64 = flags
        .require("window")?
        .parse()
        .map_err(|_| "invalid --window")?;
    let (mut cfg, _) = train_config(flags)?;
    let dataset = load_dataset(data_path)?;
    resolve_vocab(&mut cfg, &dataset);
    let task = cfg.task;
    let model = CascnModel::load(cfg, model_path).map_err(|e| e.to_string())?;
    let top: usize = flags.parse_or("top", 10)?;

    if task == TaskKind::NextUser {
        let ranks = model.next_user_ranks(&dataset.cascades, window);
        if !ranks.is_empty() {
            println!(
                "{} prefixes: Hit@1 {:.4}  Hit@5 {:.4}  Hit@10 {:.4}  MAP {:.4}",
                ranks.len(),
                metrics::hit_at_k(&ranks, 1),
                metrics::hit_at_k(&ranks, 5),
                metrics::hit_at_k(&ranks, 10),
                metrics::mean_average_precision(&ranks)
            );
        }
        for cascade in dataset.cascades.iter().take(3) {
            let ranked = model.predict_next(cascade, window, top);
            let line: Vec<String> = ranked
                .iter()
                .map(|(u, p)| format!("{u}:{p:.4}"))
                .collect();
            println!("cascade {:>6} next: {}", cascade.id, line.join(" "));
        }
        return Ok(());
    }

    let preds = model.predict_logs(&dataset.cascades, window);
    let mut rows: Vec<(u64, usize, f32)> = dataset
        .cascades
        .iter()
        .zip(preds)
        .map(|(c, p)| (c.id, c.size_at(window), p.exp() - 1.0))
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("top {top} cascades by predicted growth:");
    println!("{:>10}  {:>9}  {:>12}", "cascade", "observed", "predicted +");
    for (id, observed, pred) in rows.into_iter().take(top) {
        println!("{id:>10}  {observed:>9}  {pred:>12.1}");
    }
    Ok(())
}
