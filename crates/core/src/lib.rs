//! **CasCN** — Recurrent Cascades Convolutional Networks (Chen et al.,
//! ICDE 2019) — in pure Rust.
//!
//! CasCN predicts the future growth `ΔS_i` of an information cascade from
//! its first `T` hours/years of life, using only the cascade's *structure*
//! (an evolving DAG) and *timing* (when each adoption happened):
//!
//! 1. the observed cascade is sampled into a sequence of sub-cascade
//!    adjacency snapshots (Fig. 3, [`input::preprocess`]);
//! 2. each snapshot is convolved with Chebyshev polynomials of the
//!    **CasLaplacian** — a direction-aware Laplacian built from the
//!    cascade's teleporting transition matrix (Eq. 7–8) — inside the gates
//!    of an LSTM ([`cascn_nn::ChebConvLstmCell`], Eq. 12–14);
//! 3. hidden states are re-weighted by a learned, non-parametric time-decay
//!    (Eq. 15–16), sum-pooled, and fed to an MLP that emits the predicted
//!    log-increment (Eq. 18).
//!
//! The crate also ships the paper's five ablation variants (Table IV) and
//! the training loop of Algorithm 2.
//!
//! Besides the macroscopic size regression, the same recurrent stack can
//! drive a *microscopic* next-user task: configuring
//! `CascnConfig { task: TaskKind::NextUser, vocab_users, .. }` attaches a
//! masked softmax head over the user vocabulary
//! ([`cascn_nn::NextUserHead`]), trained with next-event cross-entropy
//! ([`model::CascnModel::fit_next_user`]) and evaluated with Hit@k / MAP
//! ([`cascn_nn::metrics`]). Already-infected users are masked to
//! probability exactly zero.
//!
//! # Example
//!
//! ```no_run
//! use cascn::{CascnConfig, CascnModel, SizePredictor, TrainOpts};
//! use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
//! use cascn_cascades::Split;
//!
//! let window = 3600.0; // observe the first hour
//! let data = WeiboGenerator::new(WeiboConfig::default())
//!     .generate()
//!     .filter_observed_size(window, 10, 100);
//!
//! let mut model = CascnModel::new(CascnConfig::default());
//! let history = model.fit(
//!     data.split(Split::Train),
//!     data.split(Split::Validation),
//!     window,
//!     &TrainOpts::default(),
//! );
//! println!("best val MSLE: {:?}", history.best());
//!
//! let pred = model.predict_log(&data.split(Split::Test)[0], window);
//! println!("predicted ΔS ≈ {}", pred.exp() - 1.0);
//! ```

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod faults;
pub mod gl;
pub mod input;
pub mod model;
pub mod parallel;
pub mod path;
pub mod predictor;
pub mod trainer;

pub use cascn_autograd::{atomic_write, fnv1a64};
pub use checkpoint::{StopperState, TrainCheckpoint};
pub use config::{
    CascnConfig, ChebKernel, DecayMode, LambdaMax, LaplacianKind, Pooling, RecurrentKind, TaskKind,
    Variant,
};
pub use error::CascnError;
pub use faults::FaultInjector;
pub use gl::GlModel;
pub use input::{preprocess, preprocess_with_basis, spectral_basis, PreprocessedCascade, WindowedPreprocessor};
pub use model::{CascnModel, NextUserSample};
pub use parallel::{parallel_map, resolve_threads};
pub use path::PathModel;
pub use predictor::{evaluate, try_evaluate, SizePredictor};
pub use trainer::{CheckpointPolicy, GuardOpts, TrainHooks, TrainOpts};
