//! `CasCN-GL` (Table IV): a per-snapshot graph convolution followed by a
//! *dense* LSTM — structure and time are modeled by separate components
//! instead of the fused ChebConv-LSTM cell. The gap between this variant
//! and full CasCN quantifies the value of convolving inside the recurrence.

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_nn::train::History;
use cascn_nn::{init, Activation, LstmCell, Mlp, TimeDecay};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{CascnConfig, DecayMode};
use crate::input::{preprocess, PreprocessedCascade};
use crate::parallel::parallel_map;
use crate::trainer::{predict_with, train_loop, TrainOpts};

/// The GCN-then-LSTM ablation model.
#[derive(Debug, Clone)]
pub struct GlModel {
    cfg: CascnConfig,
    store: ParamStore,
    /// Chebyshev filter stack of the standalone GCN layer (`K+1` filters).
    conv_w: Vec<ParamId>,
    conv_b: ParamId,
    lstm: LstmCell,
    decay: TimeDecay,
    mlp: Mlp,
}

impl GlModel {
    /// Builds an untrained model.
    pub fn new(cfg: CascnConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let conv_w = (0..=cfg.k)
            .map(|i| {
                store.register(
                    format!("gl.conv.w{i}"),
                    init::xavier_uniform(cfg.max_nodes, cfg.hidden, &mut rng),
                )
            })
            .collect();
        let conv_b = store.register("gl.conv.b", Matrix::zeros(1, cfg.hidden));
        let lstm = LstmCell::new(&mut store, "gl.lstm", cfg.hidden, cfg.hidden, &mut rng);
        let decay = TimeDecay::new(&mut store, "gl.decay", cfg.decay_intervals);
        let mlp = Mlp::new(
            &mut store,
            "gl.mlp",
            &[cfg.hidden, cfg.mlp_hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            cfg,
            store,
            conv_w,
            conv_b,
            lstm,
            decay,
            mlp,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &CascnConfig {
        &self.cfg
    }

    /// Forward pass: GCN per snapshot → node-sum pooling → dense LSTM over
    /// the pooled sequence → time decay → sum → MLP.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &PreprocessedCascade,
    ) -> Var {
        let operands = sample.operands(tape);
        // Per-snapshot GCN embedding (1 x hidden each).
        let mut sequence = Vec::with_capacity(sample.snapshots.len());
        for snap in &sample.snapshots {
            let x = tape.constant(snap.clone());
            let stack = operands.conv_stack(tape, x);
            let mut acc: Option<Var> = None;
            for (&conv, &wid) in stack.iter().zip(&self.conv_w) {
                let w = tape.param(store, wid);
                let term = tape.matmul(conv, w);
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let b = tape.param(store, self.conv_b);
            // lint: allow(no-panic) — the filter bank has K+1 ≥ 1 entries by construction
            let pre = acc.expect("K+1 >= 1 filters");
            let pre = tape.add_bias(pre, b);
            let act = tape.relu(pre);
            sequence.push(tape.sum_rows(act));
        }
        // Dense LSTM over the snapshot embeddings.
        let hs = self.lstm.run(tape, store, &sequence, 1);
        let mut acc: Option<Var> = None;
        for (t, &h) in hs.iter().enumerate() {
            let weighted = match self.cfg.decay {
                DecayMode::Learned => {
                    self.decay
                        .apply(tape, store, h, sample.times[t], sample.window)
                }
                DecayMode::None => h,
                kernel => {
                    let k = kernel.kernel(sample.times[t] / sample.window.max(f64::MIN_POSITIVE));
                    tape.scale(h, k)
                }
            };
            acc = Some(match acc {
                Some(a) => tape.add(a, weighted),
                None => weighted,
            });
        }
        // lint: allow(no-panic) — the snapshot sequence is non-empty (snapshots() emits ≥ 1)
        let pooled = acc.expect("non-empty sequence");
        self.mlp.forward(tape, store, pooled)
    }

    /// Trains the model (same loop as CasCN).
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples: Vec<PreprocessedCascade> =
            parallel_map(self.cfg.threads, train, |_, c| preprocess(c, window, &self.cfg));
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples: Vec<PreprocessedCascade> =
            parallel_map(self.cfg.threads, val, |_, c| preprocess(c, window, &self.cfg));
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            model.forward(tape, store, s)
        };
        train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }

    /// Predicted log-increment for a cascade.
    pub fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = preprocess(cascade, window, &self.cfg);
        let forward = |tape: &mut Tape, store: &ParamStore, s: &PreprocessedCascade| {
            self.forward(tape, store, s)
        };
        predict_with(&self.store, &forward, &sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};

    fn tiny_cfg() -> CascnConfig {
        CascnConfig {
            hidden: 4,
            mlp_hidden: 4,
            max_nodes: 12,
            max_steps: 6,
            ..CascnConfig::default()
        }
    }

    #[test]
    fn forward_and_predict_are_finite() {
        let data = WeiboGenerator::new(WeiboConfig {
            num_cascades: 50,
            seed: 3,
            max_size: 100,
        })
        .generate();
        let model = GlModel::new(tiny_cfg());
        let p = model.predict_log(&data.cascades[0], 3600.0);
        assert!(p.is_finite());
    }

    #[test]
    fn fit_runs_one_epoch() {
        let data = WeiboGenerator::new(WeiboConfig {
            num_cascades: 120,
            seed: 4,
            max_size: 100,
        })
        .generate()
        .filter_observed_size(3600.0, 2, 50);
        let mut model = GlModel::new(tiny_cfg());
        let half = data.cascades.len() / 2;
        let opts = TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        };
        let hist = model.fit(&data.cascades[..half], &data.cascades[half..], 3600.0, &opts);
        assert_eq!(hist.records().len(), 1);
        assert!(hist.records()[0].val_loss.is_finite());
    }
}
