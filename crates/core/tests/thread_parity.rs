//! The parallel engine's determinism contract, end to end: training,
//! preprocessing, and evaluation must be **bit-identical** for every thread
//! count. This is what lets `--threads N` compose with PR 1's resume-parity
//! guarantee — a run checkpointed under one thread count can resume under
//! another and still finish byte-identical.

use cascn::{try_evaluate, CascnConfig, CascnModel, ChebKernel, GlModel, PathModel, TrainOpts};
use cascn_autograd::ParamStore;
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Dataset, Split};

fn tiny_cfg(threads: usize) -> CascnConfig {
    CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 12,
        max_steps: 6,
        threads,
        ..CascnConfig::default()
    }
}

fn tiny_data() -> Dataset {
    WeiboGenerator::new(WeiboConfig {
        num_cascades: 200,
        seed: 61,
        max_size: 150,
    })
    .generate()
    .filter_observed_size(3600.0, 3, 60)
}

fn params_bits(store: &ParamStore) -> Vec<u32> {
    store
        .ids()
        .flat_map(|id| store.value(id).as_slice().to_vec())
        .map(f32::to_bits)
        .collect()
}

fn train_with(threads: usize) -> (CascnModel, cascn_nn::train::History) {
    let data = tiny_data();
    let opts = TrainOpts {
        epochs: 3,
        patience: 3,
        threads,
        ..TrainOpts::default()
    };
    let mut model = CascnModel::new(tiny_cfg(threads));
    let hist = model.fit(
        data.split(Split::Train),
        data.split(Split::Validation),
        3600.0,
        &opts,
    );
    (model, hist)
}

/// The headline acceptance test: a run with 4 worker threads produces
/// byte-identical parameters and an identical loss history to the serial
/// run from the same seed.
#[test]
fn threaded_training_is_bit_identical_to_serial() {
    let (serial_model, serial_hist) = train_with(1);
    for threads in [2, 4] {
        let (model, hist) = train_with(threads);
        assert_eq!(
            params_bits(serial_model.params()),
            params_bits(model.params()),
            "parameters diverged at {threads} threads"
        );
        assert_eq!(
            serial_hist.records(),
            hist.records(),
            "loss history diverged at {threads} threads"
        );
    }
}

/// `threads: 0` (auto) also lands on the identical result, whatever the
/// machine's core count resolves to.
#[test]
fn auto_thread_count_matches_serial() {
    let (serial_model, _) = train_with(1);
    let (auto_model, _) = train_with(0);
    assert_eq!(
        params_bits(serial_model.params()),
        params_bits(auto_model.params())
    );
}

/// Prediction sweeps are thread-count invariant too (they share the same
/// `parallel_map` reduction), for CasCN and the ablation variants with
/// their own preprocessing pipelines.
#[test]
fn prediction_and_evaluation_are_thread_count_invariant() {
    let data = tiny_data();
    let test = data.split(Split::Test);
    let window = 3600.0;

    let serial = CascnModel::new(tiny_cfg(1));
    let threaded = CascnModel::new(tiny_cfg(4));
    let serial_preds: Vec<u32> = serial
        .predict_logs(test, window)
        .into_iter()
        .map(f32::to_bits)
        .collect();
    let threaded_preds: Vec<u32> = threaded
        .predict_logs(test, window)
        .into_iter()
        .map(f32::to_bits)
        .collect();
    assert_eq!(serial_preds, threaded_preds);

    let a = try_evaluate(&serial, test, window, 1).unwrap();
    let b = try_evaluate(&serial, test, window, 4).unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
}

/// The tests above all exercise the default **sparse** operator kernel;
/// the legacy dense-basis kernel must honor the same contract — training
/// under it stays bit-identical across thread counts, and its parameters
/// genuinely differ from the sparse run only through float rounding (the
/// two kernels share every spectral constant).
#[test]
fn dense_kernel_training_is_thread_count_invariant() {
    let data = tiny_data();
    let run = |threads: usize| {
        let cfg = CascnConfig {
            cheb_kernel: ChebKernel::Dense,
            ..tiny_cfg(threads)
        };
        let opts = TrainOpts {
            epochs: 2,
            patience: 2,
            threads,
            ..TrainOpts::default()
        };
        let mut model = CascnModel::new(cfg);
        let hist = model.fit(
            data.split(Split::Train),
            data.split(Split::Validation),
            3600.0,
            &opts,
        );
        (params_bits(model.params()), hist.records().to_vec())
    };
    let serial = run(1);
    assert_eq!(serial, run(3), "dense kernel diverged across thread counts");
}

/// The GL and Path variants route preprocessing through the same parallel
/// fan-out in their `fit`; one epoch under 3 threads must match serial.
#[test]
fn variant_training_is_thread_count_invariant() {
    let data = tiny_data();
    let window = 3600.0;
    let train = data.split(Split::Train);
    let val = data.split(Split::Validation);

    let run_gl = |threads: usize| {
        let mut m = GlModel::new(tiny_cfg(threads));
        let opts = TrainOpts { epochs: 1, threads, ..TrainOpts::default() };
        let h = m.fit(train, val, window, &opts);
        (h.records().to_vec(), m.predict_log(&data.cascades[0], window).to_bits())
    };
    assert_eq!(run_gl(1), run_gl(3));

    let run_path = |threads: usize| {
        let mut m = PathModel::new(tiny_cfg(threads), train, window);
        let opts = TrainOpts { epochs: 1, threads, ..TrainOpts::default() };
        let h = m.fit(train, val, window, &opts);
        (h.records().to_vec(), m.predict_log(&data.cascades[0], window).to_bits())
    };
    assert_eq!(run_path(1), run_path(3));
}
