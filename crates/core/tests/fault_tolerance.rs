//! Integration tests for the fault-tolerant training runtime: the anomaly
//! guard, resumable checkpoints, checksum verification, data quarantine,
//! and the `cascn` CLI's failure behavior — all driven by the deterministic
//! [`FaultInjector`].

use std::path::PathBuf;
use std::process::Command;

use cascn::trainer::train_loop_resumable;
use cascn::{
    CascnConfig, CascnModel, CheckpointPolicy, FaultInjector, TrainCheckpoint, TrainHooks,
    TrainOpts,
};
use cascn_autograd::{ParamStore, Tape, Var};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{io, Dataset, Split};
use cascn_nn::metrics;
use cascn_tensor::Matrix;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cascn_fault_it").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cfg() -> CascnConfig {
    CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 12,
        max_steps: 6,
        ..CascnConfig::default()
    }
}

fn tiny_data() -> Dataset {
    WeiboGenerator::new(WeiboConfig {
        num_cascades: 200,
        seed: 77,
        max_size: 150,
    })
    .generate()
    .filter_observed_size(3600.0, 3, 60)
}

fn params_bits(store: &ParamStore) -> Vec<u32> {
    store
        .ids()
        .flat_map(|id| store.value(id).as_slice().to_vec())
        .map(f32::to_bits)
        .collect()
}

/// The acceptance scenario: NaN gradients injected at epoch 3, training
/// stopped after epoch 5, finished via resume — final validation MSLE must
/// match the uninterrupted control within 1e-5, and the anomaly log must
/// show the injected faults.
#[test]
fn injected_faults_and_interruption_still_reach_control_msle() {
    let dir = temp_dir("acceptance");
    let ckpt_path = dir.join("run.ckpt");
    let data = tiny_data();
    let window = 3600.0;
    let train = data.split(Split::Train);
    let val = data.split(Split::Validation);
    assert!(train.len() >= 20, "need data, got {}", train.len());
    let opts = TrainOpts {
        epochs: 8,
        patience: 8,
        ..TrainOpts::default()
    };

    // Shared fault schedule: poison the gradients of the first two batches
    // of epoch 3. Both the control and the interrupted run see the same
    // faults, so their trajectories stay comparable.
    fn make_injector() -> impl FnMut(usize, usize, &mut ParamStore) {
        let mut inj = FaultInjector::new(42);
        move |epoch: usize, batch: usize, store: &mut ParamStore| {
            if epoch == 3 && batch < 2 {
                inj.corrupt_grads(store);
            }
        }
    }

    let run = |resume: Option<TrainCheckpoint>,
               checkpoint: Option<CheckpointPolicy>,
               epochs: usize|
     -> (CascnModel, cascn_nn::train::History) {
        let mut model = CascnModel::new(tiny_cfg());
        let samples: Vec<_> = train
            .iter()
            .map(|c| cascn::preprocess(c, window, model.config()))
            .collect();
        let labels: Vec<f32> = samples.iter().map(|s| s.label_log).collect();
        let val_samples: Vec<_> = val
            .iter()
            .map(|c| cascn::preprocess(c, window, model.config()))
            .collect();
        let val_inc: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let fwd_model = model.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &cascn::PreprocessedCascade| -> Var {
            fwd_model.forward(tape, store, s)
        };
        let mut inject = make_injector();
        let mut store = model.params().clone();
        let opts = TrainOpts { epochs, ..opts };
        let hist = train_loop_resumable(
            &mut store,
            &forward,
            &samples,
            &labels,
            &val_samples,
            &val_inc,
            &opts,
            resume.as_ref(),
            checkpoint.as_ref(),
            &mut |_, _| {},
            TrainHooks {
                post_grad: Some(&mut inject),
            },
        )
        .unwrap();
        model.set_params(store);
        (model, hist)
    };

    // Control: 8 epochs straight through.
    let (control, control_hist) = run(None, None, 8);
    assert!(
        control_hist.skipped_steps() >= 2,
        "epoch-3 faults must be logged: {:?}",
        control_hist.anomalies()
    );

    // Interrupted: stop after epoch 5 (the checkpoint written at epoch 5
    // stands in for the state an abrupt kill leaves on disk), then resume
    // to epoch 8.
    let policy = CheckpointPolicy {
        path: ckpt_path.clone(),
        every: 1,
    };
    let _ = run(None, Some(policy), 5);
    let ckpt = TrainCheckpoint::load(&ckpt_path).unwrap();
    assert_eq!(ckpt.epoch, 5);
    assert!(
        ckpt.history.skipped_steps() >= 2,
        "anomaly log survives checkpointing"
    );
    let (resumed, resumed_hist) = run(Some(ckpt), None, 8);

    // Bit-exact parameters, and (therefore) matching validation MSLE.
    assert_eq!(
        params_bits(control.params()),
        params_bits(resumed.params()),
        "resumed run must be bit-identical to the control"
    );
    let msle = |m: &CascnModel| {
        let preds: Vec<f32> = val.iter().map(|c| m.predict_log(c, window)).collect();
        let inc: Vec<usize> = val.iter().map(|c| c.increment_size(window)).collect();
        metrics::msle(&preds, &inc)
    };
    let (a, b) = (msle(&control), msle(&resumed));
    assert!(
        (a - b).abs() < 1e-5,
        "control MSLE {a} vs resumed {b}"
    );
    assert_eq!(
        control_hist.records().len(),
        resumed_hist.records().len(),
        "histories must line up"
    );
    std::fs::remove_file(&ckpt_path).ok();
}

/// A checkpoint truncated mid-file must be rejected with a checksum error,
/// not silently half-loaded.
#[test]
fn truncated_checkpoint_is_rejected_with_checksum_error() {
    let dir = temp_dir("truncate");
    let ckpt_path = dir.join("run.ckpt");
    let mut params = ParamStore::new();
    params.register("w", Matrix::full(3, 3, 0.5));
    let ckpt = TrainCheckpoint {
        epoch: 1,
        shuffle_seed: 7,
        base_lr: 5e-3,
        eff_lr: 5e-3,
        bad_streak: 0,
        stopper: cascn::StopperState {
            patience: 10,
            best: 1.0,
            best_epoch: 1,
            stale: 0,
            epochs_seen: 1,
        },
        history: cascn_nn::train::History::new(),
        adam: cascn_autograd::AdamState::default(),
        params,
        best_params: None,
    };
    ckpt.save(&ckpt_path).unwrap();
    TrainCheckpoint::load(&ckpt_path).expect("intact checkpoint loads");

    let mut inj = FaultInjector::new(9);
    let kept = inj.truncate_file(&ckpt_path).unwrap();
    assert!(kept > 0);
    let err = TrainCheckpoint::load(&ckpt_path).unwrap_err().to_string();
    assert!(
        err.contains("checksum") || err.contains("truncated"),
        "unhelpful error for truncated checkpoint: {err}"
    );
    std::fs::remove_file(&ckpt_path).ok();
}

/// Mangled dataset files train anyway: the CLI's lenient loader quarantines
/// the corrupt cascades and reports them.
#[test]
fn mangled_dataset_is_quarantined_not_fatal() {
    let data = WeiboGenerator::new(WeiboConfig {
        num_cascades: 60,
        seed: 11,
        max_size: 100,
    })
    .generate();
    let text = io::dataset_to_string(&data);
    let mangled = FaultInjector::new(13).mangle_dataset_lines(&text, 8);
    let (kept, report) = io::dataset_from_str_lenient(&mangled, "mangled");
    assert!(!report.is_clean(), "mangling must be detected");
    assert!(
        kept.cascades.len() >= data.cascades.len() - 2 * 8,
        "quarantine must be surgical: kept {} of {}",
        kept.cascades.len(),
        data.cascades.len()
    );
    for q in &report.quarantined {
        assert!(q.line > 0, "quarantine entries carry line numbers");
        assert!(!q.reason.is_empty());
    }
    // Every kept cascade still satisfies the invariants.
    for c in &kept.cascades {
        assert!(cascn_cascades::validate_events(&c.events).is_ok());
    }
}

/// End-to-end CLI: train with checkpoints, resume, and get identical final
/// parameters; corrupt inputs exit with a clean one-line error.
#[test]
fn cli_resume_and_error_paths() {
    let dir = temp_dir("cli");
    let bin = env!("CARGO_BIN_EXE_cascn");
    let data_path = dir.join("d.cascades");
    let run = |args: &[&str]| {
        Command::new(bin)
            .args(args)
            .output()
            .expect("cascn binary runs")
    };

    // Generate a small dataset.
    let out = run(&[
        "generate",
        "--dataset",
        "weibo",
        "--n",
        "160",
        "--seed",
        "5",
        "--out",
        data_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let common = [
        "--data",
        data_path.to_str().unwrap(),
        "--window",
        "3600",
        "--hidden",
        "4",
        "--max-nodes",
        "10",
        "--max-steps",
        "5",
        "--min-size",
        "3",
        "--patience",
        "4",
    ];

    // Control run: 4 epochs, save final model.
    let control_model = dir.join("control.params");
    let mut args = vec!["train"];
    args.extend_from_slice(&common);
    args.extend_from_slice(&["--epochs", "4", "--out", control_model.to_str().unwrap()]);
    let out = run(&args);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Interrupted run: 2 epochs with checkpointing…
    let ckpt = dir.join("run.ckpt");
    let mut args = vec!["train"];
    args.extend_from_slice(&common);
    args.extend_from_slice(&["--epochs", "2", "--checkpoint", ckpt.to_str().unwrap()]);
    let out = run(&args);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // …resumed to 4 epochs.
    let resumed_model = dir.join("resumed.params");
    let mut args = vec!["train"];
    args.extend_from_slice(&common);
    args.extend_from_slice(&[
        "--epochs",
        "4",
        "--resume",
        ckpt.to_str().unwrap(),
        "--out",
        resumed_model.to_str().unwrap(),
    ]);
    let out = run(&args);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming"), "resume path not taken: {stdout}");

    assert_eq!(
        std::fs::read_to_string(&control_model).unwrap(),
        std::fs::read_to_string(&resumed_model).unwrap(),
        "resumed CLI run must produce the identical final model"
    );

    // Shape mismatch (wrong --hidden) exits non-zero with a one-line error.
    let out = run(&[
        "predict",
        "--data",
        data_path.to_str().unwrap(),
        "--window",
        "3600",
        "--model",
        control_model.to_str().unwrap(),
        "--hidden",
        "8",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.trim().lines().count(), 1, "stderr: {stderr}");
    assert!(
        stderr.contains("shape mismatch") || stderr.contains("architecture"),
        "stderr: {stderr}"
    );

    // A truncated checkpoint passed to --resume is rejected cleanly.
    let mut inj = FaultInjector::new(21);
    inj.truncate_file(&ckpt).unwrap();
    let mut args = vec!["train"];
    args.extend_from_slice(&common);
    args.extend_from_slice(&["--epochs", "4", "--resume", ckpt.to_str().unwrap()]);
    let out = run(&args);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum") || stderr.contains("truncated"),
        "stderr: {stderr}"
    );
    assert_eq!(stderr.trim().lines().count(), 1, "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
