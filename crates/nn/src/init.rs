//! Weight initializers.

use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

/// Xavier/Glorot uniform initialization: entries uniform in
/// `±sqrt(6 / (fan_in + fan_out))`. The default for all weight matrices in
/// this workspace.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
}

/// Scaled normal initialization with standard deviation `std`.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        // Box–Muller transform.
        let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Uniform initialization in `[low, high)`.
pub fn uniform(rows: usize, cols: usize, low: f32, high: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(low..high))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(20, 30, &mut rng);
        let limit = (6.0f32 / 50.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() < limit));
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(100, 100, 0.5, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn initialization_is_seeded() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
