//! Training-loop utilities shared by every model trainer in the workspace.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Shuffled mini-batch index lists over `n` examples. The final batch may be
/// smaller. Matches Algorithm 2's batch loop (paper batch size: 32).
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "shuffled_batches: batch_size must be positive");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Early stopping on validation loss: stop when the loss has not improved
/// for `patience` consecutive epochs (the paper stops after 10 stagnant
/// iterations).
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    best_epoch: usize,
    stale: usize,
    epoch: usize,
}

impl EarlyStopping {
    /// Creates a tracker with the given patience.
    pub fn new(patience: usize) -> Self {
        Self {
            patience,
            best: f32::INFINITY,
            best_epoch: 0,
            stale: 0,
            epoch: 0,
        }
    }

    /// Rebuilds a tracker from checkpointed state so a resumed run continues
    /// with the same patience countdown.
    pub fn from_state(
        patience: usize,
        best: f32,
        best_epoch: usize,
        stale: usize,
        epoch: usize,
    ) -> Self {
        Self {
            patience,
            best,
            best_epoch,
            stale,
            epoch,
        }
    }

    /// Records one epoch's validation loss. Returns `true` when training
    /// should stop.
    ///
    /// A NaN/Inf validation loss counts as a *non-improving* epoch (toward
    /// patience) and never becomes `best` — a single divergent epoch must
    /// not poison later `best()` comparisons.
    pub fn observe(&mut self, val_loss: f32) -> bool {
        self.epoch += 1;
        if val_loss.is_finite() && val_loss < self.best {
            self.best = val_loss;
            self.best_epoch = self.epoch;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.patience
    }

    /// Whether the most recently observed epoch is the best so far.
    pub fn last_was_best(&self) -> bool {
        self.stale == 0
    }

    /// Best validation loss seen.
    pub fn best(&self) -> f32 {
        self.best
    }

    /// Epoch (1-based) of the best validation loss.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }

    /// Configured patience.
    pub fn patience(&self) -> usize {
        self.patience
    }

    /// Consecutive non-improving epochs observed so far.
    pub fn stale(&self) -> usize {
        self.stale
    }

    /// Total epochs observed.
    pub fn epochs_seen(&self) -> usize {
        self.epoch
    }
}

/// Per-epoch record of a training run (Fig. 7 plots these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation loss (MSLE).
    pub val_loss: f32,
}

/// What went wrong in one training batch — the anomaly guard's event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The batch loss evaluated to NaN/Inf.
    NonFiniteLoss,
    /// A gradient contained NaN/Inf before the optimizer step.
    NonFiniteGrad,
    /// A parameter went NaN/Inf *after* an optimizer step (update overflow).
    NonFiniteParam,
    /// Parameters were rolled back to the last good snapshot.
    Rollback,
}

impl AnomalyKind {
    /// Stable token used in checkpoint serialization.
    pub fn as_token(self) -> &'static str {
        match self {
            AnomalyKind::NonFiniteLoss => "non-finite-loss",
            AnomalyKind::NonFiniteGrad => "non-finite-grad",
            AnomalyKind::NonFiniteParam => "non-finite-param",
            AnomalyKind::Rollback => "rollback",
        }
    }

    /// Inverse of [`AnomalyKind::as_token`].
    pub fn from_token(tok: &str) -> Option<Self> {
        Some(match tok {
            "non-finite-loss" => AnomalyKind::NonFiniteLoss,
            "non-finite-grad" => AnomalyKind::NonFiniteGrad,
            "non-finite-param" => AnomalyKind::NonFiniteParam,
            "rollback" => AnomalyKind::Rollback,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_token())
    }
}

/// One recorded training anomaly, so experiments can report skipped-step
/// counts alongside losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyEvent {
    /// 1-based epoch in which the anomaly occurred.
    pub epoch: usize,
    /// 0-based batch index within the epoch.
    pub batch: usize,
    /// What happened.
    pub kind: AnomalyKind,
}

/// The loss trajectory of one training run, plus its anomaly log.
#[derive(Debug, Clone, Default)]
pub struct History {
    records: Vec<EpochRecord>,
    anomalies: Vec<AnomalyEvent>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a history from checkpointed parts; record epochs are
    /// renumbered 1..=n to keep [`History::push`] consistent afterwards.
    pub fn from_parts(records: Vec<EpochRecord>, anomalies: Vec<AnomalyEvent>) -> Self {
        let records = records
            .into_iter()
            .enumerate()
            .map(|(i, r)| EpochRecord {
                epoch: i + 1,
                ..r
            })
            .collect();
        Self { records, anomalies }
    }

    /// Appends an epoch record.
    pub fn push(&mut self, train_loss: f32, val_loss: f32) {
        self.records.push(EpochRecord {
            epoch: self.records.len() + 1,
            train_loss,
            val_loss,
        });
    }

    /// Records a training anomaly (skipped step, rollback, …).
    pub fn log_anomaly(&mut self, epoch: usize, batch: usize, kind: AnomalyKind) {
        self.anomalies.push(AnomalyEvent { epoch, batch, kind });
    }

    /// All records in order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// All recorded anomalies in order.
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        &self.anomalies
    }

    /// Number of batches whose update step was discarded by the anomaly
    /// guard (excludes rollback markers).
    pub fn skipped_steps(&self) -> usize {
        self.anomalies
            .iter()
            .filter(|a| a.kind != AnomalyKind::Rollback)
            .count()
    }

    /// Number of parameter rollbacks performed by the anomaly guard.
    pub fn rollbacks(&self) -> usize {
        self.anomalies
            .iter()
            .filter(|a| a.kind == AnomalyKind::Rollback)
            .count()
    }

    /// The epoch record with the lowest validation loss, if any. Non-finite
    /// losses (NaN/Inf of either sign) are treated as worse than any finite
    /// value, so a divergent epoch can never win.
    pub fn best(&self) -> Option<EpochRecord> {
        let key = |r: &EpochRecord| {
            if r.val_loss.is_finite() {
                r.val_loss
            } else {
                f32::INFINITY
            }
        };
        self.records
            .iter()
            .copied()
            .min_by(|a, b| key(a).total_cmp(&key(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn batches_partition_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let batches = shuffled_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 1);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batches_are_shuffled_but_seeded() {
        let a = shuffled_batches(20, 5, &mut StdRng::seed_from_u64(2));
        let b = shuffled_batches(20, 5, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        let flat: Vec<usize> = a.into_iter().flatten().collect();
        assert_ne!(flat, (0..20).collect::<Vec<_>>(), "expected a shuffle");
    }

    #[test]
    fn early_stopping_waits_for_patience() {
        let mut es = EarlyStopping::new(3);
        assert!(!es.observe(1.0));
        assert!(!es.observe(0.9)); // improvement
        assert!(!es.observe(0.95));
        assert!(!es.observe(0.95));
        assert!(es.observe(0.95), "third stale epoch triggers stop");
        assert_eq!(es.best_epoch(), 2);
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn early_stopping_treats_nan_as_stale() {
        let mut es = EarlyStopping::new(2);
        assert!(!es.observe(1.0));
        assert!(!es.observe(f32::NAN), "NaN counts toward patience");
        assert_eq!(es.stale(), 1);
        assert_eq!(es.best(), 1.0, "NaN must not poison best()");
        assert!(es.observe(f32::INFINITY), "second stale epoch stops");
        assert_eq!(es.best_epoch(), 1);
        // A finite improvement after restore-from-state still registers.
        let mut resumed = EarlyStopping::from_state(2, es.best(), es.best_epoch(), 0, 3);
        assert!(!resumed.observe(0.5));
        assert_eq!(resumed.best(), 0.5);
        assert_eq!(resumed.best_epoch(), 4);
    }

    #[test]
    fn history_best_ignores_non_finite_epochs() {
        let mut h = History::new();
        h.push(1.0, f32::NAN);
        h.push(0.9, 1.5);
        h.push(0.8, f32::INFINITY);
        let best = h.best().unwrap();
        assert_eq!(best.epoch, 2);
        assert_eq!(best.val_loss, 1.5);
        // All-NaN histories still return something rather than panicking.
        let mut all_nan = History::new();
        all_nan.push(1.0, f32::NAN);
        assert_eq!(all_nan.best().unwrap().epoch, 1);
    }

    #[test]
    fn anomaly_log_counts_skips_and_rollbacks() {
        let mut h = History::new();
        h.log_anomaly(1, 0, AnomalyKind::NonFiniteLoss);
        h.log_anomaly(1, 3, AnomalyKind::NonFiniteGrad);
        h.log_anomaly(2, 1, AnomalyKind::Rollback);
        assert_eq!(h.skipped_steps(), 2);
        assert_eq!(h.rollbacks(), 1);
        assert_eq!(h.anomalies().len(), 3);
        for kind in [
            AnomalyKind::NonFiniteLoss,
            AnomalyKind::NonFiniteGrad,
            AnomalyKind::NonFiniteParam,
            AnomalyKind::Rollback,
        ] {
            assert_eq!(AnomalyKind::from_token(kind.as_token()), Some(kind));
        }
        assert_eq!(AnomalyKind::from_token("bogus"), None);
    }

    #[test]
    fn history_from_parts_renumbers_and_continues() {
        let recs = vec![
            EpochRecord { epoch: 7, train_loss: 1.0, val_loss: 2.0 },
            EpochRecord { epoch: 9, train_loss: 0.5, val_loss: 1.0 },
        ];
        let mut h = History::from_parts(recs, vec![]);
        assert_eq!(h.records()[0].epoch, 1);
        assert_eq!(h.records()[1].epoch, 2);
        h.push(0.4, 0.9);
        assert_eq!(h.records()[2].epoch, 3);
    }

    #[test]
    fn history_tracks_best() {
        let mut h = History::new();
        h.push(2.0, 1.8);
        h.push(1.5, 1.2);
        h.push(1.4, 1.3);
        let best = h.best().unwrap();
        assert_eq!(best.epoch, 2);
        assert_eq!(best.val_loss, 1.2);
    }
}
