//! Training-loop utilities shared by every model trainer in the workspace.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Shuffled mini-batch index lists over `n` examples. The final batch may be
/// smaller. Matches Algorithm 2's batch loop (paper batch size: 32).
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "shuffled_batches: batch_size must be positive");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Early stopping on validation loss: stop when the loss has not improved
/// for `patience` consecutive epochs (the paper stops after 10 stagnant
/// iterations).
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    best_epoch: usize,
    stale: usize,
    epoch: usize,
}

impl EarlyStopping {
    /// Creates a tracker with the given patience.
    pub fn new(patience: usize) -> Self {
        Self {
            patience,
            best: f32::INFINITY,
            best_epoch: 0,
            stale: 0,
            epoch: 0,
        }
    }

    /// Records one epoch's validation loss. Returns `true` when training
    /// should stop.
    pub fn observe(&mut self, val_loss: f32) -> bool {
        self.epoch += 1;
        if val_loss < self.best {
            self.best = val_loss;
            self.best_epoch = self.epoch;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.patience
    }

    /// Whether the most recently observed epoch is the best so far.
    pub fn last_was_best(&self) -> bool {
        self.stale == 0
    }

    /// Best validation loss seen.
    pub fn best(&self) -> f32 {
        self.best
    }

    /// Epoch (1-based) of the best validation loss.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

/// Per-epoch record of a training run (Fig. 7 plots these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation loss (MSLE).
    pub val_loss: f32,
}

/// The loss trajectory of one training run.
#[derive(Debug, Clone, Default)]
pub struct History {
    records: Vec<EpochRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an epoch record.
    pub fn push(&mut self, train_loss: f32, val_loss: f32) {
        self.records.push(EpochRecord {
            epoch: self.records.len() + 1,
            train_loss,
            val_loss,
        });
    }

    /// All records in order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The epoch record with the lowest validation loss, if any.
    pub fn best(&self) -> Option<EpochRecord> {
        self.records
            .iter()
            .copied()
            .min_by(|a, b| a.val_loss.partial_cmp(&b.val_loss).expect("finite losses"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn batches_partition_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let batches = shuffled_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 1);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batches_are_shuffled_but_seeded() {
        let a = shuffled_batches(20, 5, &mut StdRng::seed_from_u64(2));
        let b = shuffled_batches(20, 5, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        let flat: Vec<usize> = a.into_iter().flatten().collect();
        assert_ne!(flat, (0..20).collect::<Vec<_>>(), "expected a shuffle");
    }

    #[test]
    fn early_stopping_waits_for_patience() {
        let mut es = EarlyStopping::new(3);
        assert!(!es.observe(1.0));
        assert!(!es.observe(0.9)); // improvement
        assert!(!es.observe(0.95));
        assert!(!es.observe(0.95));
        assert!(es.observe(0.95), "third stale epoch triggers stop");
        assert_eq!(es.best_epoch(), 2);
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn history_tracks_best() {
        let mut h = History::new();
        h.push(2.0, 1.8);
        h.push(1.5, 1.2);
        h.push(1.4, 1.3);
        let best = h.best().unwrap();
        assert_eq!(best.epoch, 2);
        assert_eq!(best.val_loss, 1.2);
    }
}
