//! The learned non-parametric time-decay of Eq. 15–16.
//!
//! The observation window `[0, T]` is split into `l` equal intervals; each
//! interval `m` owns a learnable multiplier `λ_m`, and the hidden state of a
//! snapshot taken at time `t` is scaled by the multiplier of the interval
//! containing `t`. Unlike the parametric power-law/exponential/Rayleigh
//! kernels the paper discusses (Section IV-D), the discrete `λ` vector is
//! learned end-to-end.

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_tensor::Matrix;

/// Learnable per-interval decay multipliers.
#[derive(Debug, Clone)]
pub struct TimeDecay {
    lambdas: ParamId,
    intervals: usize,
}

impl TimeDecay {
    /// Registers `intervals` multipliers, initialized to 1.0 (no decay).
    ///
    /// # Panics
    /// Panics if `intervals == 0`.
    pub fn new(store: &mut ParamStore, name: &str, intervals: usize) -> Self {
        assert!(intervals > 0, "TimeDecay: need at least one interval");
        let lambdas = store.register(format!("{name}.lambda"), Matrix::full(intervals, 1, 1.0));
        Self { lambdas, intervals }
    }

    /// Number of intervals `l`.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// The interval index `m = ⌊(t − t_0)/⌈T/l⌉⌋` of Eq. 15 for an event at
    /// `t ∈ [0, window]`, clamped to the last interval.
    pub fn interval_of(&self, t: f64, window: f64) -> usize {
        if window <= 0.0 {
            return 0;
        }
        let width = window / self.intervals as f64;
        ((t / width) as usize).min(self.intervals - 1)
    }

    /// Scales the hidden state `h` (taken at snapshot time `t`) by the
    /// learned `λ_m` of its interval (Eq. 16).
    pub fn apply(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        t: f64,
        window: f64,
    ) -> Var {
        let m = self.interval_of(t, window);
        let table = tape.param(store, self.lambdas);
        let lambda = tape.gather(table, vec![m]);
        tape.scalar_mul(lambda, h)
    }

    /// Current values of the multipliers (for inspection/reports).
    pub fn values(&self, store: &ParamStore) -> Vec<f32> {
        store.value(self.lambdas).as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_mapping_matches_eq15() {
        let mut store = ParamStore::new();
        let decay = TimeDecay::new(&mut store, "d", 4);
        let window = 100.0;
        assert_eq!(decay.interval_of(0.0, window), 0);
        assert_eq!(decay.interval_of(24.9, window), 0);
        assert_eq!(decay.interval_of(25.0, window), 1);
        assert_eq!(decay.interval_of(99.9, window), 3);
        assert_eq!(decay.interval_of(100.0, window), 3, "clamped to last");
        assert_eq!(decay.interval_of(1e9, window), 3, "clamped to last");
    }

    #[test]
    fn apply_scales_by_lambda() {
        let mut store = ParamStore::new();
        let decay = TimeDecay::new(&mut store, "d", 2);
        store.value_mut(store.ids().next().unwrap()).as_mut_slice()[1] = 0.5;
        let mut tape = Tape::new();
        let h = tape.constant(Matrix::full(2, 3, 4.0));
        // t in second half → λ_1 = 0.5.
        let scaled = decay.apply(&mut tape, &store, h, 75.0, 100.0);
        assert_eq!(tape.value(scaled)[(0, 0)], 2.0);
    }

    #[test]
    fn lambda_receives_gradient() {
        let mut store = ParamStore::new();
        let decay = TimeDecay::new(&mut store, "d", 3);
        let mut tape = Tape::new();
        let h = tape.constant(Matrix::full(1, 2, 1.5));
        let scaled = decay.apply(&mut tape, &store, h, 10.0, 30.0);
        let loss = tape.sum_all(scaled);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let id = store.ids().next().unwrap();
        let g = store.grad(id);
        // Only interval 1 gets gradient (=sum of h = 3.0).
        assert_eq!(g.as_slice(), &[0.0, 3.0, 0.0]);
    }

    #[test]
    fn zero_window_is_safe() {
        let mut store = ParamStore::new();
        let decay = TimeDecay::new(&mut store, "d", 5);
        assert_eq!(decay.interval_of(1.0, 0.0), 0);
    }
}
