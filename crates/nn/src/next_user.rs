//! The microscopic next-user prediction head.
//!
//! Macroscopic CasCN regresses cascade *size*; the exemplar microscopic
//! models (Topo-LSTM, SILN) instead rank *who adopts next*. This head adds
//! that second task on top of any model that produces a per-cascade hidden
//! state: a linear projection from the pooled hidden representation onto
//! the user table, an additive mask that pins already-infected users to a
//! `-1e9` logit (SILN's `Predict + label_mask` idiom — their softmax
//! probability underflows to an exact `0.0`), and a row log-softmax whose
//! negative picked entry is the next-event cross-entropy loss.
//!
//! Row 0 of the user table is the UNK bucket and is always masked: the
//! head never predicts "some user we cannot name".

use cascn_autograd::{ParamStore, Tape, Var};
use rand::rngs::StdRng;

use crate::linear::Linear;

/// Additive logit penalty for masked (already-infected) users. Large enough
/// that `exp(logit − max)` underflows to exactly `0.0` in `f32` for any
/// realistic unmasked logit, yet finite so the log-sum-exp stays well
/// defined.
pub const MASK_LOGIT: f32 = -1e9;

/// Linear projection from a pooled hidden state onto the user vocabulary,
/// with infected-user masking. `table_size` counts row 0 (UNK) plus one row
/// per known user.
#[derive(Debug, Clone)]
pub struct NextUserHead {
    proj: Linear,
}

impl NextUserHead {
    /// Registers the `hidden → table_size` projection in `store` under
    /// `name`.
    ///
    /// # Panics
    /// Panics if `table_size < 2` — a vocabulary of only the UNK bucket has
    /// nothing to rank.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        hidden: usize,
        table_size: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(table_size >= 2, "NextUserHead: table of {table_size} has no candidates");
        Self {
            proj: Linear::new(store, name, hidden, table_size, rng),
        }
    }

    /// Number of rows in the user table (UNK + known users).
    pub fn table_size(&self) -> usize {
        self.proj.out_dim()
    }

    /// Raw `1 x table_size` logits for a `1 x hidden` pooled state.
    pub fn logits(&self, tape: &mut Tape, store: &ParamStore, h: Var) -> Var {
        self.proj.forward(tape, store, h)
    }

    /// Masked `1 x table_size` log-probabilities: logits plus an additive
    /// [`MASK_LOGIT`] at every index where `mask` is `true` (and always at
    /// index 0, the UNK bucket), then a row log-softmax.
    ///
    /// # Panics
    /// Panics if `mask.len()` differs from the table size.
    pub fn masked_log_probs(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        mask: &[bool],
    ) -> Var {
        assert_eq!(
            mask.len(),
            self.table_size(),
            "NextUserHead: mask length must match the user table"
        );
        let logits = self.logits(tape, store, h);
        let additive: Vec<f32> = mask
            .iter()
            .enumerate()
            .map(|(i, &m)| if m || i == 0 { MASK_LOGIT } else { 0.0 })
            .collect();
        let mask_var = tape.constant(cascn_tensor::Matrix::from_vec(1, mask.len(), additive));
        let masked = tape.add(logits, mask_var);
        tape.log_softmax_row(masked)
    }

    /// Next-event cross-entropy: `−log p(target)` under the masked
    /// distribution, as a `1x1` loss variable.
    ///
    /// # Panics
    /// Panics if `target` is masked or out of bounds — predicting an
    /// already-infected user is a labeling bug, not a data condition.
    pub fn loss(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        mask: &[bool],
        target: usize,
    ) -> Var {
        assert!(target < mask.len(), "NextUserHead: target {target} out of table");
        assert!(target != 0 && !mask[target], "NextUserHead: target {target} is masked");
        let logp = self.masked_log_probs(tape, store, h, mask);
        let picked = tape.pick(logp, 0, target);
        tape.scale(picked, -1.0)
    }

    /// Forward-only masked probability distribution for a `1 x hidden`
    /// pooled state, as a plain vector: `exp` of [`masked_log_probs`]
    /// (masked entries are exactly `0.0`).
    ///
    /// [`masked_log_probs`]: NextUserHead::masked_log_probs
    pub fn predict_probs(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: Var,
        mask: &[bool],
    ) -> Vec<f32> {
        let logp = self.masked_log_probs(tape, store, h, mask);
        tape.value(logp).as_slice().iter().map(|&l| l.exp()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::Matrix;
    use rand::SeedableRng;

    fn head(table: usize) -> (ParamStore, NextUserHead) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let head = NextUserHead::new(&mut store, "head", 4, table, &mut rng);
        (store, head)
    }

    #[test]
    fn masked_entries_have_exactly_zero_probability() {
        let (store, head) = head(6);
        let mut tape = Tape::new();
        let h = tape.constant(Matrix::from_vec(1, 4, vec![0.3, -0.1, 0.7, 0.2]));
        let mask = [false, false, true, false, true, false];
        let probs = head.predict_probs(&mut tape, &store, h, &mask);
        assert_eq!(probs.len(), 6);
        assert_eq!(probs[0], 0.0, "UNK is always masked");
        assert_eq!(probs[2], 0.0);
        assert_eq!(probs[4], 0.0);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(probs[1] > 0.0 && probs[3] > 0.0 && probs[5] > 0.0);
    }

    #[test]
    fn loss_decreases_under_gradient_steps_on_the_target() {
        use cascn_autograd::{Adam, Optimizer};
        let (mut store, head) = head(5);
        let mut opt = Adam::with_lr(0.1);
        let mask = [false, true, false, false, false];
        let h_val = Matrix::from_vec(1, 4, vec![0.5, -0.2, 0.1, 0.9]);
        let loss_at = |store: &ParamStore| {
            let mut tape = Tape::new();
            let h = tape.constant(h_val.clone());
            let loss = head.loss(&mut tape, store, h, &mask, 3);
            tape.scalar(loss)
        };
        let before = loss_at(&store);
        for _ in 0..50 {
            store.zero_grads();
            let mut tape = Tape::new();
            let h = tape.constant(h_val.clone());
            let loss = head.loss(&mut tape, &store, h, &mask, 3);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        let after = loss_at(&store);
        assert!(after < before * 0.5, "loss should shrink: {before} → {after}");
        // And the target now dominates the masked distribution.
        let mut tape = Tape::new();
        let h = tape.constant(h_val);
        let probs = head.predict_probs(&mut tape, &store, h, &mask);
        let best = (0..probs.len())
            .max_by(|&a, &b| probs[a].total_cmp(&probs[b]))
            .unwrap();
        assert_eq!(best, 3);
    }

    #[test]
    fn masked_users_get_no_gradient_through_the_mask() {
        // The mask is an additive constant: the target's gradient flows,
        // and masked columns receive ~0 (their softmax is 0).
        let (mut store, head) = head(4);
        store.zero_grads();
        let mut tape = Tape::new();
        let h = tape.constant(Matrix::from_vec(1, 4, vec![1.0, 0.0, -1.0, 0.5]));
        let mask = [false, false, true, false];
        let loss = head.loss(&mut tape, &store, h, &mask, 1);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let w = store.ids().next().unwrap();
        let g = store.grad(w);
        // Column 2 (masked) of the projection gets an exactly-zero gradient.
        for r in 0..g.rows() {
            assert_eq!(g[(r, 2)], 0.0, "masked column must not train");
        }
    }

    #[test]
    #[should_panic(expected = "is masked")]
    fn loss_rejects_masked_target() {
        let (store, head) = head(4);
        let mut tape = Tape::new();
        let h = tape.constant(Matrix::zeros(1, 4));
        let _ = head.loss(&mut tape, &store, h, &[false, true, false, false], 1);
    }
}
