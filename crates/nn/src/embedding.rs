//! User-identity embeddings and the id vocabulary.

// lint: allow(nondeterminism) — Vocab's map is lookup-only; its iteration order is never observed
use std::collections::HashMap;

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

use crate::init;

/// Maps sparse global user ids to dense embedding rows. Row 0 is reserved
/// for out-of-vocabulary users (test-set users unseen during training).
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    // lint: allow(nondeterminism) — ids are assigned on insertion order and read by point lookup; the map is never iterated
    index: HashMap<u64, usize>,
}

impl Vocab {
    /// Builds a vocabulary from training-set user ids. `max_size` bounds the
    /// table (0 = unbounded); ids are admitted first-come-first-served.
    pub fn build(users: impl Iterator<Item = u64>, max_size: usize) -> Self {
        // lint: allow(nondeterminism) — populated in caller-supplied order, read only via get
        let mut index = HashMap::new();
        for u in users {
            if max_size > 0 && index.len() >= max_size {
                break;
            }
            let next = index.len() + 1; // 0 = UNK
            index.entry(u).or_insert(next);
        }
        Self { index }
    }

    /// Number of embedding rows needed (vocabulary + UNK row).
    pub fn table_size(&self) -> usize {
        self.index.len() + 1
    }

    /// Dense row index for a user (0 for unknown users).
    pub fn lookup(&self, user: u64) -> usize {
        self.index.get(&user).copied().unwrap_or(0)
    }

    /// Number of known users (excluding UNK).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// A learnable embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    dim: usize,
}

impl Embedding {
    /// Registers a `rows x dim` table with small-normal initialization (the
    /// DeepCas setup: 50-dimensional user embeddings).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        rows: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let table = store.register(format!("{name}.table"), init::normal(rows, dim, 0.1, rng));
        Self { table, dim }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a batch of row indices, producing an `indices.len() x dim`
    /// variable with scatter-add gradients into the table.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, indices: Vec<usize>) -> Var {
        let table = tape.param(store, self.table);
        tape.gather(table, indices)
    }

    /// Raw parameter id (for weight inspection).
    pub fn param_id(&self) -> ParamId {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vocab_reserves_unk() {
        let v = Vocab::build([10u64, 20, 10, 30].into_iter(), 0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.table_size(), 4);
        assert_eq!(v.lookup(999), 0, "unknown → UNK row");
        assert_ne!(v.lookup(10), 0);
        assert_ne!(v.lookup(10), v.lookup(20));
    }

    #[test]
    fn vocab_respects_max_size() {
        let v = Vocab::build(0..100u64, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.lookup(99), 0);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut store, "e", 4, 3, &mut rng);
        let mut tape = Tape::new();
        let rows = emb.forward(&mut tape, &store, vec![1, 1, 2]);
        assert_eq!(tape.value(rows).shape(), (3, 3));
        let loss = tape.sum_all(rows);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let g = store.grad(emb.param_id());
        assert_eq!(g.row(1), &[2.0, 2.0, 2.0], "row 1 used twice");
        assert_eq!(g.row(3), &[0.0, 0.0, 0.0], "row 3 unused");
    }
}
