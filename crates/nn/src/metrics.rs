//! Evaluation metrics.
//!
//! All models in this workspace predict the *log-transformed* increment
//! `ln(1 + ΔS)` directly, so the training loss (Eq. 19) and the MSLE metric
//! (Eq. 20) coincide: `MSLE = mean (pred_log − ln(1 + ΔS))²`.

/// Log-transform applied to increment labels: `ln(1 + ΔS)`.
///
/// The `+1` guards `ΔS = 0`; the paper does not state the base, and any
/// monotone choice preserves model ordering.
pub fn log_label(increment: usize) -> f32 {
    ((increment + 1) as f32).ln()
}

/// Inverse of [`log_label`] (clamped at zero).
pub fn unlog(pred_log: f32) -> f32 {
    (pred_log.exp() - 1.0).max(0.0)
}

/// Mean squared log-transformed error over paired predictions (already in
/// log space) and raw increment labels — Eq. 20.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn msle(pred_logs: &[f32], increments: &[usize]) -> f32 {
    assert_eq!(pred_logs.len(), increments.len(), "msle: length mismatch");
    assert!(!pred_logs.is_empty(), "msle: empty inputs");
    pred_logs
        .iter()
        .zip(increments)
        .map(|(&p, &y)| {
            let d = p - log_label(y);
            d * d
        })
        .sum::<f32>()
        / pred_logs.len() as f32
}

/// [`msle`] that returns `None` on empty input instead of panicking.
///
/// The eval/predict CLI path can legitimately reach an empty pairing — e.g.
/// a dataset whose cascades were all quarantined by lenient loading — and
/// must skip metric emission rather than abort.
///
/// # Panics
/// Still panics on a length mismatch (a programming error, not a data
/// condition).
pub fn try_msle(pred_logs: &[f32], increments: &[usize]) -> Option<f32> {
    assert_eq!(pred_logs.len(), increments.len(), "msle: length mismatch");
    (!pred_logs.is_empty()).then(|| msle(pred_logs, increments))
}

/// [`male`] that returns `None` on empty input instead of panicking.
///
/// # Panics
/// Still panics on a length mismatch.
pub fn try_male(pred_logs: &[f32], increments: &[usize]) -> Option<f32> {
    assert_eq!(pred_logs.len(), increments.len(), "male: length mismatch");
    (!pred_logs.is_empty()).then(|| male(pred_logs, increments))
}

/// Mean absolute error in log space (a secondary diagnostic).
pub fn male(pred_logs: &[f32], increments: &[usize]) -> f32 {
    assert_eq!(pred_logs.len(), increments.len(), "male: length mismatch");
    assert!(!pred_logs.is_empty(), "male: empty inputs");
    pred_logs
        .iter()
        .zip(increments)
        .map(|(&p, &y)| (p - log_label(y)).abs())
        .sum::<f32>()
        / pred_logs.len() as f32
}

// ---- next-user ranking metrics (Topo-LSTM's microscopic protocol) ---------

/// 0-based rank of `target` when the candidate scores are sorted
/// descending, with deterministic tie-breaking: ties are resolved by
/// candidate index ascending, so two runs (or two thread counts) that
/// produce bit-identical scores always report the same rank. Comparison is
/// [`f32::total_cmp`] throughout — no float `==`, NaN has a defined order.
///
/// # Panics
/// Panics if `target` is out of bounds.
pub fn rank_of(scores: &[f32], target: usize) -> usize {
    assert!(target < scores.len(), "rank_of: target {target} out of {}", scores.len());
    use std::cmp::Ordering;
    let t = scores[target];
    scores
        .iter()
        .enumerate()
        .filter(|&(i, s)| match s.total_cmp(&t) {
            Ordering::Greater => true,
            Ordering::Equal => i < target,
            Ordering::Less => false,
        })
        .count()
}

/// Hit@k over per-example 0-based ranks of the true next user: the fraction
/// of examples whose target landed in the top `k`.
///
/// # Panics
/// Panics on empty input or `k == 0`.
pub fn hit_at_k(ranks: &[usize], k: usize) -> f32 {
    assert!(!ranks.is_empty(), "hit_at_k: empty inputs");
    assert!(k > 0, "hit_at_k: k must be positive");
    ranks.iter().filter(|&&r| r < k).count() as f32 / ranks.len() as f32
}

/// Mean average precision over per-example ranks. With exactly one relevant
/// item per example (the true next user), average precision reduces to the
/// reciprocal rank `1 / (rank + 1)`, so this is the mean reciprocal rank —
/// the form Topo-LSTM reports as MAP.
///
/// # Panics
/// Panics on empty input.
pub fn mean_average_precision(ranks: &[usize]) -> f32 {
    assert!(!ranks.is_empty(), "mean_average_precision: empty inputs");
    ranks.iter().map(|&r| 1.0 / (r + 1) as f32).sum::<f32>() / ranks.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_label_roundtrip() {
        for inc in [0usize, 1, 5, 100, 10_000] {
            let back = unlog(log_label(inc));
            assert!(
                (back - inc as f32).abs() < inc as f32 * 1e-4 + 1e-3,
                "{inc} → {back}"
            );
        }
    }

    #[test]
    fn perfect_predictions_score_zero() {
        let incs = vec![0usize, 3, 10];
        let preds: Vec<f32> = incs.iter().map(|&i| log_label(i)).collect();
        assert_eq!(msle(&preds, &incs), 0.0);
        assert_eq!(male(&preds, &incs), 0.0);
    }

    #[test]
    fn msle_penalizes_log_distance() {
        // Predicting 0 for ΔS = e−1 gives error 1².
        let incs = vec![(std::f32::consts::E - 1.0).round() as usize];
        let m = msle(&[0.0], &incs);
        assert!((m - log_label(incs[0]).powi(2)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn msle_rejects_mismatched_lengths() {
        let _ = msle(&[0.0, 1.0], &[1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn msle_rejects_empty() {
        let _ = msle(&[], &[]);
    }

    #[test]
    fn try_variants_return_none_on_empty_and_match_otherwise() {
        assert_eq!(try_msle(&[], &[]), None);
        assert_eq!(try_male(&[], &[]), None);
        let incs = vec![0usize, 3, 10];
        let preds = vec![0.5f32, 1.0, 2.0];
        assert_eq!(try_msle(&preds, &incs), Some(msle(&preds, &incs)));
        assert_eq!(try_male(&preds, &incs), Some(male(&preds, &incs)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn try_msle_still_rejects_mismatched_lengths() {
        let _ = try_msle(&[0.0], &[]);
    }

    #[test]
    fn rank_counts_strictly_better_candidates() {
        let scores = [0.1, 0.7, 0.3, 0.05];
        assert_eq!(rank_of(&scores, 1), 0);
        assert_eq!(rank_of(&scores, 2), 1);
        assert_eq!(rank_of(&scores, 0), 2);
        assert_eq!(rank_of(&scores, 3), 3);
    }

    #[test]
    fn ties_break_by_index_ascending() {
        // Identical scores: the lower index wins the earlier rank.
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(rank_of(&scores, 0), 0);
        assert_eq!(rank_of(&scores, 1), 1);
        assert_eq!(rank_of(&scores, 2), 2);
    }

    #[test]
    fn negative_zero_ties_with_positive_zero_deterministically() {
        // total_cmp orders −0.0 < +0.0, so the ordering stays total and
        // reproducible even on signed-zero scores.
        let scores = [0.0f32, -0.0f32];
        assert_eq!(rank_of(&scores, 0), 0);
        assert_eq!(rank_of(&scores, 1), 1);
    }

    #[test]
    fn hit_at_k_counts_top_k_membership() {
        let ranks = [0usize, 4, 9, 20];
        assert_eq!(hit_at_k(&ranks, 1), 0.25);
        assert_eq!(hit_at_k(&ranks, 5), 0.5);
        assert_eq!(hit_at_k(&ranks, 10), 0.75);
        assert_eq!(hit_at_k(&ranks, 100), 1.0);
    }

    #[test]
    fn map_is_mean_reciprocal_rank_for_single_relevant_item() {
        let ranks = [0usize, 1, 3];
        let expect = (1.0 + 0.5 + 0.25) / 3.0;
        assert!((mean_average_precision(&ranks) - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn hit_at_k_rejects_empty() {
        let _ = hit_at_k(&[], 5);
    }
}
