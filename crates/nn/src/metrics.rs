//! Evaluation metrics.
//!
//! All models in this workspace predict the *log-transformed* increment
//! `ln(1 + ΔS)` directly, so the training loss (Eq. 19) and the MSLE metric
//! (Eq. 20) coincide: `MSLE = mean (pred_log − ln(1 + ΔS))²`.

/// Log-transform applied to increment labels: `ln(1 + ΔS)`.
///
/// The `+1` guards `ΔS = 0`; the paper does not state the base, and any
/// monotone choice preserves model ordering.
pub fn log_label(increment: usize) -> f32 {
    ((increment + 1) as f32).ln()
}

/// Inverse of [`log_label`] (clamped at zero).
pub fn unlog(pred_log: f32) -> f32 {
    (pred_log.exp() - 1.0).max(0.0)
}

/// Mean squared log-transformed error over paired predictions (already in
/// log space) and raw increment labels — Eq. 20.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn msle(pred_logs: &[f32], increments: &[usize]) -> f32 {
    assert_eq!(pred_logs.len(), increments.len(), "msle: length mismatch");
    assert!(!pred_logs.is_empty(), "msle: empty inputs");
    pred_logs
        .iter()
        .zip(increments)
        .map(|(&p, &y)| {
            let d = p - log_label(y);
            d * d
        })
        .sum::<f32>()
        / pred_logs.len() as f32
}

/// [`msle`] that returns `None` on empty input instead of panicking.
///
/// The eval/predict CLI path can legitimately reach an empty pairing — e.g.
/// a dataset whose cascades were all quarantined by lenient loading — and
/// must skip metric emission rather than abort.
///
/// # Panics
/// Still panics on a length mismatch (a programming error, not a data
/// condition).
pub fn try_msle(pred_logs: &[f32], increments: &[usize]) -> Option<f32> {
    assert_eq!(pred_logs.len(), increments.len(), "msle: length mismatch");
    (!pred_logs.is_empty()).then(|| msle(pred_logs, increments))
}

/// [`male`] that returns `None` on empty input instead of panicking.
///
/// # Panics
/// Still panics on a length mismatch.
pub fn try_male(pred_logs: &[f32], increments: &[usize]) -> Option<f32> {
    assert_eq!(pred_logs.len(), increments.len(), "male: length mismatch");
    (!pred_logs.is_empty()).then(|| male(pred_logs, increments))
}

/// Mean absolute error in log space (a secondary diagnostic).
pub fn male(pred_logs: &[f32], increments: &[usize]) -> f32 {
    assert_eq!(pred_logs.len(), increments.len(), "male: length mismatch");
    assert!(!pred_logs.is_empty(), "male: empty inputs");
    pred_logs
        .iter()
        .zip(increments)
        .map(|(&p, &y)| (p - log_label(y)).abs())
        .sum::<f32>()
        / pred_logs.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_label_roundtrip() {
        for inc in [0usize, 1, 5, 100, 10_000] {
            let back = unlog(log_label(inc));
            assert!(
                (back - inc as f32).abs() < inc as f32 * 1e-4 + 1e-3,
                "{inc} → {back}"
            );
        }
    }

    #[test]
    fn perfect_predictions_score_zero() {
        let incs = vec![0usize, 3, 10];
        let preds: Vec<f32> = incs.iter().map(|&i| log_label(i)).collect();
        assert_eq!(msle(&preds, &incs), 0.0);
        assert_eq!(male(&preds, &incs), 0.0);
    }

    #[test]
    fn msle_penalizes_log_distance() {
        // Predicting 0 for ΔS = e−1 gives error 1².
        let incs = vec![(std::f32::consts::E - 1.0).round() as usize];
        let m = msle(&[0.0], &incs);
        assert!((m - log_label(incs[0]).powi(2)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn msle_rejects_mismatched_lengths() {
        let _ = msle(&[0.0, 1.0], &[1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn msle_rejects_empty() {
        let _ = msle(&[], &[]);
    }

    #[test]
    fn try_variants_return_none_on_empty_and_match_otherwise() {
        assert_eq!(try_msle(&[], &[]), None);
        assert_eq!(try_male(&[], &[]), None);
        let incs = vec![0usize, 3, 10];
        let preds = vec![0.5f32, 1.0, 2.0];
        assert_eq!(try_msle(&preds, &incs), Some(msle(&preds, &incs)));
        assert_eq!(try_male(&preds, &incs), Some(male(&preds, &incs)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn try_msle_still_rejects_mismatched_lengths() {
        let _ = try_msle(&[0.0], &[]);
    }
}
