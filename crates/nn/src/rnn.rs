//! Dense recurrent cells (LSTM, GRU) used by the path-based models.
//!
//! States are `m x d_h` matrices so a cell can process `m` independent
//! sequences (e.g. all random-walk paths of one cascade) in lock-step.

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;

use crate::init;

/// Parameters of one recurrent gate: input weights, recurrent weights, bias.
#[derive(Debug, Clone)]
struct Gate {
    w: ParamId,
    u: ParamId,
    b: ParamId,
}

impl Gate {
    fn new(store: &mut ParamStore, name: &str, d_in: usize, d_h: usize, rng: &mut StdRng) -> Self {
        Self {
            w: store.register(format!("{name}.w"), init::xavier_uniform(d_in, d_h, rng)),
            u: store.register(format!("{name}.u"), init::xavier_uniform(d_h, d_h, rng)),
            b: store.register(format!("{name}.b"), Matrix::zeros(1, d_h)),
        }
    }

    /// `x·W + h·U + b`.
    fn pre_activation(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let w = tape.param(store, self.w);
        let u = tape.param(store, self.u);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        let hu = tape.matmul(h, u);
        let sum = tape.add(xw, hu);
        tape.add_bias(sum, b)
    }
}

/// A standard LSTM cell (Hochreiter & Schmidhuber 1997).
#[derive(Debug, Clone)]
pub struct LstmCell {
    input: Gate,
    forget: Gate,
    output: Gate,
    cell: Gate,
    d_in: usize,
    d_h: usize,
}

impl LstmCell {
    /// Registers an LSTM cell's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            input: Gate::new(store, &format!("{name}.i"), d_in, d_h, rng),
            forget: Gate::new(store, &format!("{name}.f"), d_in, d_h, rng),
            output: Gate::new(store, &format!("{name}.o"), d_in, d_h, rng),
            cell: Gate::new(store, &format!("{name}.c"), d_in, d_h, rng),
            d_in,
            d_h,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.d_in
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.d_h
    }

    /// Fresh zero `(h, c)` state for `m` parallel sequences.
    pub fn zero_state(&self, tape: &mut Tape, m: usize) -> (Var, Var) {
        let h = tape.constant(Matrix::zeros(m, self.d_h));
        let c = tape.constant(Matrix::zeros(m, self.d_h));
        (h, c)
    }

    /// One timestep: consumes `x` (`m x d_in`) and state, returns the next
    /// `(h, c)`.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        (h, c): (Var, Var),
    ) -> (Var, Var) {
        let i_pre = self.input.pre_activation(tape, store, x, h);
        let i = tape.sigmoid(i_pre);
        let f_pre = self.forget.pre_activation(tape, store, x, h);
        let f = tape.sigmoid(f_pre);
        let o_pre = self.output.pre_activation(tape, store, x, h);
        let o = tape.sigmoid(o_pre);
        let g_pre = self.cell.pre_activation(tape, store, x, h);
        let g = tape.tanh(g_pre);
        let fc = tape.hadamard(f, c);
        let ig = tape.hadamard(i, g);
        let c_next = tape.add(fc, ig);
        let c_act = tape.tanh(c_next);
        let h_next = tape.hadamard(o, c_act);
        (h_next, c_next)
    }

    /// Runs a whole sequence, returning every hidden state.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        inputs: &[Var],
        m: usize,
    ) -> Vec<Var> {
        let mut state = self.zero_state(tape, m);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            state = self.step(tape, store, x, state);
            hs.push(state.0);
        }
        hs
    }
}

/// A standard GRU cell (Cho et al. 2014).
#[derive(Debug, Clone)]
pub struct GruCell {
    update: Gate,
    reset: Gate,
    candidate: Gate,
    d_in: usize,
    d_h: usize,
}

impl GruCell {
    /// Registers a GRU cell's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            update: Gate::new(store, &format!("{name}.z"), d_in, d_h, rng),
            reset: Gate::new(store, &format!("{name}.r"), d_in, d_h, rng),
            candidate: Gate::new(store, &format!("{name}.h"), d_in, d_h, rng),
            d_in,
            d_h,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.d_in
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.d_h
    }

    /// Fresh zero hidden state for `m` parallel sequences.
    pub fn zero_state(&self, tape: &mut Tape, m: usize) -> Var {
        tape.constant(Matrix::zeros(m, self.d_h))
    }

    /// One timestep: `h' = (1 − z)⊙h + z⊙h̃`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let z_pre = self.update.pre_activation(tape, store, x, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = self.reset.pre_activation(tape, store, x, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.hadamard(r, h);
        let cand_pre = self.candidate.pre_activation(tape, store, x, rh);
        let cand = tape.tanh(cand_pre);
        let m = tape.value(h).rows();
        let ones = tape.constant(Matrix::full(m, self.d_h, 1.0));
        let one_minus_z = tape.sub(ones, z);
        let keep = tape.hadamard(one_minus_z, h);
        let update = tape.hadamard(z, cand);
        tape.add(keep, update)
    }

    /// Runs a whole sequence, returning every hidden state.
    pub fn run(&self, tape: &mut Tape, store: &ParamStore, inputs: &[Var], m: usize) -> Vec<Var> {
        let mut h = self.zero_state(tape, m);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            h = self.step(tape, store, x, h);
            hs.push(h);
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_autograd::{Adam, Optimizer};
    use rand::SeedableRng;

    fn seq_to_inputs(tape: &mut Tape, seq: &[f32]) -> Vec<Var> {
        seq.iter()
            .map(|&x| tape.constant(Matrix::from_vec(1, 1, vec![x])))
            .collect()
    }

    #[test]
    fn lstm_state_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(2, 3));
        let state = cell.zero_state(&mut tape, 2);
        let (h, c) = cell.step(&mut tape, &store, x, state);
        assert_eq!(tape.value(h).shape(), (2, 4));
        assert_eq!(tape.value(c).shape(), (2, 4));
    }

    #[test]
    fn gru_zero_input_keeps_values_bounded() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = GruCell::new(&mut store, "gru", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let inputs: Vec<Var> = (0..20).map(|_| tape.constant(Matrix::zeros(1, 2))).collect();
        let hs = cell.run(&mut tape, &store, &inputs, 1);
        let last = tape.value(*hs.last().unwrap());
        assert!(last.max_abs() <= 1.0 + 1e-5, "GRU state must stay in [-1,1]");
    }

    /// Trains a tiny LSTM to output the running sum of a ±1 sequence —
    /// verifies that gradients flow through time correctly.
    #[test]
    fn lstm_learns_running_sum_sign() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(&mut store, "lstm", 1, 6, &mut rng);
        let head = crate::Linear::new(&mut store, "head", 6, 1, &mut rng);
        let mut opt = Adam::with_lr(0.02);

        let sequences: Vec<(Vec<f32>, f32)> = vec![
            (vec![1.0, 1.0, 1.0], 3.0),
            (vec![-1.0, -1.0, -1.0], -3.0),
            (vec![1.0, -1.0, 1.0], 1.0),
            (vec![-1.0, 1.0, -1.0], -1.0),
            (vec![1.0, 1.0, -1.0], 1.0),
            (vec![-1.0, -1.0, 1.0], -1.0),
        ];
        for _ in 0..250 {
            store.zero_grads();
            for (seq, target) in &sequences {
                let mut tape = Tape::new();
                let inputs = seq_to_inputs(&mut tape, seq);
                let hs = cell.run(&mut tape, &store, &inputs, 1);
                let pred = head.forward(&mut tape, &store, *hs.last().unwrap());
                let loss = tape.squared_error(pred, *target);
                tape.backward(loss);
                tape.accumulate_param_grads(&mut store);
            }
            store.scale_grads(1.0 / sequences.len() as f32);
            opt.step(&mut store);
        }
        for (seq, target) in &sequences {
            let mut tape = Tape::new();
            let inputs = seq_to_inputs(&mut tape, seq);
            let hs = cell.run(&mut tape, &store, &inputs, 1);
            let pred = head.forward(&mut tape, &store, *hs.last().unwrap());
            let p = tape.scalar(pred);
            assert!(
                (p - target).abs() < 0.6,
                "sequence {seq:?}: predicted {p}, wanted {target}"
            );
        }
    }

    #[test]
    fn gru_distinguishes_order() {
        // The sequences [1,0] and [0,1] must map to different states.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(&mut store, "gru", 1, 4, &mut rng);
        let run = |seq: &[f32], store: &ParamStore| {
            let mut tape = Tape::new();
            let inputs = seq_to_inputs(&mut tape, seq);
            let hs = cell.run(&mut tape, store, &inputs, 1);
            tape.value(*hs.last().unwrap()).clone()
        };
        let a = run(&[1.0, 0.0], &store);
        let b = run(&[0.0, 1.0], &store);
        assert!(a.sub(&b).max_abs() > 1e-4, "order must matter");
    }
}
