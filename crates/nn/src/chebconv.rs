//! Recurrent graph-convolutional cells — the heart of CasCN (Eq. 12–14).
//!
//! Every dense multiplication of a standard LSTM/GRU is replaced by a
//! Chebyshev spectral graph convolution over the (scaled) CasLaplacian:
//!
//! `W ∗G X = Σ_{k=0..K} T_k(Δ̃_c) · X · W_k`
//!
//! where the `T_k(Δ̃_c)` bases are computed once per cascade by
//! `cascn_graph::laplacian::chebyshev_bases` and entered on the tape as
//! constants. The LSTM variant includes the paper's peephole terms
//! `V ⊙ c_{t-1}` (Eq. 12); we parameterize each peephole as a `1 x d_h`
//! vector broadcast over nodes, so the parameter count stays independent of
//! the padded cascade size.

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;

use crate::init;

/// One graph-convolutional gate: `K+1` input filters, `K+1` recurrent
/// filters, and a bias.
#[derive(Debug, Clone)]
struct ConvGate {
    w: Vec<ParamId>,
    u: Vec<ParamId>,
    b: ParamId,
}

impl ConvGate {
    fn new(
        store: &mut ParamStore,
        name: &str,
        k: usize,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = (0..=k)
            .map(|i| store.register(format!("{name}.w{i}"), init::xavier_uniform(d_in, d_h, rng)))
            .collect();
        let u = (0..=k)
            .map(|i| store.register(format!("{name}.u{i}"), init::xavier_uniform(d_h, d_h, rng)))
            .collect();
        let b = store.register(format!("{name}.b"), Matrix::zeros(1, d_h));
        Self { w, u, b }
    }

    /// `Σ_k conv_x[k]·W_k + Σ_k conv_h[k]·U_k + b` where `conv_x[k] =
    /// T_k(Δ̃)·x` and `conv_h[k] = T_k(Δ̃)·h` are shared across gates.
    fn pre_activation(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        conv_x: &[Var],
        conv_h: &[Var],
    ) -> Var {
        debug_assert_eq!(conv_x.len(), self.w.len());
        debug_assert_eq!(conv_h.len(), self.u.len());
        let mut acc: Option<Var> = None;
        for (cx, &wid) in conv_x.iter().zip(&self.w) {
            let w = tape.param(store, wid);
            let term = tape.matmul(*cx, w);
            acc = Some(match acc {
                Some(a) => tape.add(a, term),
                None => term,
            });
        }
        for (ch, &uid) in conv_h.iter().zip(&self.u) {
            let u = tape.param(store, uid);
            let term = tape.matmul(*ch, u);
            acc = Some(match acc {
                Some(a) => tape.add(a, term),
                None => term,
            });
        }
        let b = tape.param(store, self.b);
        // lint: allow(no-panic) — the weight bank has K+1 ≥ 1 entries by construction
        let pre = acc.expect("at least one Chebyshev order");
        tape.add_bias(pre, b)
    }
}

/// Enters the per-cascade Chebyshev bases `T_k(Δ̃_c)` on a tape as constants.
pub fn bases_to_vars(tape: &mut Tape, bases: &[Matrix]) -> Vec<Var> {
    bases.iter().map(|b| tape.constant(b.clone())).collect()
}

/// Broadcasts a `1 x d` parameter row over `n` node rows.
fn tile_rows(tape: &mut Tape, row: Var, n: usize) -> Var {
    let ones = tape.constant(Matrix::full(n, 1, 1.0));
    tape.matmul(ones, row)
}

/// The CasCN graph-convolutional LSTM cell of Eq. 12–14 (with peepholes).
#[derive(Debug, Clone)]
pub struct ChebConvLstmCell {
    input: ConvGate,
    forget: ConvGate,
    output: ConvGate,
    cell: ConvGate,
    peep_i: ParamId,
    peep_f: ParamId,
    peep_o: ParamId,
    k: usize,
    d_in: usize,
    d_h: usize,
}

impl ChebConvLstmCell {
    /// Registers the cell's parameters for Chebyshev order `k`, input
    /// feature dimension `d_in` and hidden size `d_h`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        k: usize,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            input: ConvGate::new(store, &format!("{name}.i"), k, d_in, d_h, rng),
            forget: ConvGate::new(store, &format!("{name}.f"), k, d_in, d_h, rng),
            output: ConvGate::new(store, &format!("{name}.o"), k, d_in, d_h, rng),
            cell: ConvGate::new(store, &format!("{name}.c"), k, d_in, d_h, rng),
            peep_i: store.register(format!("{name}.vi"), Matrix::zeros(1, d_h)),
            peep_f: store.register(format!("{name}.vf"), Matrix::zeros(1, d_h)),
            peep_o: store.register(format!("{name}.vo"), Matrix::zeros(1, d_h)),
            k,
            d_in,
            d_h,
        }
    }

    /// Chebyshev order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.d_in
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.d_h
    }

    /// Fresh zero `(h, c)` state over `n` nodes.
    pub fn zero_state(&self, tape: &mut Tape, n: usize) -> (Var, Var) {
        let h = tape.constant(Matrix::zeros(n, self.d_h));
        let c = tape.constant(Matrix::zeros(n, self.d_h));
        (h, c)
    }

    /// One timestep over a cascade snapshot.
    ///
    /// `bases` are the tape-constant `T_k(Δ̃_c)` matrices (length `K+1`),
    /// `x` is the `n x d_in` snapshot signal, and the state matrices are
    /// `n x d_h`.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        bases: &[Var],
        x: Var,
        (h, c): (Var, Var),
    ) -> (Var, Var) {
        assert_eq!(bases.len(), self.k + 1, "expected K+1 Chebyshev bases");
        let n = tape.value(x).rows();
        let conv_x: Vec<Var> = bases.iter().map(|&b| tape.matmul(b, x)).collect();
        let conv_h: Vec<Var> = bases.iter().map(|&b| tape.matmul(b, h)).collect();

        let peep = |tape: &mut Tape, id: ParamId, cell_state: Var| {
            let v = tape.param(store, id);
            let tiled = tile_rows(tape, v, n);
            tape.hadamard(tiled, cell_state)
        };

        let i_pre = self.input.pre_activation(tape, store, &conv_x, &conv_h);
        let i_peep = peep(tape, self.peep_i, c);
        let i_sum = tape.add(i_pre, i_peep);
        let i = tape.sigmoid(i_sum);

        let f_pre = self.forget.pre_activation(tape, store, &conv_x, &conv_h);
        let f_peep = peep(tape, self.peep_f, c);
        let f_sum = tape.add(f_pre, f_peep);
        let f = tape.sigmoid(f_sum);

        let g_pre = self.cell.pre_activation(tape, store, &conv_x, &conv_h);
        let g = tape.tanh(g_pre);

        let fc = tape.hadamard(f, c);
        let ig = tape.hadamard(i, g);
        let c_next = tape.add(fc, ig);

        let o_pre = self.output.pre_activation(tape, store, &conv_x, &conv_h);
        let o_peep = peep(tape, self.peep_o, c_next);
        let o_sum = tape.add(o_pre, o_peep);
        let o = tape.sigmoid(o_sum);

        let c_act = tape.tanh(c_next);
        let h_next = tape.hadamard(o, c_act);
        (h_next, c_next)
    }

    /// Runs a snapshot sequence, returning every hidden state.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        bases: &[Var],
        inputs: &[Var],
        n: usize,
    ) -> Vec<Var> {
        let mut state = self.zero_state(tape, n);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            state = self.step(tape, store, bases, x, state);
            hs.push(state.0);
        }
        hs
    }
}

/// The GRU variant of the CasCN cell (the paper's `CasCN-GRU` ablation):
/// identical graph convolutions, gating without a separate memory cell.
#[derive(Debug, Clone)]
pub struct ChebConvGruCell {
    update: ConvGate,
    reset: ConvGate,
    candidate: ConvGate,
    k: usize,
    d_in: usize,
    d_h: usize,
}

impl ChebConvGruCell {
    /// Registers the cell's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        k: usize,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            update: ConvGate::new(store, &format!("{name}.z"), k, d_in, d_h, rng),
            reset: ConvGate::new(store, &format!("{name}.r"), k, d_in, d_h, rng),
            candidate: ConvGate::new(store, &format!("{name}.h"), k, d_in, d_h, rng),
            k,
            d_in,
            d_h,
        }
    }

    /// Chebyshev order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.d_in
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.d_h
    }

    /// Fresh zero hidden state over `n` nodes.
    pub fn zero_state(&self, tape: &mut Tape, n: usize) -> Var {
        tape.constant(Matrix::zeros(n, self.d_h))
    }

    /// One timestep over a cascade snapshot.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        bases: &[Var],
        x: Var,
        h: Var,
    ) -> Var {
        assert_eq!(bases.len(), self.k + 1, "expected K+1 Chebyshev bases");
        let conv_x: Vec<Var> = bases.iter().map(|&b| tape.matmul(b, x)).collect();
        let conv_h: Vec<Var> = bases.iter().map(|&b| tape.matmul(b, h)).collect();

        let z_pre = self.update.pre_activation(tape, store, &conv_x, &conv_h);
        let z = tape.sigmoid(z_pre);
        let r_pre = self.reset.pre_activation(tape, store, &conv_x, &conv_h);
        let r = tape.sigmoid(r_pre);

        let rh = tape.hadamard(r, h);
        let conv_rh: Vec<Var> = bases.iter().map(|&b| tape.matmul(b, rh)).collect();
        let cand_pre = self
            .candidate
            .pre_activation(tape, store, &conv_x, &conv_rh);
        let cand = tape.tanh(cand_pre);

        let (n, d) = tape.value(h).shape();
        let ones = tape.constant(Matrix::full(n, d, 1.0));
        let one_minus_z = tape.sub(ones, z);
        let keep = tape.hadamard(one_minus_z, h);
        let update = tape.hadamard(z, cand);
        tape.add(keep, update)
    }

    /// Runs a snapshot sequence, returning every hidden state.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        bases: &[Var],
        inputs: &[Var],
        n: usize,
    ) -> Vec<Var> {
        let mut h = self.zero_state(tape, n);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            h = self.step(tape, store, bases, x, h);
            hs.push(h);
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_graph::{laplacian, DiGraph};
    use rand::SeedableRng;

    fn fig1_bases(k: usize) -> Vec<Matrix> {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        let lap = laplacian::cas_laplacian(&g, 0.85);
        let lmax = laplacian::largest_eigenvalue(&lap);
        let scaled = laplacian::scale_laplacian(&lap, lmax);
        laplacian::chebyshev_bases(&scaled, k)
    }

    #[test]
    fn lstm_step_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 6, 4, &mut rng);
        let mut tape = Tape::new();
        let bases = bases_to_vars(&mut tape, &fig1_bases(2));
        let x = tape.constant(Matrix::eye(6));
        let state = cell.zero_state(&mut tape, 6);
        let (h, c) = cell.step(&mut tape, &store, &bases, x, state);
        assert_eq!(tape.value(h).shape(), (6, 4));
        assert_eq!(tape.value(c).shape(), (6, 4));
    }

    #[test]
    #[should_panic(expected = "K+1 Chebyshev bases")]
    fn lstm_step_checks_basis_count() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 6, 4, &mut rng);
        let mut tape = Tape::new();
        let bases = bases_to_vars(&mut tape, &fig1_bases(1)); // wrong: K=1
        let x = tape.constant(Matrix::eye(6));
        let state = cell.zero_state(&mut tape, 6);
        let _ = cell.step(&mut tape, &store, &bases, x, state);
    }

    #[test]
    fn gru_run_produces_one_state_per_step() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = ChebConvGruCell::new(&mut store, "cg", 1, 6, 3, &mut rng);
        let mut tape = Tape::new();
        let bases = bases_to_vars(&mut tape, &fig1_bases(1));
        let inputs: Vec<Var> = (0..4).map(|_| tape.constant(Matrix::eye(6))).collect();
        let hs = cell.run(&mut tape, &store, &bases, &inputs, 6);
        assert_eq!(hs.len(), 4);
        assert!(tape.value(hs[3]).all_finite());
    }

    #[test]
    fn gradients_flow_to_all_gate_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 1, 6, 3, &mut rng);
        let mut tape = Tape::new();
        let bases = bases_to_vars(&mut tape, &fig1_bases(1));
        let inputs: Vec<Var> = (0..3).map(|_| {
            tape.constant(Matrix::from_fn(6, 6, |r, c| ((r + c) % 3) as f32 * 0.2))
        }).collect();
        let hs = cell.run(&mut tape, &store, &bases, &inputs, 6);
        let pooled = tape.sum_rows(*hs.last().unwrap());
        let sq = tape.sqr(pooled);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // Every W/U/bias of every gate must receive a nonzero gradient
        // (peepholes start at zero so their gradient may vanish for c=0 at
        // t=0, but not after 3 steps).
        let mut zero_grads = Vec::new();
        for id in store.ids().collect::<Vec<_>>() {
            if store.grad(id).max_abs() == 0.0 {
                zero_grads.push(store.name(id).to_string());
            }
        }
        assert!(
            zero_grads.is_empty(),
            "parameters without gradient: {zero_grads:?}"
        );
    }

    #[test]
    fn directionality_changes_output() {
        // Reversing the cascade's edges must change the cell output —
        // the motivation for the CasLaplacian over the undirected one.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 4, 3, &mut rng);

        let run = |edges: &[(usize, usize)], store: &ParamStore, cell: &ChebConvLstmCell| {
            let mut g = DiGraph::new(4);
            for &(u, v) in edges {
                g.add_edge(u, v, 1.0);
            }
            let lap = laplacian::cas_laplacian(&g, 0.85);
            let scaled = laplacian::scale_laplacian(&lap, laplacian::largest_eigenvalue(&lap));
            let bases_m = laplacian::chebyshev_bases(&scaled, 2);
            let mut tape = Tape::new();
            let bases = bases_to_vars(&mut tape, &bases_m);
            let x = tape.constant(Matrix::eye(4));
            let state = cell.zero_state(&mut tape, 4);
            let (h, _) = cell.step(&mut tape, store, &bases, x, state);
            tape.value(h).clone()
        };

        let fwd = run(&[(0, 1), (1, 2), (2, 3)], &store, &cell);
        let rev = run(&[(3, 2), (2, 1), (1, 0)], &store, &cell);
        assert!(
            fwd.sub(&rev).max_abs() > 1e-5,
            "direction must influence the convolution"
        );
    }
}
