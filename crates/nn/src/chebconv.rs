//! Recurrent graph-convolutional cells — the heart of CasCN (Eq. 12–14).
//!
//! Every dense multiplication of a standard LSTM/GRU is replaced by a
//! Chebyshev spectral graph convolution over the (scaled) CasLaplacian:
//!
//! `W ∗G X = Σ_{k=0..K} T_k(Δ̃_c) · X · W_k`
//!
//! where the convolution operands come in one of two forms
//! ([`ChebOperands`]):
//!
//! * **Sparse** (the default path): the scaled Laplacian `Δ̃_c` as a
//!   [`SparseOp`], with the Chebyshev recurrence carried on `n×d` feature
//!   blocks — `T_k·X = 2·Δ̃·(T_{k-1}·X) − T_{k-2}·X` — so no dense `n×n`
//!   basis is ever materialized and each gate costs `O(K·nnz·d)`;
//! * **Dense** (the legacy/gradcheck path): the materialized `T_k(Δ̃_c)`
//!   bases entered on the tape as constants and multiplied per order.
//!
//! The LSTM variant includes the paper's peephole terms `V ⊙ c_{t-1}`
//! (Eq. 12); we parameterize each peephole as a `1 x d_h` vector broadcast
//! over nodes, so the parameter count stays independent of the padded
//! cascade size.

use std::sync::Arc;

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_graph::SpectralBasis;
use cascn_tensor::{Matrix, SparseOp};
use rand::rngs::StdRng;

use crate::init;

/// One graph-convolutional gate: `K+1` input filters, `K+1` recurrent
/// filters, and a bias.
#[derive(Debug, Clone)]
struct ConvGate {
    w: Vec<ParamId>,
    u: Vec<ParamId>,
    b: ParamId,
}

impl ConvGate {
    fn new(
        store: &mut ParamStore,
        name: &str,
        k: usize,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = (0..=k)
            .map(|i| store.register(format!("{name}.w{i}"), init::xavier_uniform(d_in, d_h, rng)))
            .collect();
        let u = (0..=k)
            .map(|i| store.register(format!("{name}.u{i}"), init::xavier_uniform(d_h, d_h, rng)))
            .collect();
        let b = store.register(format!("{name}.b"), Matrix::zeros(1, d_h));
        Self { w, u, b }
    }

    /// `Σ_k conv_x[k]·W_k + Σ_k conv_h[k]·U_k + b` where `conv_x[k] =
    /// T_k(Δ̃)·x` and `conv_h[k] = T_k(Δ̃)·h` are shared across gates.
    fn pre_activation(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        conv_x: &[Var],
        conv_h: &[Var],
    ) -> Var {
        debug_assert_eq!(conv_x.len(), self.w.len());
        debug_assert_eq!(conv_h.len(), self.u.len());
        let mut acc: Option<Var> = None;
        for (cx, &wid) in conv_x.iter().zip(&self.w) {
            let w = tape.param(store, wid);
            let term = tape.matmul(*cx, w);
            acc = Some(match acc {
                Some(a) => tape.add(a, term),
                None => term,
            });
        }
        for (ch, &uid) in conv_h.iter().zip(&self.u) {
            let u = tape.param(store, uid);
            let term = tape.matmul(*ch, u);
            acc = Some(match acc {
                Some(a) => tape.add(a, term),
                None => term,
            });
        }
        let b = tape.param(store, self.b);
        // lint: allow(no-panic) — the weight bank has K+1 ≥ 1 entries by construction
        let pre = acc.expect("at least one Chebyshev order");
        tape.add_bias(pre, b)
    }
}

/// Enters the per-cascade Chebyshev bases `T_k(Δ̃_c)` on a tape as constants.
pub fn bases_to_vars(tape: &mut Tape, bases: &[Matrix]) -> Vec<Var> {
    bases.iter().map(|b| tape.constant(b.clone())).collect()
}

/// The per-cascade spectral operand a ChebConv cell convolves against —
/// either the sparse scaled Laplacian (operator form) or the materialized
/// dense bases (legacy form). Both produce the same `K+1`-long convolution
/// stack `[T_0·X, …, T_K·X]`; they differ only in cost and float rounding.
#[derive(Debug, Clone)]
pub enum ChebOperands {
    /// Materialized `T_k(Δ̃_c)` tape constants, length `K+1` — each stack
    /// entry is one dense `n×n · n×d` product. Kept for gradient checking
    /// and the `ChebKernel::Dense` compatibility mode.
    Dense(Vec<Var>),
    /// The scaled Laplacian itself; the stack is built by the feature-block
    /// recurrence `T_k·X = 2·Δ̃·(T_{k-1}·X) − T_{k-2}·X` with `K` sparse
    /// applications, never touching an `n×n` intermediate.
    Sparse {
        /// `Δ̃_c` shared across every application this cell records.
        op: Arc<SparseOp>,
        /// Chebyshev order `K`.
        k: usize,
    },
}

impl ChebOperands {
    /// Dense operands from materialized basis matrices.
    pub fn dense(tape: &mut Tape, bases: &[Matrix]) -> Self {
        Self::Dense(bases_to_vars(tape, bases))
    }

    /// Sparse operator-form operands from a spectral handle.
    pub fn sparse(basis: &SpectralBasis) -> Self {
        Self::Sparse {
            op: Arc::clone(&basis.op),
            k: basis.k,
        }
    }

    /// Number of stack entries this operand produces (`K + 1`).
    pub fn len(&self) -> usize {
        match self {
            Self::Dense(bases) => bases.len(),
            Self::Sparse { k, .. } => k + 1,
        }
    }

    /// Whether the operand produces an empty stack (never true for a
    /// well-formed operand — `K + 1 ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the convolution stack `[T_0·X, …, T_K·X]` for one signal.
    ///
    /// Sparse operands start from `T_0·X = X` itself (no identity product)
    /// and apply `Δ̃` `K` times; dense operands multiply each materialized
    /// basis. Gradients flow through `x` in both forms.
    pub fn conv_stack(&self, tape: &mut Tape, x: Var) -> Vec<Var> {
        match self {
            Self::Dense(bases) => bases.iter().map(|&b| tape.matmul(b, x)).collect(),
            Self::Sparse { op, k } => {
                let mut stack = Vec::with_capacity(k + 1);
                stack.push(x);
                if *k >= 1 {
                    stack.push(tape.sparse_apply(Arc::clone(op), x));
                }
                for i in 2..=*k {
                    let applied = tape.sparse_apply(Arc::clone(op), stack[i - 1]);
                    let doubled = tape.scale(applied, 2.0);
                    stack.push(tape.sub(doubled, stack[i - 2]));
                }
                stack
            }
        }
    }
}

/// Broadcasts a `1 x d` parameter row over `n` node rows.
fn tile_rows(tape: &mut Tape, row: Var, n: usize) -> Var {
    let ones = tape.constant(Matrix::full(n, 1, 1.0));
    tape.matmul(ones, row)
}

/// The CasCN graph-convolutional LSTM cell of Eq. 12–14 (with peepholes).
#[derive(Debug, Clone)]
pub struct ChebConvLstmCell {
    input: ConvGate,
    forget: ConvGate,
    output: ConvGate,
    cell: ConvGate,
    peep_i: ParamId,
    peep_f: ParamId,
    peep_o: ParamId,
    k: usize,
    d_in: usize,
    d_h: usize,
}

impl ChebConvLstmCell {
    /// Registers the cell's parameters for Chebyshev order `k`, input
    /// feature dimension `d_in` and hidden size `d_h`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        k: usize,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            input: ConvGate::new(store, &format!("{name}.i"), k, d_in, d_h, rng),
            forget: ConvGate::new(store, &format!("{name}.f"), k, d_in, d_h, rng),
            output: ConvGate::new(store, &format!("{name}.o"), k, d_in, d_h, rng),
            cell: ConvGate::new(store, &format!("{name}.c"), k, d_in, d_h, rng),
            peep_i: store.register(format!("{name}.vi"), Matrix::zeros(1, d_h)),
            peep_f: store.register(format!("{name}.vf"), Matrix::zeros(1, d_h)),
            peep_o: store.register(format!("{name}.vo"), Matrix::zeros(1, d_h)),
            k,
            d_in,
            d_h,
        }
    }

    /// Chebyshev order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.d_in
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.d_h
    }

    /// Fresh zero `(h, c)` state over `n` nodes.
    pub fn zero_state(&self, tape: &mut Tape, n: usize) -> (Var, Var) {
        let h = tape.constant(Matrix::zeros(n, self.d_h));
        let c = tape.constant(Matrix::zeros(n, self.d_h));
        (h, c)
    }

    /// One timestep over a cascade snapshot.
    ///
    /// `operands` carry the cascade's spectral operator (sparse or dense,
    /// producing a `K+1` convolution stack), `x` is the `n x d_in` snapshot
    /// signal, and the state matrices are `n x d_h`.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        operands: &ChebOperands,
        x: Var,
        (h, c): (Var, Var),
    ) -> (Var, Var) {
        assert_eq!(operands.len(), self.k + 1, "expected K+1 Chebyshev bases");
        let n = tape.value(x).rows();
        let conv_x = operands.conv_stack(tape, x);
        let conv_h = operands.conv_stack(tape, h);

        let peep = |tape: &mut Tape, id: ParamId, cell_state: Var| {
            let v = tape.param(store, id);
            let tiled = tile_rows(tape, v, n);
            tape.hadamard(tiled, cell_state)
        };

        let i_pre = self.input.pre_activation(tape, store, &conv_x, &conv_h);
        let i_peep = peep(tape, self.peep_i, c);
        let i_sum = tape.add(i_pre, i_peep);
        let i = tape.sigmoid(i_sum);

        let f_pre = self.forget.pre_activation(tape, store, &conv_x, &conv_h);
        let f_peep = peep(tape, self.peep_f, c);
        let f_sum = tape.add(f_pre, f_peep);
        let f = tape.sigmoid(f_sum);

        let g_pre = self.cell.pre_activation(tape, store, &conv_x, &conv_h);
        let g = tape.tanh(g_pre);

        let fc = tape.hadamard(f, c);
        let ig = tape.hadamard(i, g);
        let c_next = tape.add(fc, ig);

        let o_pre = self.output.pre_activation(tape, store, &conv_x, &conv_h);
        let o_peep = peep(tape, self.peep_o, c_next);
        let o_sum = tape.add(o_pre, o_peep);
        let o = tape.sigmoid(o_sum);

        let c_act = tape.tanh(c_next);
        let h_next = tape.hadamard(o, c_act);
        (h_next, c_next)
    }

    /// Runs a snapshot sequence, returning every hidden state.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        operands: &ChebOperands,
        inputs: &[Var],
        n: usize,
    ) -> Vec<Var> {
        let mut state = self.zero_state(tape, n);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            state = self.step(tape, store, operands, x, state);
            hs.push(state.0);
        }
        hs
    }
}

/// The GRU variant of the CasCN cell (the paper's `CasCN-GRU` ablation):
/// identical graph convolutions, gating without a separate memory cell.
#[derive(Debug, Clone)]
pub struct ChebConvGruCell {
    update: ConvGate,
    reset: ConvGate,
    candidate: ConvGate,
    k: usize,
    d_in: usize,
    d_h: usize,
}

impl ChebConvGruCell {
    /// Registers the cell's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        k: usize,
        d_in: usize,
        d_h: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            update: ConvGate::new(store, &format!("{name}.z"), k, d_in, d_h, rng),
            reset: ConvGate::new(store, &format!("{name}.r"), k, d_in, d_h, rng),
            candidate: ConvGate::new(store, &format!("{name}.h"), k, d_in, d_h, rng),
            k,
            d_in,
            d_h,
        }
    }

    /// Chebyshev order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.d_in
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.d_h
    }

    /// Fresh zero hidden state over `n` nodes.
    pub fn zero_state(&self, tape: &mut Tape, n: usize) -> Var {
        tape.constant(Matrix::zeros(n, self.d_h))
    }

    /// One timestep over a cascade snapshot.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        operands: &ChebOperands,
        x: Var,
        h: Var,
    ) -> Var {
        assert_eq!(operands.len(), self.k + 1, "expected K+1 Chebyshev bases");
        let conv_x = operands.conv_stack(tape, x);
        let conv_h = operands.conv_stack(tape, h);

        let z_pre = self.update.pre_activation(tape, store, &conv_x, &conv_h);
        let z = tape.sigmoid(z_pre);
        let r_pre = self.reset.pre_activation(tape, store, &conv_x, &conv_h);
        let r = tape.sigmoid(r_pre);

        let rh = tape.hadamard(r, h);
        let conv_rh = operands.conv_stack(tape, rh);
        let cand_pre = self
            .candidate
            .pre_activation(tape, store, &conv_x, &conv_rh);
        let cand = tape.tanh(cand_pre);

        let (n, d) = tape.value(h).shape();
        let ones = tape.constant(Matrix::full(n, d, 1.0));
        let one_minus_z = tape.sub(ones, z);
        let keep = tape.hadamard(one_minus_z, h);
        let update = tape.hadamard(z, cand);
        tape.add(keep, update)
    }

    /// Runs a snapshot sequence, returning every hidden state.
    pub fn run(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        operands: &ChebOperands,
        inputs: &[Var],
        n: usize,
    ) -> Vec<Var> {
        let mut h = self.zero_state(tape, n);
        let mut hs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            h = self.step(tape, store, operands, x, h);
            hs.push(h);
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_graph::{laplacian, DiGraph};
    use rand::SeedableRng;

    fn fig1_bases(k: usize) -> Vec<Matrix> {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        let lap = laplacian::cas_laplacian(&g, 0.85);
        let lmax = laplacian::largest_eigenvalue(&lap);
        let scaled = laplacian::scale_laplacian(&lap, lmax);
        laplacian::chebyshev_bases(&scaled, k)
    }

    #[test]
    fn lstm_step_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 6, 4, &mut rng);
        let mut tape = Tape::new();
        let operands = ChebOperands::dense(&mut tape, &fig1_bases(2));
        let x = tape.constant(Matrix::eye(6));
        let state = cell.zero_state(&mut tape, 6);
        let (h, c) = cell.step(&mut tape, &store, &operands, x, state);
        assert_eq!(tape.value(h).shape(), (6, 4));
        assert_eq!(tape.value(c).shape(), (6, 4));
    }

    #[test]
    #[should_panic(expected = "K+1 Chebyshev bases")]
    fn lstm_step_checks_basis_count() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 6, 4, &mut rng);
        let mut tape = Tape::new();
        let operands = ChebOperands::dense(&mut tape, &fig1_bases(1)); // wrong: K=1
        let x = tape.constant(Matrix::eye(6));
        let state = cell.zero_state(&mut tape, 6);
        let _ = cell.step(&mut tape, &store, &operands, x, state);
    }

    #[test]
    fn gru_run_produces_one_state_per_step() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = ChebConvGruCell::new(&mut store, "cg", 1, 6, 3, &mut rng);
        let mut tape = Tape::new();
        let operands = ChebOperands::dense(&mut tape, &fig1_bases(1));
        let inputs: Vec<Var> = (0..4).map(|_| tape.constant(Matrix::eye(6))).collect();
        let hs = cell.run(&mut tape, &store, &operands, &inputs, 6);
        assert_eq!(hs.len(), 4);
        assert!(tape.value(hs[3]).all_finite());
    }

    #[test]
    fn gradients_flow_to_all_gate_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 1, 6, 3, &mut rng);
        let mut tape = Tape::new();
        let operands = ChebOperands::dense(&mut tape, &fig1_bases(1));
        let inputs: Vec<Var> = (0..3).map(|_| {
            tape.constant(Matrix::from_fn(6, 6, |r, c| ((r + c) % 3) as f32 * 0.2))
        }).collect();
        let hs = cell.run(&mut tape, &store, &operands, &inputs, 6);
        let pooled = tape.sum_rows(*hs.last().unwrap());
        let sq = tape.sqr(pooled);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // Every W/U/bias of every gate must receive a nonzero gradient
        // (peepholes start at zero so their gradient may vanish for c=0 at
        // t=0, but not after 3 steps).
        let mut zero_grads = Vec::new();
        for id in store.ids().collect::<Vec<_>>() {
            if store.grad(id).max_abs() == 0.0 {
                zero_grads.push(store.name(id).to_string());
            }
        }
        assert!(
            zero_grads.is_empty(),
            "parameters without gradient: {zero_grads:?}"
        );
    }

    #[test]
    fn directionality_changes_output() {
        // Reversing the cascade's edges must change the cell output —
        // the motivation for the CasLaplacian over the undirected one.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 4, 3, &mut rng);

        let run = |edges: &[(usize, usize)], store: &ParamStore, cell: &ChebConvLstmCell| {
            let mut g = DiGraph::new(4);
            for &(u, v) in edges {
                g.add_edge(u, v, 1.0);
            }
            let lap = laplacian::cas_laplacian(&g, 0.85);
            let scaled = laplacian::scale_laplacian(&lap, laplacian::largest_eigenvalue(&lap));
            let bases_m = laplacian::chebyshev_bases(&scaled, 2);
            let mut tape = Tape::new();
            let operands = ChebOperands::dense(&mut tape, &bases_m);
            let x = tape.constant(Matrix::eye(4));
            let state = cell.zero_state(&mut tape, 4);
            let (h, _) = cell.step(&mut tape, store, &operands, x, state);
            tape.value(h).clone()
        };

        let fwd = run(&[(0, 1), (1, 2), (2, 3)], &store, &cell);
        let rev = run(&[(3, 2), (2, 1), (1, 0)], &store, &cell);
        assert!(
            fwd.sub(&rev).max_abs() > 1e-5,
            "direction must influence the convolution"
        );
    }

    /// The fig. 1 spectral handle whose operator path matches the dense
    /// bases exactly in structure (same Laplacian, same λ_max estimate).
    fn fig1_basis(k: usize) -> SpectralBasis {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        let lap = laplacian::cas_laplacian(&g, 0.85);
        SpectralBasis::from_laplacian(&lap, None, k)
    }

    #[test]
    fn sparse_conv_stack_matches_dense_within_tolerance() {
        let k = 3;
        let basis = fig1_basis(k);
        let dense_bases = basis.materialize();
        let x_m = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f32) * 0.13 - 1.2);

        let mut tape = Tape::new();
        let dense = ChebOperands::dense(&mut tape, &dense_bases);
        let sparse = ChebOperands::sparse(&basis);
        assert_eq!(dense.len(), k + 1);
        assert_eq!(sparse.len(), k + 1);
        assert!(!sparse.is_empty());

        let x = tape.constant(x_m.clone());
        let stack_d = dense.conv_stack(&mut tape, x);
        let stack_s = sparse.conv_stack(&mut tape, x);
        for (i, (&d, &s)) in stack_d.iter().zip(&stack_s).enumerate() {
            let diff = tape.value(d).sub(tape.value(s)).max_abs();
            assert!(
                diff < 1e-5,
                "order {i}: recurrence stack diverged from materialized bases by {diff}"
            );
        }
        // T_0·X is X itself on the sparse path — exactly, not approximately.
        assert_eq!(tape.value(stack_s[0]).as_slice(), x_m.as_slice());
    }

    #[test]
    fn lstm_sparse_step_matches_dense_within_tolerance() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let cell = ChebConvLstmCell::new(&mut store, "cc", 2, 6, 4, &mut rng);
        let basis = fig1_basis(2);

        let run = |operands_of: &dyn Fn(&mut Tape) -> ChebOperands| {
            let mut tape = Tape::new();
            let operands = operands_of(&mut tape);
            let x = tape.constant(Matrix::eye(6));
            let inputs = [x, x, x];
            let hs = cell.run(&mut tape, &store, &operands, &inputs, 6);
            tape.value(*hs.last().unwrap()).clone()
        };

        let dense_bases = basis.materialize();
        let h_dense = run(&|tape: &mut Tape| ChebOperands::dense(tape, &dense_bases));
        let h_sparse = run(&|_: &mut Tape| ChebOperands::sparse(&basis));
        let diff = h_dense.sub(&h_sparse).max_abs();
        assert!(
            diff < 1e-5,
            "sparse LSTM output diverged from dense by {diff}"
        );
    }

    #[test]
    fn gradients_flow_through_sparse_operands() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let cell = ChebConvGruCell::new(&mut store, "cg", 2, 6, 3, &mut rng);
        let basis = fig1_basis(2);
        let mut tape = Tape::new();
        let operands = ChebOperands::sparse(&basis);
        let inputs: Vec<Var> = (0..3)
            .map(|_| tape.constant(Matrix::from_fn(6, 6, |r, c| ((r + 2 * c) % 4) as f32 * 0.25)))
            .collect();
        let hs = cell.run(&mut tape, &store, &operands, &inputs, 6);
        let pooled = tape.sum_rows(*hs.last().unwrap());
        let sq = tape.sqr(pooled);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let mut zero_grads = Vec::new();
        for id in store.ids().collect::<Vec<_>>() {
            if store.grad(id).max_abs() == 0.0 {
                zero_grads.push(store.name(id).to_string());
            }
        }
        assert!(
            zero_grads.is_empty(),
            "parameters without gradient on the sparse path: {zero_grads:?}"
        );
    }
}
