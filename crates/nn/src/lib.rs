//! Neural-network layers for the CasCN reproduction, built on
//! [`cascn_autograd`].
//!
//! The layer zoo covers everything Section IV of the paper and its baselines
//! require:
//!
//! * [`Linear`] and [`Mlp`] — affine layers and the prediction head (Eq. 18);
//! * [`LstmCell`] / [`GruCell`] — dense recurrent cells for the path-based
//!   baselines (DeepCas, DeepHawkes, Topo-LSTM);
//! * [`ChebConvLstmCell`] / [`ChebConvGruCell`] — the paper's recurrent
//!   graph-convolutional cells, replacing dense multiplications with
//!   Chebyshev graph convolutions over the CasLaplacian (Eq. 12–14);
//! * [`TimeDecay`] — the non-parametric learned time-decay multipliers
//!   (Eq. 15–16);
//! * [`Embedding`] and [`Vocab`] — user-identity embeddings;
//! * [`NextUserHead`] — the microscopic next-user task head: masked softmax
//!   over the user table (Topo-LSTM's ranking protocol);
//! * [`metrics`] — the MSLE evaluation metric (Eq. 20) plus the Hit@k / MAP
//!   ranking metrics of the next-user task;
//! * [`train`] — mini-batching and early-stopping utilities shared by every
//!   trainer in the workspace.

mod chebconv;
mod decay;
mod embedding;
pub mod init;
mod linear;
pub mod metrics;
mod next_user;
mod rnn;
pub mod train;

pub use chebconv::{bases_to_vars, ChebConvGruCell, ChebConvLstmCell, ChebOperands};
pub use decay::TimeDecay;
pub use embedding::{Embedding, Vocab};
pub use linear::{Activation, Linear, Mlp};
pub use next_user::{NextUserHead, MASK_LOGIT};
pub use rnn::{GruCell, LstmCell};
