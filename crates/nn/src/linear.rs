//! Affine layers and multi-layer perceptrons.

use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

use crate::init;

/// A learnable affine map `x ↦ x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim → out_dim` layer in `store` with Xavier-uniform
    /// weights and zero bias. `name` prefixes the parameter names.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = store.register(
            format!("{name}.b"),
            cascn_tensor::Matrix::zeros(1, out_dim),
        );
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `m x in_dim` variable.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.linear(x, w, b)
    }
}

/// The hidden-layer activation of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A multi-layer perceptron with a configurable hidden activation and a
/// linear output layer — the paper's prediction network (Eq. 18) uses
/// hidden sizes 32 → 16 → 1.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP through the given layer `dims` (at least two entries:
    /// input and output dimension).
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp: need input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Applies the network; the hidden activation is used between all layers
    /// but not after the last.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, store, x);
            if i != last {
                x = match self.activation {
                    Activation::Relu => tape.relu(x),
                    Activation::Tanh => tape.tanh(x),
                    Activation::Sigmoid => tape.sigmoid(x),
                };
            }
        }
        x
    }

    /// Output dimension of the final layer (0 for the impossible empty MLP;
    /// `new` asserts at least one layer).
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_autograd::{Adam, Optimizer};
    use cascn_tensor::Matrix;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut store, "l", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(4, 3));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn mlp_learns_a_linear_function() {
        // y = 2a - b, trained on a small grid.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&mut store, "m", &[2, 8, 1], Activation::Relu, &mut rng);
        let mut opt = Adam::with_lr(0.02);
        let data: Vec<([f32; 2], f32)> = (0..16)
            .map(|i| {
                let a = (i % 4) as f32 / 4.0;
                let b = (i / 4) as f32 / 4.0;
                ([a, b], 2.0 * a - b)
            })
            .collect();
        for _ in 0..300 {
            store.zero_grads();
            for (x, y) in &data {
                let mut tape = Tape::new();
                let xv = tape.constant(Matrix::row_vector(x));
                let pred = mlp.forward(&mut tape, &store, xv);
                let loss = tape.squared_error(pred, *y);
                tape.backward(loss);
                tape.accumulate_param_grads(&mut store);
            }
            store.scale_grads(1.0 / data.len() as f32);
            opt.step(&mut store);
        }
        // Evaluate.
        let mut worst = 0.0f32;
        for (x, y) in &data {
            let mut tape = Tape::new();
            let xv = tape.constant(Matrix::row_vector(x));
            let pred = mlp.forward(&mut tape, &store, xv);
            worst = worst.max((tape.scalar(pred) - y).abs());
        }
        assert!(worst < 0.15, "worst abs error {worst}");
    }

    #[test]
    #[should_panic(expected = "need input and output dims")]
    fn mlp_rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Mlp::new(&mut store, "m", &[3], Activation::Relu, &mut rng);
    }
}
