//! Finite-difference verification of the recurrent cells — the strongest
//! correctness guarantee for the CasCN training stack: the analytic
//! gradients of a full multi-step ChebConv-LSTM/GRU/LSTM/GRU rollout must
//! match central differences.

use cascn_autograd::{assert_gradients_close, ParamStore, Tape, Var};
use cascn_graph::{laplacian, DiGraph, SpectralBasis};
use cascn_nn::{ChebConvGruCell, ChebConvLstmCell, ChebOperands, GruCell, LstmCell};
use cascn_tensor::Matrix;

fn chain_basis(n: usize, k: usize) -> SpectralBasis {
    let mut g = DiGraph::new(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1, 1.0);
    }
    let lap = laplacian::cas_laplacian(&g, 0.85);
    SpectralBasis::from_laplacian(&lap, None, k)
}

fn snapshot_inputs(tape: &mut Tape, n: usize, d: usize, steps: usize) -> Vec<Var> {
    (0..steps)
        .map(|t| {
            tape.constant(Matrix::from_fn(n, d, |r, c| {
                ((r * 7 + c * 3 + t) % 5) as f32 * 0.2 - 0.4
            }))
        })
        .collect()
}

/// Gradchecks a ChebConv-LSTM rollout on either the dense (materialized
/// bases) or sparse (operator recurrence) convolution path.
fn chebconv_lstm_gradcheck(sparse: bool) {
    let (n, d_in, d_h, k, steps) = (4usize, 4usize, 2usize, 1usize, 2usize);
    let mut store = ParamStore::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng;
    let cell = ChebConvLstmCell::new(&mut store, "cc", k, d_in, d_h, &mut rng);
    let basis = chain_basis(n, k);
    let dense_bases = basis.materialize();

    let run = move |tape: &mut Tape, store: &ParamStore| {
        let operands = if sparse {
            ChebOperands::sparse(&basis)
        } else {
            ChebOperands::dense(tape, &dense_bases)
        };
        let inputs = snapshot_inputs(tape, n, d_in, steps);
        let hs = cell.run(tape, store, &operands, &inputs, n);
        let pooled = tape.sum_rows(*hs.last().unwrap());
        let sq = tape.sqr(pooled);
        tape.sum_all(sq)
    };

    // Analytic pass.
    {
        let mut tape = Tape::new();
        let loss = run(&mut tape, &store);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
    }
    // But `run` binds params via cell.run (which uses tape.param) — for the
    // numeric pass the same closure re-reads the perturbed store, which is
    // exactly what we need.
    assert_gradients_close(&mut store, 5e-3, 6e-2, move |s| {
        let mut tape = Tape::new();
        let loss = run(&mut tape, s);
        tape.scalar(loss)
    });
}

#[test]
fn chebconv_lstm_gradients_match_finite_differences() {
    chebconv_lstm_gradcheck(false);
}

#[test]
fn chebconv_lstm_sparse_path_gradients_match_finite_differences() {
    chebconv_lstm_gradcheck(true);
}

/// Same gradcheck for the GRU ablation cell.
fn chebconv_gru_gradcheck(sparse: bool) {
    let (n, d_in, d_h, k, steps) = (4usize, 4usize, 2usize, 1usize, 2usize);
    let mut store = ParamStore::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    use rand::SeedableRng;
    let cell = ChebConvGruCell::new(&mut store, "cg", k, d_in, d_h, &mut rng);
    let basis = chain_basis(n, k);
    let dense_bases = basis.materialize();

    let run = move |tape: &mut Tape, store: &ParamStore| {
        let operands = if sparse {
            ChebOperands::sparse(&basis)
        } else {
            ChebOperands::dense(tape, &dense_bases)
        };
        let inputs = snapshot_inputs(tape, n, d_in, steps);
        let hs = cell.run(tape, store, &operands, &inputs, n);
        let pooled = tape.sum_rows(*hs.last().unwrap());
        let sq = tape.sqr(pooled);
        tape.sum_all(sq)
    };
    {
        let mut tape = Tape::new();
        let loss = run(&mut tape, &store);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
    }
    assert_gradients_close(&mut store, 5e-3, 6e-2, move |s| {
        let mut tape = Tape::new();
        let loss = run(&mut tape, s);
        tape.scalar(loss)
    });
}

#[test]
fn chebconv_gru_gradients_match_finite_differences() {
    chebconv_gru_gradcheck(false);
}

#[test]
fn chebconv_gru_sparse_path_gradients_match_finite_differences() {
    chebconv_gru_gradcheck(true);
}

#[test]
fn dense_lstm_gradients_match_finite_differences() {
    let (d_in, d_h, steps) = (3usize, 2usize, 3usize);
    let mut store = ParamStore::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    use rand::SeedableRng;
    let cell = LstmCell::new(&mut store, "l", d_in, d_h, &mut rng);

    let run = |tape: &mut Tape, store: &ParamStore| {
        let inputs: Vec<Var> = (0..steps)
            .map(|t| {
                tape.constant(Matrix::from_fn(1, d_in, |_, c| {
                    ((c + t) % 3) as f32 * 0.3 - 0.3
                }))
            })
            .collect();
        let hs = cell.run(tape, store, &inputs, 1);
        let sq = tape.sqr(*hs.last().unwrap());
        tape.sum_all(sq)
    };
    {
        let mut tape = Tape::new();
        let loss = run(&mut tape, &store);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
    }
    assert_gradients_close(&mut store, 5e-3, 6e-2, move |s| {
        let mut tape = Tape::new();
        let loss = run(&mut tape, s);
        tape.scalar(loss)
    });
}

#[test]
fn dense_gru_gradients_match_finite_differences() {
    let (d_in, d_h, steps) = (3usize, 2usize, 3usize);
    let mut store = ParamStore::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    use rand::SeedableRng;
    let cell = GruCell::new(&mut store, "g", d_in, d_h, &mut rng);

    let run = |tape: &mut Tape, store: &ParamStore| {
        let inputs: Vec<Var> = (0..steps)
            .map(|t| {
                tape.constant(Matrix::from_fn(1, d_in, |_, c| {
                    ((c * 2 + t) % 4) as f32 * 0.25 - 0.375
                }))
            })
            .collect();
        let hs = cell.run(tape, store, &inputs, 1);
        let sq = tape.sqr(*hs.last().unwrap());
        tape.sum_all(sq)
    };
    {
        let mut tape = Tape::new();
        let loss = run(&mut tape, &store);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
    }
    assert_gradients_close(&mut store, 5e-3, 6e-2, move |s| {
        let mut tape = Tape::new();
        let loss = run(&mut tape, s);
        tape.scalar(loss)
    });
}
