//! cascn-lint — workspace-native static analysis for the cascn contracts.
//!
//! Clippy cannot express project rules like "`partial_cmp(..).unwrap()` is
//! banned because the training loop's ordering must be NaN-total" or
//! "`HashMap` iteration must not feed ordered results in compute crates".
//! This crate implements them from scratch: a hand-written lexer
//! ([`lexer`]), a token-tree rule engine ([`rules`]), a symbol/scope
//! resolution layer ([`resolve`]) feeding four concurrency-contract passes
//! ([`concurrency`]), and a ratchet baseline ([`baseline`]) that
//! grandfathers existing debt while failing CI on any regression. See
//! `docs/static-analysis.md` for the contract text.

pub mod baseline;
pub mod concurrency;
pub mod lexer;
pub mod resolve;
pub mod rules;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, RatchetViolation};
pub use rules::{classify, scan_source, Finding, RULES};

/// Name of the checked-in ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Collects every `.rs` file under `crates/*/src`, sorted for deterministic
/// output. Paths are returned relative to `root`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root`. Returns the findings (file
/// paths relative to the root, `/`-separated) and the number of files read.
///
/// Token rules run per file; the concurrency passes run per *crate*, over
/// all of that crate's resolved files at once, so lock-order cycles split
/// across modules are still visible. `workspace_files` sorts its output,
/// which makes each crate's files contiguous.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let files = workspace_files(root)?;
    let mut models = Vec::with_capacity(files.len());
    for rel in &files {
        let label = path_label(rel);
        let src = fs::read_to_string(root.join(rel))?;
        let class = classify(&label);
        models.push(resolve::FileModel::build(&label, &src, class));
    }

    // Token rules + allow-justification meta findings, per file.
    let mut findings = Vec::new();
    for m in &models {
        findings.extend(rules::finish(m, rules::token_rules(m), true));
    }

    // Concurrency passes, per crate group. The meta findings were already
    // emitted above, so suppression filtering here must not repeat them.
    let mut start = 0usize;
    while start < models.len() {
        let key = crate_of(&models[start].label).to_string();
        let mut end = start + 1;
        while end < models.len() && crate_of(&models[end].label) == key {
            end += 1;
        }
        let group = &models[start..end];
        let mut per_file: Vec<Vec<(u32, &'static str, String)>> = vec![Vec::new(); group.len()];
        for (idx, line, rule, message) in concurrency::scan(group) {
            per_file[idx].push((line, rule, message));
        }
        for (m, raw) in group.iter().zip(per_file) {
            findings.extend(rules::finish(m, raw, false));
        }
        start = end;
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((findings, files.len()))
}

/// The `crates/<name>/` prefix that scopes the concurrency passes; files
/// outside the conventional layout group under their full label.
fn crate_of(label: &str) -> &str {
    let Some(rest) = label.strip_prefix("crates/") else {
        return label;
    };
    match rest.find('/') {
        Some(i) => &label[..("crates/".len() + i)],
        None => label,
    }
}

/// Normalizes a path to the `/`-separated form used in findings and the
/// baseline, so results are identical across platforms.
pub fn path_label(path: &Path) -> String {
    let mut label = String::new();
    for comp in path.components() {
        if !label.is_empty() {
            label.push('/');
        }
        label.push_str(&comp.as_os_str().to_string_lossy());
    }
    label
}

/// Renders findings for humans: `file:line: [rule] message` plus the
/// offending source line.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.excerpt.is_empty() {
            let _ = writeln!(out, "    {}", f.excerpt);
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"excerpt\": {}}}",
            baseline::quote(&f.file),
            f.line,
            baseline::quote(f.rule),
            baseline::quote(&f.message),
            baseline::quote(&f.excerpt),
        );
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders ratchet violations for humans.
pub fn render_violations(violations: &[RatchetViolation], findings: &[Finding]) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(
            out,
            "RATCHET: {} has {} `{}` finding(s), baseline allows {}",
            v.file, v.current, v.rule, v.baselined
        );
        for f in findings.iter().filter(|f| f.file == v.file && f.rule == v.rule) {
            let _ = writeln!(out, "  {}:{}: {}", f.file, f.line, f.message);
            if !f.excerpt.is_empty() {
                let _ = writeln!(out, "      {}", f.excerpt);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn json_rendering_is_valid_and_escaped() {
        let findings = vec![Finding {
            file: "a\"b.rs".into(),
            line: 7,
            rule: "no-panic",
            message: "msg".into(),
            excerpt: "x.unwrap()".into(),
        }];
        let text = render_json(&findings);
        let parsed = baseline::Json::parse(&text).expect("render_json output parses");
        match parsed {
            baseline::Json::Arr(items) => assert_eq!(items.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn path_label_is_slash_separated() {
        let p = Path::new("crates").join("tensor").join("src").join("ops.rs");
        assert_eq!(path_label(&p), "crates/tensor/src/ops.rs");
    }
}
