//! A hand-written Rust lexer producing a flat token stream with line numbers.
//!
//! The lexer is deliberately forgiving: it never fails. Anything it cannot
//! classify is emitted as a one-character operator token, and an unterminated
//! string or comment simply runs to end-of-file. Rules operate on tokens, so
//! `unwrap` inside a string literal or a comment can never produce a finding.
//!
//! Comments are not tokens — they are collected separately (with their line
//! numbers) so the rule engine can match `// lint: allow(...)` suppression
//! directives against finding lines.

/// Token classification. Operators keep their full multi-character text
/// (`==`, `->`, `::`, ...); brackets get their own kinds so rules can match
/// delimited groups without re-deriving nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `as`, ...).
    Ident,
    /// Integer literal, including its suffix if any (`42`, `0xff`, `3u64`).
    Int,
    /// Float literal (`1.0`, `2.`, `1e-3`, `1f32`).
    Float,
    /// String literal of any flavor (`"a"`, `r#"b"#`, `b"c"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Operator / punctuation (`==`, `.`, `#`, `;`, ...).
    Op,
    /// Opening bracket: `(`, `[`, or `{`.
    Open,
    /// Closing bracket: `)`, `]`, or `}`.
    Close,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching is correct.
///
/// Deliberately absent: `<<`, `>>`, `<<=`, `>>=`. Gluing angle brackets
/// would make the closers of nested generics (`MutexGuard<'a, Slot>>`)
/// indistinguishable from shifts, and the resolver walks generic argument
/// lists by counting single `<`/`>` tokens. No rule keys on shift
/// operators, so splitting them costs nothing.
const MULTI_OPS: &[&str] = &[
    "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Consumes bytes while `f` holds, returning the consumed slice.
    fn eat_while(&mut self, f: impl Fn(u8) -> bool) -> &'a [u8] {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if !f(b) {
                break;
            }
            self.bump();
        }
        &self.src[start..self.pos]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails; see module docs.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek(0) {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let text = ascii_str(cur.eat_while(|b| b != b'\n'));
                out.comments.push(Comment { line, text });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                out.comments.push(Comment { line, text: block_comment(&mut cur) });
            }
            b'"' => {
                string_literal(&mut cur);
                out.tokens.push(tok(TokKind::Str, "\"..\"", line));
            }
            b'r' | b'b' if starts_prefixed_literal(&cur) => {
                let kind = prefixed_literal(&mut cur);
                out.tokens.push(tok(kind, "\"..\"", line));
            }
            b'\'' => {
                let (kind, text) = quote_token(&mut cur);
                out.tokens.push(Token { kind, text, line });
            }
            _ if is_ident_start(b) => {
                let text = ascii_str(cur.eat_while(is_ident_continue));
                out.tokens.push(Token { kind: TokKind::Ident, text, line });
            }
            _ if b.is_ascii_digit() => {
                let (kind, text) = number(&mut cur);
                out.tokens.push(Token { kind, text, line });
            }
            b'(' | b'[' | b'{' => {
                cur.bump();
                out.tokens.push(tok(TokKind::Open, ascii_char(b), line));
            }
            b')' | b']' | b'}' => {
                cur.bump();
                out.tokens.push(tok(TokKind::Close, ascii_char(b), line));
            }
            _ => {
                let text = operator(&mut cur);
                out.tokens.push(Token { kind: TokKind::Op, text, line });
            }
        }
    }
    out
}

fn tok(kind: TokKind, text: &str, line: u32) -> Token {
    Token { kind, text: text.to_string(), line }
}

fn ascii_str(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn ascii_char(b: u8) -> &'static str {
    match b {
        b'(' => "(",
        b'[' => "[",
        b'{' => "{",
        b')' => ")",
        b']' => "]",
        b'}' => "}",
        _ => "?",
    }
}

/// Whether the cursor sits at `r"`, `r#"`, `b"`, `br"`, `b'`, or a raw
/// identifier prefix — i.e. the `r`/`b` is a literal prefix, not an ident.
fn starts_prefixed_literal(cur: &Cursor) -> bool {
    let (mut i, b0) = (1, cur.peek(0));
    if b0 == Some(b'b') && cur.peek(1) == Some(b'r') {
        i = 2;
    }
    loop {
        match cur.peek(i) {
            Some(b'#') => i += 1,
            Some(b'"') => return true,
            Some(b'\'') => return b0 == Some(b'b') && i == 1,
            _ => return false,
        }
    }
}

/// Consumes a prefixed literal (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`).
fn prefixed_literal(cur: &mut Cursor) -> TokKind {
    if cur.peek(0) == Some(b'b') && cur.peek(1) == Some(b'\'') {
        cur.bump(); // b
        let (kind, _) = quote_token(cur);
        return kind;
    }
    let mut raw = false;
    while matches!(cur.peek(0), Some(b'r') | Some(b'b')) {
        raw |= cur.peek(0) == Some(b'r');
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    // Raw strings have no escapes: scan for `"` followed by `hashes` hashes.
    'scan: while let Some(b) = cur.bump() {
        if b == b'"' {
            for k in 0..hashes {
                if cur.peek(k) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        if !raw && b == b'\\' {
            cur.bump();
        }
    }
    TokKind::Str
}

/// Consumes a cooked string literal body (opening quote at cursor).
fn string_literal(cur: &mut Cursor) {
    cur.bump(); // opening "
    while let Some(b) = cur.bump() {
        match b {
            b'"' => break,
            b'\\' => {
                cur.bump();
            }
            _ => {}
        }
    }
}

/// Disambiguates `'a` / `'static` (lifetimes) from `'a'` / `'\n'` / `'ü'`
/// (char literals).
fn quote_token(cur: &mut Cursor) -> (TokKind, String) {
    cur.bump(); // opening '
    match cur.peek(0) {
        Some(b) if is_ident_start(b) => {
            // `'a>` vs `'a'` cannot be told apart one byte ahead — a
            // multi-byte char like `'ü'` has an ident-continue byte where
            // a one-char literal has its closing quote. Eat the whole
            // ident run first and let the byte after it decide.
            let name = ascii_str(cur.eat_while(is_ident_continue));
            if cur.peek(0) == Some(b'\'') {
                cur.bump(); // closing '
                (TokKind::Char, "'..'".to_string())
            } else {
                (TokKind::Lifetime, format!("'{name}"))
            }
        }
        _ => {
            // Char literal: consume one (possibly escaped) char up to `'`.
            while let Some(b) = cur.bump() {
                match b {
                    b'\'' => break,
                    b'\\' => {
                        // Consume the escaped char; `\u{…}` spans to `}`.
                        let esc = cur.bump();
                        if esc == Some(b'u') && cur.peek(0) == Some(b'{') {
                            cur.eat_while(|b| b != b'}');
                            cur.bump();
                        }
                    }
                    _ => {}
                }
            }
            (TokKind::Char, "'..'".to_string())
        }
    }
}

/// Lexes a numeric literal, classifying floats by shape or suffix.
fn number(cur: &mut Cursor) -> (TokKind, String) {
    let start = cur.pos;
    let mut float = false;
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x') | Some(b'o') | Some(b'b')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return (TokKind::Int, ascii_str(&cur.src[start..cur.pos]));
    }
    cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    // Fractional part: `1.5`, `1.` — but not `1..2` (range) or `1.méthode`.
    if cur.peek(0) == Some(b'.') {
        let after = cur.peek(1);
        let fraction = match after {
            Some(b) if b.is_ascii_digit() => true,
            Some(b'.') => false,
            Some(b) if is_ident_start(b) => false,
            _ => true, // `2.` at end of expression
        };
        if fraction {
            float = true;
            cur.bump();
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Exponent: `1e3`, `2.5E-7`.
    if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
        let (a, b) = (cur.peek(1), cur.peek(2));
        let exp = match a {
            Some(d) if d.is_ascii_digit() => true,
            Some(b'+') | Some(b'-') => matches!(b, Some(d) if d.is_ascii_digit()),
            _ => false,
        };
        if exp {
            float = true;
            cur.bump();
            cur.bump();
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Suffix: `u64`, `f32`, ... — an `f` suffix makes it a float (`1f32`).
    let suffix = ascii_str(cur.eat_while(is_ident_continue));
    if suffix.starts_with('f') {
        float = true;
    }
    let kind = if float { TokKind::Float } else { TokKind::Int };
    (kind, ascii_str(&cur.src[start..cur.pos]))
}

/// Consumes a (possibly multi-character) operator.
fn operator(cur: &mut Cursor) -> String {
    for op in MULTI_OPS {
        let bytes = op.as_bytes();
        if (0..bytes.len()).all(|k| cur.peek(k) == Some(bytes[k])) {
            for _ in 0..bytes.len() {
                cur.bump();
            }
            return (*op).to_string();
        }
    }
    match cur.bump() {
        Some(b) => (b as char).to_string(),
        None => String::new(),
    }
}

/// Consumes a (possibly nested) block comment, returning its text.
fn block_comment(cur: &mut Cursor) -> String {
    let start = cur.pos;
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
    ascii_str(&cur.src[start..cur.pos])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_ops_and_calls() {
        assert_eq!(texts("x.unwrap()"), ["x", ".", "unwrap", "(", ")"]);
        assert_eq!(texts("a == b != c"), ["a", "==", "b", "!=", "c"]);
        assert_eq!(texts("a::b->c"), ["a", "::", "b", "->", "c"]);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let l = lex("1 2.5 1e-3 1f32 0..n 0xff 3usize 2.");
        let kinds: Vec<TokKind> = l.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Op,
                TokKind::Ident,
                TokKind::Int,
                TokKind::Int,
                TokKind::Float,
            ]
        );
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let l = lex("let s = \"x.unwrap()\"; // call .unwrap() here\n/* panic! */ let y = 1;");
        assert!(l.tokens.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r####"let s = r#"quote " inside"#; let t = 5;"####);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(l.tokens.iter().any(|t| t.text == "5"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("&'a str; let c = 'x'; let nl = '\\n'; let q = '\\''; &'static u8");
        let lifes: Vec<&str> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifes, ["'a", "'static"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn lifetime_labels_and_guard_type_annotations() {
        // `'a>` (closing a generic list) and `'static` must stay lifetimes
        // even with no whitespace before the closer.
        let l = lex("fn lock(&self) -> MutexGuard<'a> {} 'outer: loop { break 'outer; } &'static str");
        let lifes: Vec<&str> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifes, ["'a", "'outer", "'outer", "'static"]);
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn multibyte_char_literal_is_not_a_lifetime() {
        // `'ü'` begins with an ident-start byte; a one-byte lookahead sees
        // the second UTF-8 byte and used to mis-lex this as a lifetime,
        // desyncing everything after the stray closing quote.
        let l = lex("let c = 'ü'; let d = 'x'; let l = &'a u8;");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        let lifes: Vec<&str> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifes, ["'a"]);
    }

    #[test]
    fn nested_generic_closers_lex_singly() {
        // `>>` must be two closers so the resolver can walk
        // `Vec<Mutex<Option<Child>>>`-shaped annotations; shifts pay the
        // price and lex as two `>` tokens, which no rule keys on.
        assert_eq!(texts("Option<MutexGuard<'a, T>>"), ["Option", "<", "MutexGuard", "<", "'a", ",", "T", ">", ">"]);
        assert_eq!(texts("x >> 2 << 3"), ["x", ">", ">", "2", "<", "<", "3"]);
        assert_eq!(texts("a >>= 1"), ["a", ">", ">=", "1"]);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "x");
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let l = lex("let s = \"oops");
        assert_eq!(l.tokens.last().map(|t| t.kind), Some(TokKind::Str));
    }
}
