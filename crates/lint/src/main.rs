//! `cascn-lint` CLI.
//!
//! ```text
//! cascn-lint                  # scan, print every finding (ignores baseline)
//! cascn-lint --check          # fail (exit 1) on any non-baselined finding
//! cascn-lint --update-baseline# regenerate lint-baseline.json (keeps pre_pr)
//! cascn-lint --json           # machine-readable findings
//! cascn-lint --rules          # list the rules and their contracts
//! cascn-lint --root DIR       # workspace root (default: this crate's ../..)
//! cascn-lint FILE...          # scan specific files instead of the workspace
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cascn_lint::{
    baseline::count_findings, classify, path_label, render_human, render_json, render_violations,
    scan_source, scan_workspace, Baseline, Finding, BASELINE_FILE, RULES,
};

struct Opts {
    check: bool,
    update_baseline: bool,
    json: bool,
    list_rules: bool,
    root: PathBuf,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        check: false,
        update_baseline: false,
        json: false,
        list_rules: false,
        root: default_root(),
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => opts.json = true,
            "--rules" => opts.list_rules = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                opts.root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

const HELP: &str = "cascn-lint — static analysis for the cascn numerics/error-handling/determinism contracts

USAGE:
  cascn-lint [--check | --update-baseline] [--json] [--root DIR] [FILE...]

MODES:
  (default)          scan and print every finding, ignoring the baseline
  --check            apply the ratchet baseline; exit 1 on any regression
  --update-baseline  rewrite lint-baseline.json from the current scan
  --rules            list the rules
  --json             emit findings as JSON";

/// The workspace root, assuming the binary runs from the source tree (the
/// only supported mode: the tool lints this workspace's own sources).
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("cascn-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.list_rules {
        for r in RULES {
            println!("{:<16} {}", r.id, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let start = std::time::Instant::now();
    let (findings, n_files) = if opts.files.is_empty() {
        scan_workspace(&opts.root).map_err(|e| format!("scanning workspace: {e}"))?
    } else {
        let mut all = Vec::new();
        for f in &opts.files {
            let label = path_label(f);
            let src =
                std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
            all.extend(scan_source(&label, &src, classify(&label)));
        }
        (all, opts.files.len())
    };
    let elapsed = start.elapsed();

    let baseline_path = opts.root.join(BASELINE_FILE);
    if opts.update_baseline {
        // Preserve the pre-PR reference counts across regenerations; on
        // first generation, record the current totals as the reference.
        let pre_pr = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)?.pre_pr,
            Err(_) => totals(&findings),
        };
        let baseline = Baseline::from_findings(&findings, pre_pr);
        std::fs::write(&baseline_path, baseline.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "cascn-lint: baseline updated — {} finding(s) across {} file(s) grandfathered",
            findings.len(),
            baseline.entries.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if opts.check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(_) => Baseline::default(), // no baseline: everything must be clean
        };
        let violations = baseline.check(&findings);
        if opts.json {
            let flagged: Vec<Finding> = findings
                .iter()
                .filter(|f| {
                    violations.iter().any(|v| v.file == f.file && v.rule == f.rule)
                })
                .cloned()
                .collect();
            print!("{}", render_json(&flagged));
        } else if !violations.is_empty() {
            print!("{}", render_violations(&violations, &findings));
        }
        if violations.is_empty() {
            if !opts.json {
                println!(
                    "cascn-lint: clean — {n_files} file(s), {} baselined finding(s), {:?}",
                    findings.len(),
                    elapsed
                );
            }
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!(
            "cascn-lint: {} ratchet violation(s) — fix them or (for intentional, justified cases) add `// lint: allow(<rule>) — <why>`",
            violations.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings));
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &findings {
            *by_rule.entry(f.rule).or_default() += 1;
        }
        let summary: Vec<String> =
            by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        println!(
            "cascn-lint: {} finding(s) in {n_files} file(s) ({}) in {:?}",
            findings.len(),
            if summary.is_empty() { "clean".to_string() } else { summary.join(", ") },
            elapsed
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Per-rule totals over the whole scan (the `pre_pr` header shape).
fn totals(findings: &[Finding]) -> BTreeMap<String, u64> {
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for rules in count_findings(findings).values() {
        for (rule, n) in rules {
            *out.entry(rule.clone()).or_default() += n;
        }
    }
    out
}
