//! A lightweight symbol/scope resolution layer over the forgiving lexer.
//!
//! The concurrency passes ([`crate::concurrency`]) need more than a token
//! stream: which bindings are lock guards, where function bodies begin and
//! end, and which names a call site can reach inside the same crate. This
//! module extracts exactly that — nothing more — from the lexed tokens:
//!
//! * **struct fields** and their synchronization role (`Mutex`, `RwLock`,
//!   `Condvar`, `AtomicBool`, counter-like atomics), keyed by field name.
//!   Field names are a crate-local namespace in practice (`queue`, `slots`,
//!   `children`), which is what makes token-level lock identity workable;
//! * **functions**: name, parameter roles, body token range, whether the
//!   return type carries a `*Guard` (a guard-returning helper such as
//!   `ReplicaSet::lock` transfers its acquisitions to the caller), and
//!   whether the function lives under test masking;
//! * **receiver paths**: `self.inner.children[i]` resolves to the field
//!   `children`; the resolver never needs full type inference because every
//!   lock in this workspace is reached through a named field, parameter, or
//!   local.
//!
//! The resolver is as forgiving as the lexer. It under-approximates —
//! unparseable shapes resolve to [`SyncRole::Unknown`] rather than failing
//! — so a weird macro or an exotic pattern can hide a lock from the
//! analysis but can never abort the scan.

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::rules::FileClass;
use std::collections::BTreeMap;

/// What a name means to the concurrency passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncRole {
    /// `Mutex<..>` (possibly nested in `Vec`/`Option`/`Arc`).
    Mutex,
    /// `RwLock<..>`.
    RwLock,
    /// `Condvar` — its `wait`/`wait_timeout` release the guard they take.
    Condvar,
    /// `AtomicBool` — a cross-thread control-flow flag by construction.
    AtomicBool,
    /// Any other `Atomic*` integer — usually a counter or a stamp.
    AtomicUint,
    /// Anything else (including names the resolver could not classify).
    Unknown,
}

/// One resolved function: enough to walk its body and link call edges.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Parameter name → role, for receiver resolution inside the body.
    pub params: BTreeMap<String, SyncRole>,
    /// Token range of the body block: indices of `{` and its `}`.
    pub body: Option<(usize, usize)>,
    /// The return type mentions a `*Guard` type: calling this function
    /// acquires whatever it locks, on behalf of the caller.
    pub returns_guard: bool,
    /// Declared under `#[test]` / `#[cfg(test)]` — exempt from passes.
    pub is_test: bool,
    pub line: u32,
}

/// Everything the passes need to know about one file, resolved once.
pub struct FileModel {
    pub label: String,
    pub class: FileClass,
    pub tokens: Vec<Token>,
    pub masked: Vec<bool>,
    pub comments: Vec<Comment>,
    /// Trimmed source lines for finding excerpts (1-based via `line - 1`).
    pub lines: Vec<String>,
    /// Struct field name → synchronization role, merged across the file.
    pub fields: BTreeMap<String, SyncRole>,
    pub functions: Vec<FnInfo>,
}

impl FileModel {
    /// Lexes and resolves `src`. Never fails; see module docs.
    pub fn build(label: &str, src: &str, class: FileClass) -> Self {
        let lexed = lex(src);
        let masked = crate::rules::test_mask(&lexed.tokens);
        let fields = collect_fields(&lexed.tokens);
        let functions = collect_functions(&lexed.tokens, &masked);
        Self {
            label: label.to_string(),
            class,
            masked,
            comments: lexed.comments,
            lines: src.lines().map(|l| l.trim().to_string()).collect(),
            fields,
            functions,
            tokens: lexed.tokens,
        }
    }

    /// The trimmed source line `line` (1-based), for finding excerpts.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).cloned().unwrap_or_default()
    }
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Classifies a type's role from the idents appearing in it. `Condvar`
/// wins over lock wrappers so `Mutex<Condvar>`-style fields (not that
/// anyone should write one) err toward the stricter wait rules.
pub fn role_of_type_tokens<'a>(idents: impl Iterator<Item = &'a str>) -> SyncRole {
    let mut role = SyncRole::Unknown;
    for id in idents {
        let next = match id {
            "Condvar" => SyncRole::Condvar,
            "Mutex" => SyncRole::Mutex,
            "RwLock" => SyncRole::RwLock,
            "AtomicBool" => SyncRole::AtomicBool,
            "AtomicU8" | "AtomicU16" | "AtomicU32" | "AtomicU64" | "AtomicUsize" | "AtomicI8"
            | "AtomicI16" | "AtomicI32" | "AtomicI64" | "AtomicIsize" => SyncRole::AtomicUint,
            _ => continue,
        };
        // First classified ident wins, except Condvar which always wins.
        if role == SyncRole::Unknown || next == SyncRole::Condvar {
            role = next;
        }
    }
    role
}

/// Walks every `struct … { … }` body and records `name: Type` fields whose
/// type plays a synchronization role.
fn collect_fields(toks: &[Token]) -> BTreeMap<String, SyncRole> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(&toks[i], "struct") {
            i += 1;
            continue;
        }
        // struct NAME [<generics>] { fields } | ( tuple ); | ;
        let mut j = i + 1;
        if !matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        j += 1;
        // Skip generics: single-token closers guaranteed by the lexer.
        let mut angle = 0isize;
        let body = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.kind == TokKind::Op && t.text == "<" => angle += 1,
                Some(t) if t.kind == TokKind::Op && t.text == ">" => angle -= 1,
                Some(t) if angle == 0 && t.kind == TokKind::Open && t.text == "{" => {
                    break Some(j);
                }
                // Tuple struct or unit struct: no named fields.
                Some(t)
                    if angle == 0
                        && ((t.kind == TokKind::Open && t.text == "(")
                            || (t.kind == TokKind::Op && t.text == ";")) =>
                {
                    break None;
                }
                Some(_) => {}
            }
            j += 1;
        };
        let Some(open) = body else {
            i = j.max(i + 1);
            continue;
        };
        let Some(close) = crate::rules::matching_close(toks, open) else {
            break;
        };
        // Fields sit at depth 1: `…, name: Type,` — find `ident :` pairs at
        // depth 1 and classify the type tokens up to the next depth-1 comma.
        let mut depth = 0isize;
        let mut k = open;
        while k < close {
            let t = &toks[k];
            match t.kind {
                TokKind::Open => depth += 1,
                TokKind::Close => depth -= 1,
                TokKind::Ident
                    if depth == 1
                        && matches!(toks.get(k + 1), Some(n) if n.kind == TokKind::Op && n.text == ":")
                        && !matches!(toks.get(k.wrapping_sub(1)), Some(p) if p.kind == TokKind::Op && p.text == ":") =>
                {
                    let name = t.text.clone();
                    let mut e = k + 2;
                    let mut d2 = 0isize;
                    while e < close {
                        let ty = &toks[e];
                        match ty.kind {
                            TokKind::Open => d2 += 1,
                            TokKind::Close => d2 -= 1,
                            TokKind::Op if ty.text == "," && d2 == 0 => break,
                            _ => {}
                        }
                        e += 1;
                    }
                    let role = role_of_type_tokens(
                        toks[k + 2..e].iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()),
                    );
                    if role != SyncRole::Unknown {
                        out.insert(name, role);
                    }
                    k = e;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}

/// Finds every `fn name(…) [-> ret] { body }` and records its shape.
fn collect_functions(toks: &[Token], masked: &[bool]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(&toks[i], "fn") {
            i += 1;
            continue;
        }
        // `fn(usize) -> T` is a pointer type, not a declaration.
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Params: the first `(` outside the generic list. `->` inside
        // `Fn(..)`-style bounds is its own token, so it cannot unbalance
        // the angle count.
        let mut j = i + 2;
        let mut angle = 0isize;
        let params_open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.kind == TokKind::Op && t.text == "<" => angle += 1,
                Some(t) if t.kind == TokKind::Op && t.text == ">" => angle -= 1,
                Some(t) if angle == 0 && t.kind == TokKind::Open && t.text == "(" => break Some(j),
                Some(t) if t.kind == TokKind::Open && t.text == "{" => break None,
                Some(_) => {}
            }
            j += 1;
        };
        let Some(popen) = params_open else {
            i += 2;
            continue;
        };
        let Some(pclose) = crate::rules::matching_close(toks, popen) else {
            break;
        };
        let params = collect_params(&toks[popen + 1..pclose]);

        // Return type and body: scan to the body `{`, a `;` (no body), or
        // end. `where` clauses pass through harmlessly.
        let mut k = pclose + 1;
        let mut ret_idents: Vec<&str> = Vec::new();
        let mut returns_guard = false;
        let mut body = None;
        while let Some(t) = toks.get(k) {
            match t.kind {
                TokKind::Open if t.text == "{" => {
                    body = Some(k);
                    break;
                }
                TokKind::Op if t.text == ";" => break,
                TokKind::Ident => ret_idents.push(t.text.as_str()),
                _ => {}
            }
            k += 1;
        }
        returns_guard |= ret_idents.iter().any(|id| id.ends_with("Guard"));
        let body = body.and_then(|b| crate::rules::matching_close(toks, b).map(|c| (b, c)));
        out.push(FnInfo {
            name: name_tok.text.clone(),
            params,
            body,
            returns_guard,
            is_test: masked.get(i).copied().unwrap_or(false),
            line: toks[i].line,
        });
        i = match body {
            // Nested fns are rare; walking into the body keeps them visible.
            Some((b, _)) => b + 1,
            None => k + 1,
        };
    }
    out
}

/// Parses `name: Type` pairs out of a parameter list's tokens.
fn collect_params(toks: &[Token]) -> BTreeMap<String, SyncRole> {
    let mut out = BTreeMap::new();
    let mut depth = 0isize;
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Ident
                if depth == 0
                    && matches!(toks.get(k + 1), Some(n) if n.kind == TokKind::Op && n.text == ":") =>
            {
                let name = t.text.clone();
                let mut e = k + 2;
                let mut d2 = 0isize;
                let mut angle = 0isize;
                while e < toks.len() {
                    let ty = &toks[e];
                    match ty.kind {
                        TokKind::Open => d2 += 1,
                        TokKind::Close => d2 -= 1,
                        TokKind::Op if ty.text == "<" => angle += 1,
                        TokKind::Op if ty.text == ">" => angle -= 1,
                        TokKind::Op if ty.text == "," && d2 == 0 && angle <= 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                let role = role_of_type_tokens(
                    toks[k + 2..e].iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()),
                );
                if role != SyncRole::Unknown {
                    out.insert(name, role);
                }
                k = e;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Resolves the receiver path ending just before token `end` (exclusive) to
/// its final field/binding name: `self.inner.children[i]` → `children`,
/// `&mut q` → `q`. Returns `None` when the receiver is not a simple path
/// (e.g. a call result), which under-approximates safely.
pub fn receiver_name(toks: &[Token], end: usize) -> Option<String> {
    let mut k = end;
    // Step back over a trailing index `[ … ]`.
    loop {
        if k == 0 {
            return None;
        }
        let t = &toks[k - 1];
        match t.kind {
            TokKind::Close if t.text == "]" => {
                // Walk back to the matching `[`.
                let mut depth = 0isize;
                while k > 0 {
                    let u = &toks[k - 1];
                    if u.kind == TokKind::Close && u.text == "]" {
                        depth += 1;
                    } else if u.kind == TokKind::Open && u.text == "[" {
                        depth -= 1;
                        if depth == 0 {
                            k -= 1;
                            break;
                        }
                    }
                    k -= 1;
                }
            }
            TokKind::Ident => return Some(t.text.clone()),
            _ => return None,
        }
    }
}

/// Resolves the lock identity named by an argument list such as
/// `&self.inner.children[i]` or `&q`: the last field-shaped ident of the
/// path, skipping `&`, `mut`, and any trailing index or `.get(i)` call.
pub fn lock_name_of_args(toks: &[Token]) -> Option<String> {
    let mut last = None;
    let mut depth = 0isize;
    for (k, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Ident if depth == 0 => {
                if t.text == "mut" {
                    continue;
                }
                // Stop at a method call in the path (`.get(i)`); the path
                // so far names the lock.
                if matches!(toks.get(k + 1), Some(n) if n.kind == TokKind::Open && n.text == "(") {
                    break;
                }
                last = Some(t.text.clone());
            }
            _ => {}
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/serve/src/x.rs", src, crate::rules::classify("crates/serve/src/x.rs"))
    }

    #[test]
    fn fields_classify_through_wrappers() {
        let m = model(
            "struct S { queue: Mutex<Queue>, cv: Condvar, entries: RwLock<Vec<Entry>>, \
             children: Vec<Mutex<Option<Child>>>, stopping: AtomicBool, tick: AtomicU64, plain: usize }",
        );
        assert_eq!(m.fields.get("queue"), Some(&SyncRole::Mutex));
        assert_eq!(m.fields.get("cv"), Some(&SyncRole::Condvar));
        assert_eq!(m.fields.get("entries"), Some(&SyncRole::RwLock));
        assert_eq!(m.fields.get("children"), Some(&SyncRole::Mutex));
        assert_eq!(m.fields.get("stopping"), Some(&SyncRole::AtomicBool));
        assert_eq!(m.fields.get("tick"), Some(&SyncRole::AtomicUint));
        assert_eq!(m.fields.get("plain"), None);
    }

    #[test]
    fn functions_record_bodies_params_and_guard_returns() {
        let m = model(
            "impl S {\n  fn lock(&self, i: usize) -> MutexGuard<'_, Slot> { lock_recover(&self.slots[i]) }\n  \
             fn wait_recover<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> { g }\n  \
             fn plain(&self) -> usize;\n}",
        );
        let lock = m.functions.iter().find(|f| f.name == "lock").unwrap();
        assert!(lock.returns_guard);
        assert!(lock.body.is_some());
        let wr = m.functions.iter().find(|f| f.name == "wait_recover").unwrap();
        assert_eq!(wr.params.get("cv"), Some(&SyncRole::Condvar));
        let plain = m.functions.iter().find(|f| f.name == "plain").unwrap();
        assert!(plain.body.is_none() && !plain.returns_guard);
    }

    #[test]
    fn test_functions_are_marked() {
        let m = model("#[test]\nfn t() { x.lock(); }\nfn live() {}");
        assert!(m.functions.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!m.functions.iter().find(|f| f.name == "live").unwrap().is_test);
    }

    #[test]
    fn receiver_and_lock_name_resolution() {
        let m = model("fn f() { self.inner.children[i].lock(); }");
        let dot = m
            .tokens
            .iter()
            .position(|t| t.text == "lock")
            .unwrap()
            - 1; // the `.` before lock
        assert_eq!(receiver_name(&m.tokens, dot), Some("children".into()));

        let m2 = model("fn f() { lock_recover(&self.inner.children.get(i)); }");
        let open = m2.tokens.iter().position(|t| t.text == "lock_recover").unwrap() + 1;
        let close = crate::rules::matching_close(&m2.tokens, open).unwrap();
        assert_eq!(lock_name_of_args(&m2.tokens[open + 1..close]), Some("children".into()));
    }
}
