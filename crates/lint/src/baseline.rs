//! The ratchet baseline: grandfathered violation counts per (file, rule).
//!
//! `lint-baseline.json` pins the number of allowed findings for every file
//! and rule. `cascn-lint --check` fails when any (file, rule) count rises
//! above its baselined value — or appears at all when not baselined — so
//! contract debt can only shrink. `--update-baseline` regenerates the entry
//! map from the current scan while preserving the `pre_pr` header, which
//! records the violation counts measured before this tooling landed (the
//! reference point for burn-down accounting).
//!
//! The workspace builds offline with no serde, so this module carries a
//! ~100-line recursive-descent parser for exactly the JSON subset the
//! baseline uses (objects, strings, non-negative integers).
//!
//! ## Schema versions
//!
//! * **v1** — `version`, `pre_pr`, `entries`. Written before the
//!   concurrency passes existed.
//! * **v2** — adds `rules`: the rule ids the baseline was computed
//!   against, so a checked-in baseline records *which* contract set its
//!   counts mean. [`Baseline::parse`] accepts both; [`Baseline::to_json`]
//!   always writes v2, upgrading v1 files on the next `--update-baseline`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Finding;

/// Parsed `lint-baseline.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Rule ids this baseline's counts were computed against (schema v2).
    /// Empty for v1 files, which predate the concurrency passes.
    pub rules: Vec<String>,
    /// Total finding counts per rule measured before the lint pass existed;
    /// kept verbatim across `--update-baseline` runs.
    pub pre_pr: BTreeMap<String, u64>,
    /// Allowed finding counts: file → rule → count.
    pub entries: BTreeMap<String, BTreeMap<String, u64>>,
}

/// One ratchet failure: a (file, rule) pair whose count rose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetViolation {
    pub file: String,
    pub rule: String,
    pub baselined: u64,
    pub current: u64,
}

/// Aggregates findings into per-(file, rule) counts.
pub fn count_findings(findings: &[Finding]) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.file.clone()).or_default().entry(f.rule.to_string()).or_default() += 1;
    }
    counts
}

impl Baseline {
    /// Builds a baseline whose entries match `findings`, carrying `pre_pr`.
    /// The rule list is stamped from the current registry.
    pub fn from_findings(findings: &[Finding], pre_pr: BTreeMap<String, u64>) -> Baseline {
        let rules = crate::rules::RULES.iter().map(|r| r.id.to_string()).collect();
        Baseline { rules, pre_pr, entries: count_findings(findings) }
    }

    /// Compares a scan against the baseline. Every (file, rule) whose count
    /// exceeds its baselined value (0 when absent) is a violation.
    pub fn check(&self, findings: &[Finding]) -> Vec<RatchetViolation> {
        let mut out = Vec::new();
        for (file, rules) in count_findings(findings) {
            for (rule, current) in rules {
                let baselined =
                    self.entries.get(&file).and_then(|r| r.get(&rule)).copied().unwrap_or(0);
                if current > baselined {
                    out.push(RatchetViolation { file: file.clone(), rule, baselined, current });
                }
            }
        }
        out
    }

    /// Total baselined count across the given rules (burn-down accounting).
    pub fn total_for(&self, rules: &[&str]) -> u64 {
        self.entries
            .values()
            .flat_map(|m| m.iter())
            .filter(|(r, _)| rules.contains(&r.as_str()))
            .map(|(_, n)| n)
            .sum()
    }

    /// Serializes to the checked-in JSON format (stable key order).
    /// Always writes schema v2.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 2,\n  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&quote(r));
        }
        s.push_str("],\n  \"pre_pr\": {");
        write_counts(&mut s, &self.pre_pr, 4);
        s.push_str("},\n  \"entries\": {");
        let mut first = true;
        for (file, rules) in &self.entries {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    {}: {{", quote(file));
            write_counts(&mut s, rules, 6);
            s.push('}');
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parses the JSON format written by [`Baseline::to_json`] — schema v2
    /// or the legacy v1 (no `rules` key).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let top = value.as_obj().ok_or("baseline: top level must be an object")?;
        let mut baseline = Baseline::default();
        for (key, val) in top {
            match key.as_str() {
                "version" if !matches!(val.as_u64(), Some(1) | Some(2)) => {
                    return Err(format!("baseline: unsupported version {val:?}"));
                }
                "version" => {}
                "rules" => {
                    let Json::Arr(items) = val else {
                        return Err("baseline: rules must be an array".to_string());
                    };
                    for item in items {
                        match item {
                            Json::Str(s) => baseline.rules.push(s.clone()),
                            other => {
                                return Err(format!("baseline: rule id must be a string, got {other:?}"));
                            }
                        }
                    }
                }
                "pre_pr" => baseline.pre_pr = parse_counts(val)?,
                "entries" => {
                    let files = val.as_obj().ok_or("baseline: entries must be an object")?;
                    for (file, rules) in files {
                        baseline.entries.insert(file.clone(), parse_counts(rules)?);
                    }
                }
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        Ok(baseline)
    }
}

fn write_counts(s: &mut String, counts: &BTreeMap<String, u64>, indent: usize) {
    let mut first = true;
    for (rule, n) in counts {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "\n{:indent$}{}: {}", "", quote(rule), n);
    }
    if !first {
        let _ = write!(s, "\n{:indent$}", "", indent = indent.saturating_sub(2));
    }
}

fn parse_counts(val: &Json) -> Result<BTreeMap<String, u64>, String> {
    let obj = val.as_obj().ok_or("baseline: counts must be an object")?;
    let mut out = BTreeMap::new();
    for (rule, n) in obj {
        let n = n.as_u64().ok_or_else(|| format!("baseline: count for {rule} must be an integer"))?;
        out.insert(rule.clone(), n);
    }
    Ok(out)
}

/// Quotes and escapes a JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (objects, arrays, strings,
// integers, bool, null — the subset the baseline format needs).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            // lint: allow(float-eq) — exact integrality test on a parsed JSON number
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while matches!(b.get(*pos), Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')) {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", ch as char, pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *pos += 1;
            }
            let text = String::from_utf8_lossy(&b[start..*pos]);
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
        }
        _ => Err(format!("unexpected byte at offset {pos}", pos = *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(String::from_utf8_lossy(&out).into_owned());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        // \uXXXX — decode the code unit (BMP only; enough
                        // for the control-char escapes `quote` emits).
                        let hex = b.get(*pos + 1..*pos + 5).unwrap_or_default();
                        let code = u32::from_str_radix(&String::from_utf8_lossy(hex), 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        let ch = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    Some(&c) => out.push(c),
                    None => return Err("unterminated escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn finding(file: &str, rule: &'static str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "m".into(),
            excerpt: "e".into(),
        }
    }

    #[test]
    fn roundtrip_preserves_counts_and_header() {
        let findings = vec![
            finding("a.rs", "no-panic", 1),
            finding("a.rs", "no-panic", 9),
            finding("b.rs", "float-eq", 3),
        ];
        let mut pre = BTreeMap::new();
        pre.insert("no-panic".to_string(), 36);
        let b = Baseline::from_findings(&findings, pre);
        let text = b.to_json();
        let back = Baseline::parse(&text).expect("roundtrip parses");
        assert_eq!(back, b);
        assert_eq!(back.entries["a.rs"]["no-panic"], 2);
        assert_eq!(back.pre_pr["no-panic"], 36);
    }

    #[test]
    fn check_flags_increases_and_new_files_only() {
        let b = Baseline::from_findings(&[finding("a.rs", "no-panic", 1)], BTreeMap::new());
        // Same count: clean.
        assert!(b.check(&[finding("a.rs", "no-panic", 2)]).is_empty());
        // Count rose.
        let v = b.check(&[finding("a.rs", "no-panic", 1), finding("a.rs", "no-panic", 2)]);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].baselined, v[0].current), (1, 2));
        // New file not in the baseline.
        let v = b.check(&[finding("new.rs", "float-eq", 1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].baselined, 0);
        // Fewer findings than baselined: clean (the ratchet only tightens).
        assert!(b.check(&[]).is_empty());
    }

    #[test]
    fn total_for_sums_selected_rules() {
        let findings = vec![
            finding("a.rs", "no-panic", 1),
            finding("a.rs", "float-eq", 2),
            finding("b.rs", "no-partial-cmp", 3),
        ];
        let b = Baseline::from_findings(&findings, BTreeMap::new());
        assert_eq!(b.total_for(&["no-panic", "no-partial-cmp"]), 2);
        assert_eq!(b.total_for(&["float-eq"]), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"version\": 3}").is_err());
        assert!(Baseline::parse("{\"entries\": {\"f\": {\"r\": \"x\"}}}").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"rules\": [7]}").is_err());
    }

    #[test]
    fn v1_files_still_parse_and_upgrade_to_v2() {
        // A pre-concurrency baseline: version 1, no `rules` key.
        let v1 = "{\n  \"version\": 1,\n  \"pre_pr\": {\n    \"no-panic\": 36\n  },\n  \
                  \"entries\": {\n    \"a.rs\": {\n      \"no-panic\": 2\n    }\n  }\n}\n";
        let parsed = Baseline::parse(v1).expect("v1 parses");
        assert!(parsed.rules.is_empty(), "v1 has no rule list");
        assert_eq!(parsed.pre_pr["no-panic"], 36);
        assert_eq!(parsed.entries["a.rs"]["no-panic"], 2);

        // Re-serializing writes v2; the counts round-trip unchanged.
        let upgraded = parsed.to_json();
        assert!(upgraded.contains("\"version\": 2"));
        let back = Baseline::parse(&upgraded).expect("upgraded text parses");
        assert_eq!(back, parsed);
    }

    #[test]
    fn v2_carries_the_rule_registry() {
        let b = Baseline::from_findings(&[], BTreeMap::new());
        assert_eq!(b.rules.len(), crate::rules::RULES.len());
        assert!(b.rules.iter().any(|r| r == "lock-order"));
        let text = b.to_json();
        let back = Baseline::parse(&text).expect("v2 roundtrips");
        assert_eq!(back.rules, b.rules);
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
