//! The four concurrency-contract passes, built on [`crate::resolve`].
//!
//! | rule                    | contract                                         |
//! |-------------------------|--------------------------------------------------|
//! | `lock-order`            | the per-crate acquired-while-held graph is acyclic |
//! | `guard-across-blocking` | no live guard spans a blocking call (serve crate) |
//! | `wait-loop`             | every `Condvar` wait sits inside a predicate loop |
//! | `atomic-ordering`       | `Relaxed` never carries cross-thread control flow (serve crate) |
//!
//! The passes walk resolved function bodies tracking live guards through
//! block scopes, `drop(guard)` calls, and statement-temporary lifetimes.
//! Guard acquisition keys on the canonical `cascn_serve::sync` helpers
//! (`lock_recover(&self.queue)` names its lock in the argument) and falls
//! back to raw zero-argument `.lock()` / `.read()` / `.write()` receivers.
//! Call edges within the crate propagate acquisitions: a function that
//! locks `slots` contributes a `queue → slots` edge when called under a
//! `queue` guard, and a guard-*returning* helper (`-> MutexGuard<..>`)
//! acquires on behalf of its caller.
//!
//! `atomic-ordering` carries one built-in allowlist: the recency stamps
//! `last_used` / `tick` in `crates/serve/src/cache.rs`, whose relaxed
//! stores only steer LRU eviction (staleness degrades the eviction choice,
//! never correctness — documented at the field definitions there).

use crate::resolve::{lock_name_of_args, receiver_name, FileModel, SyncRole};
use crate::rules::matching_close;
use crate::lexer::{TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

pub const LOCK_ORDER: &str = "lock-order";
pub const GUARD_BLOCKING: &str = "guard-across-blocking";
pub const WAIT_LOOP: &str = "wait-loop";
pub const ATOMIC_ORDERING: &str = "atomic-ordering";

/// (file index into `models`, line, rule, message) — raw, pre-suppression.
pub type RawFinding = (usize, u32, &'static str, String);

/// Blocking calls a guard must not span: process reaping, sleeps, socket
/// and pipe I/O, channel receives. `wait`/`wait_timeout` count only when
/// the receiver is *not* a `Condvar` (a condvar wait releases the guard it
/// takes; `Child::wait` and friends do not release anything).
const BLOCKING: &[&str] = &[
    "accept", "connect", "connect_timeout", "read", "read_exact", "read_line", "read_to_end",
    "read_to_string", "recv", "recv_deadline", "recv_timeout", "sleep", "wait", "wait_timeout",
    "write", "write_all",
];

const ATOMIC_METHODS: &[&str] = &[
    "compare_exchange", "compare_exchange_weak", "fetch_add", "fetch_and", "fetch_max",
    "fetch_min", "fetch_nand", "fetch_or", "fetch_sub", "fetch_update", "fetch_xor", "load",
    "store", "swap",
];

/// Relaxed recency stamps documented at their definitions in the spectral
/// cache: staleness only degrades the LRU victim choice.
const RELAXED_ALLOWLIST: &[(&str, &str)] =
    &[("crates/serve/src/cache.rs", "last_used"), ("crates/serve/src/cache.rs", "tick")];

/// Scans `models` — the files of one crate — and returns raw findings for
/// all four passes. Suppression filtering happens in [`crate::rules`].
pub fn scan(models: &[FileModel]) -> Vec<RawFinding> {
    let ctx = CrateCtx::build(models);
    let mut out = Vec::new();

    let mut facts: Vec<FnFacts> = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        for f in &m.functions {
            if f.is_test {
                continue;
            }
            if let Some(body) = f.body {
                facts.push(walk_fn(fi, m, f.name.clone(), &f.params, body, &ctx, &mut out));
            }
        }
    }

    lock_order(&facts, &mut out);

    for (fi, m) in models.iter().enumerate() {
        if m.class.concurrency {
            atomic_ordering(fi, m, &ctx, &mut out);
        }
    }

    out.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
    out.dedup();
    out
}

/// Crate-wide name tables the walk resolves against.
struct CrateCtx {
    /// Field name → role, merged across every file of the crate.
    fields: BTreeMap<String, SyncRole>,
    /// Function name → (returns a guard, defined-with-body). Same-name
    /// methods merge conservatively.
    fns: BTreeMap<String, bool>,
}

impl CrateCtx {
    fn build(models: &[FileModel]) -> Self {
        let mut fields = BTreeMap::new();
        let mut fns = BTreeMap::new();
        for m in models {
            for (k, v) in &m.fields {
                fields.entry(k.clone()).or_insert(*v);
            }
            for f in &m.functions {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                let e = fns.entry(f.name.clone()).or_insert(false);
                *e |= f.returns_guard;
            }
        }
        Self { fields, fns }
    }
}

/// What a function acquires, where, and whom it calls holding what.
struct FnFacts {
    name: String,
    /// Locks acquired directly in the body (named or via sync helpers).
    acquires: BTreeSet<String>,
    /// `held → acquired` pairs with the acquisition site.
    nested: Vec<(String, String, usize, u32)>,
    /// `(callee, locks held at the call, file, line)`.
    calls: Vec<(String, Vec<String>, usize, u32)>,
}

struct Guard {
    lock: String,
    name: Option<String>,
    depth: isize,
    /// Statement-temporary: dies at the next `;` on its depth.
    temp: bool,
}

fn is_op(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Op && t.text == s
}

/// Walks one function body: tracks live guards, emits `wait-loop` and
/// `guard-across-blocking` findings inline, and records the acquisition /
/// call-edge facts `lock-order` aggregates afterwards.
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    file: usize,
    m: &FileModel,
    name: String,
    params: &BTreeMap<String, SyncRole>,
    body: (usize, usize),
    ctx: &CrateCtx,
    out: &mut Vec<RawFinding>,
) -> FnFacts {
    let toks = &m.tokens;
    let mut facts = FnFacts { name, acquires: BTreeSet::new(), nested: Vec::new(), calls: Vec::new() };
    let mut guards: Vec<Guard> = Vec::new();
    let mut locals: BTreeMap<String, SyncRole> = params.clone();
    // Local alias → the lock field it borrows (`let slot = &self.children[i]`).
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();
    // Per-`{` flags: is this block a loop body?
    let mut blocks: Vec<bool> = Vec::new();
    let mut loop_pending = false;
    // An open `let` binding: (first bound name, token index after `let`).
    let mut pending_let: Option<(Option<String>, usize)> = None;
    let mut depth = 0isize;

    let role_of = |name: &str, locals: &BTreeMap<String, SyncRole>, aliases: &BTreeMap<String, String>| -> SyncRole {
        if let Some(r) = locals.get(name) {
            return *r;
        }
        let resolved = aliases.get(name).map(String::as_str).unwrap_or(name);
        ctx.fields.get(resolved).copied().unwrap_or(SyncRole::Unknown)
    };

    let mut i = body.0;
    while i <= body.1.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if m.masked.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        match t.kind {
            TokKind::Open if t.text == "{" => {
                depth += 1;
                blocks.push(loop_pending);
                loop_pending = false;
            }
            TokKind::Close if t.text == "}" => {
                guards.retain(|g| g.depth < depth);
                blocks.pop();
                depth -= 1;
            }
            TokKind::Op if t.text == ";" => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                // A `let` that bound no guard may alias a lock field:
                // `let Some(slot) = self.children.get(i) else …`.
                if let Some((Some(bind), start)) = pending_let.take() {
                    let init: Vec<&str> = toks[start..i]
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.as_str())
                        .collect();
                    if let Some(field) = init.iter().find(|id| {
                        matches!(ctx.fields.get(**id), Some(SyncRole::Mutex | SyncRole::RwLock | SyncRole::Condvar))
                    }) {
                        aliases.insert(bind.clone(), (*field).to_string());
                    }
                    if let Some(role) = init.iter().find_map(|id| {
                        let r = crate::resolve::role_of_type_tokens(std::iter::once(*id));
                        (r != SyncRole::Unknown).then_some(r)
                    }) {
                        locals.insert(bind, role);
                    }
                }
            }
            TokKind::Ident => {
                let next_open_paren =
                    matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Open && n.text == "(");
                let prev_dot = i > 0 && is_op(&toks[i - 1], ".");
                let prev_path = i > 0 && is_op(&toks[i - 1], "::");
                let prev_fn = i > 0 && crate::rules::is_ident_tok(&toks[i - 1], "fn");
                match t.text.as_str() {
                    "let" => {
                        pending_let = Some((binding_name(toks, i + 1), i + 1));
                    }
                    "loop" | "while" | "for" if !prev_dot => {
                        loop_pending = true;
                        // `for slot in &self.children { … }` aliases the
                        // loop binding to the lock field it iterates over.
                        if t.text == "for" {
                            if let Some(bind) = binding_name(toks, i + 1) {
                                let head_end = toks[i..]
                                    .iter()
                                    .position(|t| t.kind == TokKind::Open && t.text == "{")
                                    .map_or(toks.len(), |p| i + p);
                                let field = toks[i..head_end]
                                    .iter()
                                    .filter(|t| t.kind == TokKind::Ident)
                                    .map(|t| t.text.as_str())
                                    .find(|id| {
                                        matches!(
                                            ctx.fields.get(*id),
                                            Some(SyncRole::Mutex | SyncRole::RwLock | SyncRole::Condvar)
                                        )
                                    });
                                if let Some(f) = field {
                                    aliases.insert(bind, f.to_string());
                                }
                            }
                        }
                    }
                    "drop" if next_open_paren && !prev_dot => {
                        if let Some(arg) = toks.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                            let victim = arg.text.clone();
                            guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                        }
                    }
                    "lock_recover" | "read_recover" | "write_recover"
                        if next_open_paren && !prev_fn && !prev_dot =>
                    {
                        if let Some(close) = matching_close(toks, i + 1) {
                            if let Some(lock) = lock_name_of_args(&toks[i + 2..close]) {
                                let lock = aliases.get(&lock).cloned().unwrap_or(lock);
                                let consumed = chain_consumes_guard(toks, close);
                                acquire(&mut facts, &mut guards, &mut pending_let, lock, file, t.line, depth, consumed);
                            }
                            i = skip_args(i, close);
                            continue;
                        }
                    }
                    "wait_recover" | "wait_timeout_recover" if next_open_paren && !prev_fn => {
                        record_wait(&blocks, file, t.line, out);
                    }
                    "wait" | "wait_timeout"
                        if next_open_paren
                            && prev_dot
                            && receiver_name(toks, i - 1)
                                .is_some_and(|r| role_of(&r, &locals, &aliases) == SyncRole::Condvar) =>
                    {
                        record_wait(&blocks, file, t.line, out);
                    }
                    "lock" | "read" | "write"
                        if next_open_paren
                            && prev_dot
                            && matching_close(toks, i + 1) == Some(i + 2) =>
                    {
                        // Zero-argument `.lock()` / `.read()` / `.write()`:
                        // raw acquisition of the receiver.
                        if let Some(recv) = receiver_name(toks, i - 1) {
                            let lock = aliases.get(&recv).cloned().unwrap_or(recv);
                            let consumed = chain_consumes_guard(toks, i + 2);
                            acquire(&mut facts, &mut guards, &mut pending_let, lock, file, t.line, depth, consumed);
                        }
                        i += 3;
                        continue;
                    }
                    "spawn" if next_open_paren && prev_dot => {
                        // `Command::new(..)…spawn()` blocks on process
                        // creation; thread/scope spawns do not.
                        let stmt = statement_start(toks, i);
                        let is_command =
                            toks[stmt..i].iter().any(|t| t.kind == TokKind::Ident && t.text == "Command");
                        if is_command {
                            report_blocking(m, &guards, "spawn", file, t.line, out);
                        }
                    }
                    b if BLOCKING.contains(&b) && next_open_paren && (prev_dot || (prev_path && b == "sleep")) => {
                        report_blocking(m, &guards, b, file, t.line, out);
                        // A blocking name can shadow a crate fn (e.g.
                        // `ShutdownSignal::wait`): still record the call
                        // edge so lock-order sees through it.
                        record_call(&mut facts, ctx, &mut guards, &mut pending_let, b, file, t.line, depth);
                    }
                    other if next_open_paren && !prev_fn && ctx.fns.contains_key(other) => {
                        record_call(&mut facts, ctx, &mut guards, &mut pending_let, other, file, t.line, depth);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// First bound name after `let`: skips `mut`/`ref`, opens, and
/// constructor-shaped idents (`Some(`, `Ok(`), so `let Some(slot) = …`
/// binds `slot` and `let (next, _) = …` binds `next`.
fn binding_name(toks: &[Token], mut i: usize) -> Option<String> {
    let mut budget = 16usize;
    while budget > 0 {
        budget -= 1;
        let t = toks.get(i)?;
        match t.kind {
            TokKind::Ident if t.text == "mut" || t.text == "ref" => i += 1,
            TokKind::Ident
                if matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Open && n.text == "(") =>
            {
                i += 1;
            }
            TokKind::Ident => return Some(t.text.clone()),
            TokKind::Open => i += 1,
            _ => return None,
        }
    }
    None
}

/// Token index where the current statement began (after the nearest `;`,
/// `{`, or `}`), for statement-scoped lookback.
fn statement_start(toks: &[Token], from: usize) -> usize {
    let mut k = from;
    while k > 0 {
        let t = &toks[k - 1];
        if is_op(t, ";") || matches!(t.kind, TokKind::Open | TokKind::Close if t.text == "{" || t.text == "}") {
            break;
        }
        k -= 1;
    }
    k
}

fn skip_args(_i: usize, close: usize) -> usize {
    close + 1
}

/// After an acquisition call's `)`, a further method chain consumes the
/// guard as a statement temporary (`lock_recover(slot).take()`) — except
/// the adapters that hand the guard straight back: `.unwrap()`,
/// `.expect(..)`, `.unwrap_or_else(..)` on a raw `.lock()` result.
fn chain_consumes_guard(toks: &[Token], close: usize) -> bool {
    let mut k = close;
    loop {
        if !matches!(toks.get(k + 1), Some(d) if is_op(d, ".")) {
            return false;
        }
        let Some(m) = toks.get(k + 2) else { return false };
        if m.kind != TokKind::Ident {
            return false;
        }
        if !matches!(m.text.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
            return true;
        }
        match toks.get(k + 3) {
            Some(o) if o.kind == TokKind::Open && o.text == "(" => {
                match matching_close(toks, k + 3) {
                    Some(c) => k = c,
                    None => return false,
                }
            }
            _ => return false,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    facts: &mut FnFacts,
    guards: &mut Vec<Guard>,
    pending_let: &mut Option<(Option<String>, usize)>,
    lock: String,
    file: usize,
    line: u32,
    depth: isize,
    consumed: bool,
) {
    // Self-edges stay: re-locking a held `Mutex` self-deadlocks.
    for g in guards.iter() {
        facts.nested.push((g.lock.clone(), lock.clone(), file, line));
    }
    facts.acquires.insert(lock.clone());
    let (name, temp) = if consumed {
        // The chain keeps the guard alive only to the end of the statement;
        // the `let` (if any) binds the chained result, not the guard.
        pending_let.take();
        (None, true)
    } else {
        match pending_let.take() {
            Some((n, _)) => (n, false),
            None => (None, true),
        }
    };
    guards.push(Guard { lock, name, depth, temp });
}

#[allow(clippy::too_many_arguments)]
fn record_call(
    facts: &mut FnFacts,
    ctx: &CrateCtx,
    guards: &mut Vec<Guard>,
    pending_let: &mut Option<(Option<String>, usize)>,
    callee: &str,
    file: usize,
    line: u32,
    depth: isize,
) {
    let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
    facts.calls.push((callee.to_string(), held, file, line));
    // A guard-returning helper acquires for its caller; the lock names are
    // substituted from the callee's acquire set after the walk.
    if ctx.fns.get(callee).copied().unwrap_or(false) {
        let (name, temp) = match pending_let.take() {
            Some((n, _)) => (n, false),
            None => (None, true),
        };
        guards.push(Guard { lock: format!("fn:{callee}"), name, depth, temp });
    }
}

fn record_wait(blocks: &[bool], file: usize, line: u32, out: &mut Vec<RawFinding>) {
    if !blocks.iter().any(|b| *b) {
        out.push((
            file,
            line,
            WAIT_LOOP,
            "`Condvar` wait outside a predicate loop — waits wake spuriously and can race \
             notifications; re-check the condition in a `while` / `loop` around the wait"
                .to_string(),
        ));
    }
}

fn report_blocking(
    m: &FileModel,
    guards: &[Guard],
    call: &str,
    file: usize,
    line: u32,
    out: &mut Vec<RawFinding>,
) {
    if !m.class.concurrency {
        return;
    }
    if let Some(g) = guards.last() {
        out.push((
            file,
            line,
            GUARD_BLOCKING,
            format!(
                "guard on `{}` is live across blocking `{call}(..)` — every thread touching \
                 that lock stalls behind the call; drop the guard first",
                g.lock
            ),
        ));
    }
}

/// Aggregates per-function facts into the per-crate acquired-while-held
/// graph and reports every edge that participates in a cycle.
fn lock_order(facts: &[FnFacts], out: &mut Vec<RawFinding>) {
    // Transitive acquire sets: what does calling `f` end up locking?
    let mut acquire_sets: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for f in facts {
        let set = acquire_sets.entry(f.name.as_str()).or_default();
        set.extend(f.acquires.iter().filter(|l| !l.starts_with("fn:")).cloned());
    }
    loop {
        let mut changed = false;
        for f in facts {
            let mut add = BTreeSet::new();
            for (callee, _, _, _) in &f.calls {
                if let Some(s) = acquire_sets.get(callee.as_str()) {
                    add.extend(s.iter().cloned());
                }
            }
            let set = acquire_sets.entry(f.name.as_str()).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }
    let expand = |lock: &str| -> Vec<String> {
        match lock.strip_prefix("fn:") {
            Some(f) => acquire_sets.get(f).into_iter().flatten().cloned().collect(),
            None => vec![lock.to_string()],
        }
    };

    // Edges with representative sites: direct nesting plus call-through.
    let mut edges: BTreeMap<(String, String), (usize, u32, String)> = BTreeMap::new();
    let mut add_edge = |from: String, to: String, site: (usize, u32, String)| {
        edges.entry((from, to)).or_insert(site);
    };
    for f in facts {
        for (held, acq, file, line) in &f.nested {
            for h in expand(held) {
                for a in expand(acq) {
                    add_edge(h.clone(), a, (*file, *line, f.name.clone()));
                }
            }
        }
        for (callee, held, file, line) in &f.calls {
            let Some(callee_locks) = acquire_sets.get(callee.as_str()) else { continue };
            for h in held.iter().flat_map(|h| expand(h)) {
                for a in callee_locks {
                    add_edge(h.clone(), a.clone(), (*file, *line, format!("{} via {callee}", f.name)));
                }
            }
        }
    }

    // An edge A→B is a finding when B can reach A (including A == B).
    let adj: BTreeMap<&str, Vec<&str>> = {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            adj.entry(a.as_str()).or_default().push(b.as_str());
        }
        adj
    };
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for next in adj.get(n).into_iter().flatten() {
                if *next == to {
                    return true;
                }
                stack.push(next);
            }
        }
        false
    };
    for ((a, b), (file, line, via)) in &edges {
        let cyclic = a == b || reaches(b, a);
        if !cyclic {
            continue;
        }
        let shape = if a == b {
            format!("`{a}` is acquired while already held (in `{via}`)")
        } else {
            format!("`{b}` is acquired while holding `{a}` (in `{via}`), and elsewhere in this crate `{a}` is acquired while holding `{b}`")
        };
        out.push((
            *file,
            *line,
            LOCK_ORDER,
            format!("{shape} — the inverted orders can deadlock under concurrency; pick one global order"),
        ));
    }
}

/// Flags `Ordering::Relaxed` carrying cross-thread control flow: any op on
/// an `AtomicBool`, any non-allowlisted `store`, any read-modify-write
/// handoff, and any `load` feeding an `if`/`while`/`match` condition.
/// Plain `fetch_add`-style counters stay legal — that is what `Relaxed`
/// is for.
fn atomic_ordering(file: usize, m: &FileModel, ctx: &CrateCtx, out: &mut Vec<RawFinding>) {
    let toks = &m.tokens;
    // Condition spans: from `if` / `while` / `match` to the block they open.
    let mut in_cond = vec![false; toks.len()];
    let mut cond = false;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "if" | "while" | "match") => cond = true,
            TokKind::Open if t.text == "{" => cond = false,
            TokKind::Op if t.text == ";" || t.text == "=>" => cond = false,
            _ => {}
        }
        in_cond[i] = cond;
    }
    // Local atomics (fixtures mostly): `let flag = AtomicBool::new(..)`.
    let mut locals: BTreeMap<String, SyncRole> = BTreeMap::new();
    for f in &m.functions {
        for (k, v) in &f.params {
            locals.insert(k.clone(), *v);
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "let"
            && toks.len() > i + 3
        {
            if let Some(name) = binding_name(toks, i + 1) {
                let stmt_end = toks[i..].iter().position(|t| is_op(t, ";")).map_or(toks.len(), |p| i + p);
                let role = crate::resolve::role_of_type_tokens(
                    toks[i..stmt_end].iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()),
                );
                if matches!(role, SyncRole::AtomicBool | SyncRole::AtomicUint) {
                    locals.insert(name, role);
                }
            }
        }
    }

    for (i, t) in toks.iter().enumerate() {
        if m.masked.get(i).copied().unwrap_or(false)
            || t.kind != TokKind::Ident
            || !ATOMIC_METHODS.contains(&t.text.as_str())
            || !(i > 0 && is_op(&toks[i - 1], "."))
            || !matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Open && n.text == "(")
        {
            continue;
        }
        let Some(close) = matching_close(toks, i + 1) else { continue };
        let relaxed = toks[i + 2..close].iter().any(|a| a.kind == TokKind::Ident && a.text == "Relaxed");
        if !relaxed {
            continue;
        }
        let recv = receiver_name(toks, i - 1);
        let recv_name = recv.as_deref().unwrap_or("?");
        if RELAXED_ALLOWLIST.contains(&(m.label.as_str(), recv_name)) {
            continue;
        }
        let role = locals
            .get(recv_name)
            .copied()
            .or_else(|| ctx.fields.get(recv_name).copied())
            .unwrap_or(SyncRole::Unknown);
        let method = t.text.as_str();
        let problem = if role == SyncRole::AtomicBool {
            Some(format!(
                "`Relaxed` {method} on the cross-thread flag `{recv_name}` — a reader can miss \
                 the writes the flag is meant to publish"
            ))
        } else if method == "store" {
            Some(format!(
                "`Relaxed` store to `{recv_name}` publishes state without ordering — readers \
                 may observe it before the writes it guards"
            ))
        } else if matches!(method, "compare_exchange" | "compare_exchange_weak" | "swap" | "fetch_update") {
            Some(format!(
                "`Relaxed` read-modify-write handoff on `{recv_name}` — ownership transfer \
                 needs `Acquire`/`Release` ordering"
            ))
        } else if method == "load" && in_cond.get(i).copied().unwrap_or(false) {
            Some(format!(
                "`Relaxed` load of `{recv_name}` gates control flow — use `Acquire` (or \
                 `SeqCst`) so the branch observes the writes it depends on"
            ))
        } else {
            None
        };
        if let Some(msg) = problem {
            out.push((
                file,
                t.line,
                ATOMIC_ORDERING,
                format!("{msg}; `Relaxed` is reserved for statistics counters and the documented cache.rs recency stamps"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_model(label: &str, src: &str) -> FileModel {
        FileModel::build(
            label,
            src,
            crate::rules::FileClass { compute: false, hot: false, concurrency: true },
        )
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        let models = [serve_model("crates/serve/src/x.rs", src)];
        scan(&models).into_iter().map(|(_, _, r, _)| r).collect()
    }

    #[test]
    fn relocking_a_held_mutex_is_a_self_cycle() {
        let src = "struct S { queue: Mutex<u32> }\n\
                   impl S { fn f(&self) { let a = lock_recover(&self.queue); let b = lock_recover(&self.queue); } }";
        assert_eq!(rules_of(src), [LOCK_ORDER]);
    }

    #[test]
    fn drop_releases_the_guard_before_blocking() {
        let held = "struct S { log: Mutex<u32> }\n\
                    impl S { fn f(&self, r: &mut R) { let g = lock_recover(&self.log); let _ = r.read_line(&mut s); } }";
        assert_eq!(rules_of(held), [GUARD_BLOCKING]);
        let dropped = "struct S { log: Mutex<u32> }\n\
                       impl S { fn f(&self, r: &mut R) { let g = lock_recover(&self.log); drop(g); let _ = r.read_line(&mut s); } }";
        assert_eq!(rules_of(dropped), Vec::<&str>::new());
    }

    #[test]
    fn cache_recency_stamps_are_allowlisted() {
        let src = "struct E { last_used: AtomicU64 }\n\
                   impl E { fn touch(&self, now: u64) { self.last_used.store(now, Ordering::Relaxed); } }";
        let cache = [serve_model("crates/serve/src/cache.rs", src)];
        assert!(scan(&cache).is_empty(), "cache.rs recency stores are documented-legal");
        // The same code anywhere else is a finding.
        assert_eq!(rules_of(src), [ATOMIC_ORDERING]);
    }

    #[test]
    fn guard_returning_helper_transfers_its_acquisition() {
        // `grab` returns a guard on `state`; `f` holds `queue` while
        // calling it, and `g` nests the opposite way → cycle via the
        // helper's transferred acquisition.
        let src = "struct S { queue: Mutex<u32>, state: Mutex<u32> }\n\
                   impl S {\n\
                     fn grab(&self) -> MutexGuard<'_, u32> { lock_recover(&self.state) }\n\
                     fn f(&self) { let q = lock_recover(&self.queue); let s = self.grab(); }\n\
                     fn g(&self) { let s = lock_recover(&self.state); let q = lock_recover(&self.queue); }\n\
                   }";
        let found = rules_of(src);
        assert!(
            found.iter().filter(|r| **r == LOCK_ORDER).count() >= 2,
            "both directions of the helper-mediated inversion are findings: {found:?}"
        );
    }

    #[test]
    fn condvar_wait_through_a_reference_parameter() {
        let src = "fn park(cv: &Condvar, m: &Mutex<bool>) { let g = lock_recover(m); let g = cv.wait(g).unwrap_or_else(|e| e.into_inner()); }";
        assert_eq!(rules_of(src), [WAIT_LOOP]);
        let looped = "fn park(cv: &Condvar, m: &Mutex<bool>) { let mut g = lock_recover(m); while !*g { g = cv.wait(g).unwrap_or_else(|e| e.into_inner()); } }";
        assert_eq!(rules_of(looped), Vec::<&str>::new());
    }

    #[test]
    fn test_functions_are_exempt_from_every_pass() {
        let src = "struct S { queue: Mutex<u32>, state: Mutex<u32> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                     fn f(s: &S) { let a = lock_recover(&s.state); let b = lock_recover(&s.queue); }\n\
                     fn g(s: &S) { let a = lock_recover(&s.queue); let b = lock_recover(&s.state); }\n\
                   }";
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }
}
