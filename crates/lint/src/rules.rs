//! The cascn contract rules: registry, file classification, suppression,
//! and the five token-stream rules.
//!
//! Token rules encode the invariants PR 1 (error taxonomy, NaN-safe
//! ordering) and PR 2 (bit-identical parallel training) established by
//! hand:
//!
//! | id                | contract                                              |
//! |-------------------|-------------------------------------------------------|
//! | `no-panic`        | no `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!`/ |
//! |                   | `unimplemented!` in non-test library code             |
//! | `no-partial-cmp`  | no `partial_cmp(..).unwrap()` — use `total_cmp`       |
//! | `float-eq`        | no `==`/`!=` against float expressions                |
//! | `nondeterminism`  | no `HashMap`/`HashSet`/`SystemTime`/`Instant` in      |
//! |                   | compute crates (tensor/autograd/nn/graph)             |
//! | `cast-truncation` | no narrowing `as` casts in index arithmetic in the    |
//! |                   | tensor/graph hot loops                                |
//!
//! Four more rules — `lock-order`, `guard-across-blocking`, `wait-loop`,
//! `atomic-ordering` — run over the resolved model built by
//! [`crate::resolve`] and live in [`crate::concurrency`]; their findings
//! flow back through the same suppression machinery here.
//!
//! Code under `#[cfg(test)]` / `#[test]` is exempt from every rule — tests
//! assert exact values and unwrap fixtures by design. Intentional violations
//! in library code are suppressed with
//! `// lint: allow(<rule>) — <justification>` on the finding line or the
//! line above; a directive without a justification is itself a finding
//! (`allow-justification`).

use crate::lexer::{Comment, TokKind, Token};
use crate::resolve::FileModel;

/// One rule's identity and one-line contract, for `--rules` and the docs.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
}

/// The rule registry. `allow-justification` is a meta-rule emitted by the
/// suppression machinery itself and cannot be allowed away.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-panic",
        summary: "no unwrap/expect/panic!/todo!/unreachable!/unimplemented! in non-test library code — route failures through CascnError",
    },
    Rule {
        id: "no-partial-cmp",
        summary: "no partial_cmp(..).unwrap() — use total_cmp for a NaN-safe total order",
    },
    Rule {
        id: "float-eq",
        summary: "no ==/!= comparisons against f32/f64 expressions — exact float equality hides NaN and rounding hazards",
    },
    Rule {
        id: "nondeterminism",
        summary: "no HashMap/HashSet/SystemTime/Instant in compute crates — iteration order and wall-clock reads break bit-identical training",
    },
    Rule {
        id: "cast-truncation",
        summary: "no narrowing `as` casts inside index arithmetic in tensor/graph hot loops — silent wrap corrupts indexing",
    },
    Rule {
        id: "lock-order",
        summary: "the per-crate acquired-while-held graph must be acyclic — inverted lock orders deadlock under concurrency",
    },
    Rule {
        id: "guard-across-blocking",
        summary: "no live Mutex/RwLock guard across a blocking call (socket/pipe I/O, Child::wait, sleep, recv, Command::spawn) in the serving tier",
    },
    Rule {
        id: "wait-loop",
        summary: "every Condvar wait/wait_timeout sits inside a predicate loop — waits wake spuriously and can race notifications",
    },
    Rule {
        id: "atomic-ordering",
        summary: "Ordering::Relaxed never carries cross-thread control flow — reserved for statistics counters and the documented cache.rs recency stamps",
    },
];

/// One finding: where, which rule, why, and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub excerpt: String,
}

/// Which rule families apply to a file, derived from its crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// tensor / autograd / nn / graph: the deterministic compute core.
    pub compute: bool,
    /// tensor / graph: indexing-heavy hot loops.
    pub hot: bool,
    /// serve: the multi-threaded serving tier — gates the
    /// `guard-across-blocking` and `atomic-ordering` passes.
    /// `lock-order` and `wait-loop` run everywhere.
    pub concurrency: bool,
}

/// Derives the [`FileClass`] from a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    let compute = ["crates/tensor/", "crates/autograd/", "crates/nn/", "crates/graph/"]
        .iter()
        .any(|p| path.contains(p));
    let hot = ["crates/tensor/", "crates/graph/"].iter().any(|p| path.contains(p));
    let concurrency = path.contains("crates/serve/");
    FileClass { compute, hot, concurrency }
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unreachable", "unimplemented"];
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];
const NARROWING: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
/// Keywords that can precede `[` without making it an index expression
/// (slice patterns, array types, repeat expressions).
const NON_INDEX_BEFORE_BRACKET: &[&str] = &[
    "let", "mut", "ref", "in", "match", "return", "if", "while", "else", "const", "static", "as",
    "box", "move", "dyn", "impl", "where", "for",
];

/// Scans one file's source standalone — token rules plus the concurrency
/// passes over a single-file crate model — and returns its findings,
/// already filtered through test-code masking and `lint: allow`
/// suppression directives. Workspace scans go through
/// [`crate::scan_workspace`] instead, which groups files per crate so the
/// concurrency passes see cross-file lock graphs.
pub fn scan_source(file: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let models = [FileModel::build(file, src, class)];
    let mut raw = token_rules(&models[0]);
    for (_file, line, rule, message) in crate::concurrency::scan(&models) {
        raw.push((line, rule, message));
    }
    finish(&models[0], raw, true)
}

/// Runs the five token-stream rules over one resolved file.
pub(crate) fn token_rules(m: &FileModel) -> Vec<(u32, &'static str, String)> {
    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();
    rule_no_panic(&m.tokens, &m.masked, &mut raw);
    rule_no_partial_cmp(&m.tokens, &m.masked, &mut raw);
    rule_float_eq(&m.tokens, &m.masked, &mut raw);
    if m.class.compute {
        rule_nondeterminism(&m.tokens, &m.masked, &mut raw);
    }
    if m.class.hot {
        rule_cast_truncation(&m.tokens, &m.masked, &mut raw);
    }
    raw
}

/// Applies the suppression machinery to one file's raw findings.
///
/// `emit_allow_meta` controls whether unjustified `lint: allow` directives
/// surface as `allow-justification` meta findings — the workspace scan
/// passes a file through here twice (token rules, then the per-crate
/// concurrency findings) and must emit the meta findings exactly once.
pub(crate) fn finish(
    m: &FileModel,
    raw: Vec<(u32, &'static str, String)>,
    emit_allow_meta: bool,
) -> Vec<Finding> {
    let allows = parse_allows(&m.comments);
    let mut findings: Vec<Finding> = Vec::new();
    for (line, rule, message) in raw {
        let covered = allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule));
        if !covered {
            findings.push(Finding {
                file: m.label.clone(),
                line,
                rule,
                message,
                excerpt: m.excerpt(line),
            });
        }
    }
    // An allow directive must carry a justification: the contract is that
    // every suppression documents *why* the violation is sound.
    if emit_allow_meta {
        for a in &allows {
            if !a.justified {
                findings.push(Finding {
                    file: m.label.clone(),
                    line: a.line,
                    rule: "allow-justification",
                    message: "lint: allow(..) directive without a justification — append `— <why this is sound>`".to_string(),
                    excerpt: m.excerpt(a.line),
                });
            }
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Test-code masking
// ---------------------------------------------------------------------------

fn is_op(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Op && t.text == s
}

fn is_open(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Open && t.text == s
}

fn is_close(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Close && t.text == s
}

pub(crate) fn is_ident_tok(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Finds the index of the bracket that closes the opener at `open`, matching
/// only the opener's own bracket kind (sufficient for well-formed code).
pub(crate) fn matching_close(toks: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if is_open(t, o) {
            depth += 1;
        } else if is_close(t, c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Marks every token that belongs to test-only code: items annotated
/// `#[test]` or `#[cfg(test)]` (attribute containing the ident `test` but
/// not `not`, so `#[cfg(not(test))]` stays live code), including the whole
/// body of `#[cfg(test)] mod tests { ... }`.
pub(crate) fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_op(&toks[i], "#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = matches!(toks.get(j), Some(t) if is_op(t, "!"));
        if inner {
            j += 1;
        }
        let Some(tj) = toks.get(j) else { break };
        if !is_open(tj, "[") {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_close(toks, j) else { break };
        let attr = &toks[j + 1..attr_end];
        let is_test = attr.iter().any(|t| is_ident_tok(t, "test")) && !attr.iter().any(|t| is_ident_tok(t, "not"));
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the entire file is test code.
            mask.iter_mut().for_each(|m| *m = true);
            return mask;
        }
        // Skip any further attributes on the same item.
        let mut p = attr_end + 1;
        while p + 1 < toks.len() && is_op(&toks[p], "#") && is_open(&toks[p + 1], "[") {
            match matching_close(toks, p + 1) {
                Some(e) => p = e + 1,
                None => break,
            }
        }
        // Find the item body: the first `{` outside parens/brackets, unless a
        // `;` ends the item first (`#[cfg(test)] use …;`, `mod tests;`).
        let mut depth = 0isize;
        let mut body: Option<usize> = None;
        let mut q = p;
        while let Some(t) = toks.get(q) {
            match t.kind {
                TokKind::Open if t.text != "{" => depth += 1,
                TokKind::Close if t.text != "}" => depth -= 1,
                TokKind::Open if depth == 0 => {
                    body = Some(q);
                    break;
                }
                TokKind::Open => {}
                TokKind::Op if t.text == ";" && depth == 0 => break,
                _ => {}
            }
            q += 1;
        }
        let end = match body.and_then(|b| matching_close(toks, b)) {
            Some(close) => close,
            None => q.min(toks.len().saturating_sub(1)),
        };
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

pub(crate) struct Allow {
    line: u32,
    rules: Vec<String>,
    justified: bool,
}

/// Parses `lint: allow(rule-a, rule-b) — justification` directives out of
/// the comment side-channel.
pub(crate) fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint:") else { continue };
        let rest = c.text[pos + 5..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else { continue };
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> =
            rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
        let justification: String = rest[close + 1..]
            .trim_start_matches(|ch: char| ch.is_whitespace() || matches!(ch, '-' | '—' | '–' | ':'))
            .trim()
            .to_string();
        out.push(Allow { line: c.line, rules, justified: justification.len() >= 3 });
    }
    out
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

fn rule_no_panic(toks: &[Token], masked: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if masked[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && is_op(&toks[i - 1], ".")
            && matches!(toks.get(i + 1), Some(n) if is_open(n, "("));
        if method {
            out.push((
                t.line,
                "no-panic",
                format!("`.{}(..)` in non-test library code — return a `CascnError` instead of panicking", t.text),
            ));
            continue;
        }
        let mac = PANIC_MACROS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if is_op(n, "!"));
        if mac {
            out.push((
                t.line,
                "no-panic",
                format!("`{}!` in non-test library code — return a `CascnError` instead of panicking", t.text),
            ));
        }
    }
}

fn rule_no_partial_cmp(toks: &[Token], masked: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if masked[i] || !is_ident_tok(t, "partial_cmp") {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| is_open(n, "(")) else { continue };
        let _ = open;
        let Some(close) = matching_close(toks, i + 1) else { continue };
        let chained_panic = matches!(toks.get(close + 1), Some(d) if is_op(d, "."))
            && matches!(toks.get(close + 2), Some(m) if is_ident_tok(m, "unwrap") || is_ident_tok(m, "expect"));
        if chained_panic {
            out.push((
                t.line,
                "no-partial-cmp",
                "`partial_cmp(..).unwrap()` — NaN makes this panic; use `total_cmp` for a total order".to_string(),
            ));
        }
    }
}

fn rule_float_eq(toks: &[Token], masked: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if masked[i] || t.kind != TokKind::Op || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_side = (i > 0 && toks[i - 1].kind == TokKind::Float)
            || matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Float);
        if float_side {
            out.push((
                t.line,
                "float-eq",
                format!("float `{}` comparison — exact equality hides NaN and rounding; compare with an epsilon or justify with `lint: allow`", t.text),
            ));
        }
    }
}

fn rule_nondeterminism(toks: &[Token], masked: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if masked[i] || t.kind != TokKind::Ident {
            continue;
        }
        if HASH_TYPES.contains(&t.text.as_str()) {
            out.push((
                t.line,
                "nondeterminism",
                format!("`{}` in a compute crate — iteration order is nondeterministic and can leak into results; use a sorted structure or justify lookup-only use", t.text),
            ));
        } else if CLOCK_TYPES.contains(&t.text.as_str()) {
            out.push((
                t.line,
                "nondeterminism",
                format!("wall-clock `{}` in a compute crate — timing reads break bit-identical reproducibility", t.text),
            ));
        }
    }
}

fn rule_cast_truncation(toks: &[Token], masked: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    // Collect the token ranges of postfix index expressions `expr[ ... ]`.
    let mut in_index = vec![false; toks.len()];
    for (i, t) in toks.iter().enumerate() {
        if !is_open(t, "[") || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let postfix = match prev.kind {
            TokKind::Ident => !NON_INDEX_BEFORE_BRACKET.contains(&prev.text.as_str()),
            TokKind::Close => true,
            _ => false,
        };
        if !postfix {
            continue;
        }
        if let Some(close) = matching_close(toks, i) {
            for flag in in_index.iter_mut().take(close).skip(i + 1) {
                *flag = true;
            }
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if masked[i] || !in_index[i] || !is_ident_tok(t, "as") {
            continue;
        }
        if let Some(ty) = toks.get(i + 1) {
            if ty.kind == TokKind::Ident && NARROWING.contains(&ty.text.as_str()) {
                out.push((
                    t.line,
                    "cast-truncation",
                    format!("narrowing `as {}` inside index arithmetic — values past {}::MAX wrap silently; do index math in usize", ty.text, ty.text),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Finding> {
        scan_source("test.rs", src, FileClass { compute: true, hot: true, concurrency: false })
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged() {
        let f = scan("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(rules_of(&f), ["no-panic"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(); }\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_live_code() {
        let src = "#[cfg(not(test))]\nfn f() { panic!(\"x\") }";
        assert_eq!(rules_of(&scan(src)), ["no-panic"]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(scan("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }").is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() -> &'static str { // call .unwrap() and panic!\n  \"x.unwrap() == 0.0\" }";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged_and_total_cmp_is_not() {
        let bad = "fn s(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(rules_of(&scan(bad)), ["no-panic", "no-partial-cmp"]);
        let good = "fn s(v: &mut [f32]) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(scan(good).is_empty());
    }

    #[test]
    fn float_eq_is_flagged_on_either_side() {
        assert_eq!(rules_of(&scan("fn f(x: f32) -> bool { x == 0.0 }")), ["float-eq"]);
        assert_eq!(rules_of(&scan("fn f(x: f32) -> bool { 1e-3 != x }")), ["float-eq"]);
        assert!(scan("fn f(x: usize) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn allow_directive_suppresses_with_justification() {
        let src = "fn f(x: f32) -> bool {\n  // lint: allow(float-eq) — exact sparsity sentinel\n  x == 0.0\n}";
        assert!(scan(src).is_empty());
        let same_line = "fn f(x: f32) -> bool { x == 0.0 } // lint: allow(float-eq) — sentinel check";
        assert!(scan(same_line).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let src = "fn f(x: f32) -> bool {\n  // lint: allow(float-eq)\n  x == 0.0\n}";
        let f = scan(src);
        assert_eq!(rules_of(&f), ["allow-justification"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "fn f(x: f32) -> bool {\n  // lint: allow(no-panic) — wrong rule\n  x == 0.0\n}";
        assert_eq!(rules_of(&scan(src)), ["float-eq"]);
    }

    #[test]
    fn hash_and_clock_flagged_only_in_compute_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); }";
        let compute = scan_source("crates/nn/src/x.rs", src, classify("crates/nn/src/x.rs"));
        assert_eq!(rules_of(&compute), ["nondeterminism", "nondeterminism"]);
        let io = scan_source("crates/cascades/src/x.rs", src, classify("crates/cascades/src/x.rs"));
        assert!(io.is_empty());
    }

    #[test]
    fn narrowing_cast_in_index_flagged_only_in_hot_crates() {
        let src = "fn f(v: &[f32], i: u64) -> f32 { v[(i as u32) as usize] }";
        let hot = scan_source("crates/tensor/src/x.rs", src, classify("crates/tensor/src/x.rs"));
        assert_eq!(rules_of(&hot), ["cast-truncation"]);
        let cold = scan_source("crates/core/src/x.rs", src, classify("crates/core/src/x.rs"));
        assert!(cold.is_empty());
        // `as usize` alone is not narrowing; slice patterns are not indexing.
        assert!(scan("fn f(v: &[f32], i: u64) -> f32 { let [a, ..] = [v[i as usize]]; a }").is_empty());
    }

    #[test]
    fn classify_maps_crates() {
        assert!(classify("crates/tensor/src/ops.rs").hot);
        assert!(classify("crates/autograd/src/tape.rs").compute);
        assert!(!classify("crates/autograd/src/tape.rs").hot);
        assert!(!classify("crates/core/src/trainer.rs").compute);
    }
}
