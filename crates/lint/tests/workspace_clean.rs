//! The live workspace must scan clean modulo the checked-in ratchet
//! baseline, and the full scan must stay fast enough to run on every CI
//! invocation.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cascn_lint::{scan_workspace, Baseline, BASELINE_FILE};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_unbaselined_findings() {
    let root = workspace_root();
    let (findings, files) = scan_workspace(&root).expect("scan workspace");
    assert!(files > 50, "expected the full workspace, scanned {files} files");

    let baseline_path = root.join(BASELINE_FILE);
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("baseline parses");

    let violations = baseline.check(&findings);
    assert!(
        violations.is_empty(),
        "ratchet violations:\n{}",
        cascn_lint::render_violations(&violations, &findings)
    );
}

#[test]
fn full_scan_is_fast() {
    let root = workspace_root();
    let start = Instant::now();
    let (_, files) = scan_workspace(&root).expect("scan workspace");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "scanned {files} files in {elapsed:?}; the CI hook budget is 2s"
    );
}

#[test]
fn baseline_header_records_pre_pr_debt() {
    // The ratchet file carries the pre-PR counts so the burn-down is
    // auditable: no-panic + no-partial-cmp started at 36 findings.
    let text =
        std::fs::read_to_string(workspace_root().join(BASELINE_FILE)).expect("baseline exists");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let pre_panic = baseline.pre_pr.get("no-panic").copied().unwrap_or(0);
    let pre_partial = baseline.pre_pr.get("no-partial-cmp").copied().unwrap_or(0);
    assert_eq!(pre_panic + pre_partial, 36);
}
