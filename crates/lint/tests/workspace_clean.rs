//! The live workspace must scan clean modulo the checked-in ratchet
//! baseline, and the full scan — token rules plus all four per-crate
//! concurrency passes — must stay fast enough to run on every CI
//! invocation.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cascn_lint::{scan_workspace, Baseline, BASELINE_FILE, RULES};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_unbaselined_findings() {
    let root = workspace_root();
    let (findings, files) = scan_workspace(&root).expect("scan workspace");
    assert!(files > 50, "expected the full workspace, scanned {files} files");

    let baseline_path = root.join(BASELINE_FILE);
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("baseline parses");

    let violations = baseline.check(&findings);
    assert!(
        violations.is_empty(),
        "ratchet violations:\n{}",
        cascn_lint::render_violations(&violations, &findings)
    );
}

#[test]
fn full_scan_is_fast() {
    // The budget covers the whole multi-pass pipeline: lex + resolve every
    // file, five token rules per file, and the four concurrency passes per
    // crate (lock-graph fixpoint included).
    let root = workspace_root();
    let start = Instant::now();
    let (_, files) = scan_workspace(&root).expect("scan workspace");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "scanned {files} files in {elapsed:?}; the CI hook budget is 2s"
    );
}

#[test]
fn baseline_is_v2_and_covers_all_nine_rules() {
    let text =
        std::fs::read_to_string(workspace_root().join(BASELINE_FILE)).expect("baseline exists");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    assert_eq!(
        baseline.rules,
        RULES.iter().map(|r| r.id.to_string()).collect::<Vec<_>>(),
        "the checked-in baseline records the full rule registry"
    );
    assert_eq!(RULES.len(), 9);
    // The concurrency burn-down holds: no grandfathered findings for any
    // of the four new rules (or any rule at all — entries are empty).
    for new_rule in ["lock-order", "guard-across-blocking", "wait-loop", "atomic-ordering"] {
        assert_eq!(baseline.total_for(&[new_rule]), 0, "{new_rule} must stay at zero");
    }
}

#[test]
fn baseline_header_records_pre_pr_debt() {
    // The ratchet file carries the pre-PR counts so the burn-down is
    // auditable: no-panic + no-partial-cmp started at 36 findings.
    let text =
        std::fs::read_to_string(workspace_root().join(BASELINE_FILE)).expect("baseline exists");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let pre_panic = baseline.pre_pr.get("no-panic").copied().unwrap_or(0);
    let pre_partial = baseline.pre_pr.get("no-partial-cmp").copied().unwrap_or(0);
    assert_eq!(pre_panic + pre_partial, 36);
}
