// Fixture: narrowing casts inside index arithmetic. Two violations, then
// safe casts. Not compiled — consumed as text by tests/fixtures.rs.

fn bad_row_index(data: &[f32], row: u64, cols: u64, c: usize) -> f32 {
    data[(row * cols) as u32 as usize + c]
}

fn bad_offset(v: &[u8], i: i64) -> u8 {
    v[(i as i32) as usize]
}

fn good_widening_index(v: &[u8], i: u32) -> u8 {
    // Widening to usize is the contract-approved form.
    v[i as usize]
}

fn good_narrowing_outside_index(x: u64) -> u32 {
    // Narrowing outside index arithmetic is a different concern; not this
    // rule's business.
    x as u32
}

fn good_array_type() -> [u8; 4] {
    // `[u8; 4]` is an array type, not an index expression.
    [0u8; 4]
}
