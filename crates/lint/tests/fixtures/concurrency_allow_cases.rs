// Fixture: the suppression matrix for the concurrency rules.
// 1. A justified allow fully suppresses the finding.
// 2. A bare allow suppresses the finding but reports the missing
//    justification (`allow-justification`).
// 3. An allow naming the wrong rule suppresses nothing.

struct Queue {
    jobs: Mutex<Vec<u64>>,
    cv: Condvar,
    running: AtomicBool,
}

impl Queue {
    fn drain_once(&self) -> u64 {
        let jobs = lock_recover(&self.jobs);
        // lint: allow(wait-loop) — single-shot drain helper; the caller loops on the predicate
        let mut jobs = wait_recover(&self.cv, jobs);
        jobs.pop().unwrap_or(0)
    }

    fn stop(&self) {
        // lint: allow(atomic-ordering)
        self.running.store(false, Ordering::Relaxed);
    }

    fn throttle(&self) {
        let jobs = lock_recover(&self.jobs);
        // lint: allow(wait-loop) — wrong rule, must not suppress the blocking finding
        thread::sleep(Duration::from_millis(5));
        drop(jobs);
    }
}
