// Fixture: exact float equality. Two violations, then safe comparisons.
// Not compiled — consumed as text by tests/fixtures.rs.

fn bad_eq(x: f32) -> bool {
    x == 0.0
}

fn bad_ne(x: f64) -> bool {
    1e-9 != x
}

fn good_integer_eq(x: usize) -> bool {
    // Integer equality is exact and fine.
    x == 0
}

fn good_epsilon(x: f32) -> bool {
    (x - 1.0).abs() < 1e-6
}

fn good_range(n: usize) -> usize {
    // `0..n` must lex as a range of ints, not a float `0.` — guard against
    // the classic tokenizer false positive.
    (0..n).sum()
}
