// Fixture: NaN-unsafe float ordering. Two violations, then safe forms.
// Not compiled — consumed as text by tests/fixtures.rs.

fn bad_sort(v: &mut [f32]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn bad_expect(v: &mut [f32]) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}

fn good_sort(v: &mut [f32]) {
    // total_cmp is the contract-approved NaN-total order.
    v.sort_by(|a, b| a.total_cmp(b));
}

fn good_partial_cmp_without_unwrap(a: f32, b: f32) -> Option<std::cmp::Ordering> {
    // Propagating the Option is fine; only the chained panic is banned.
    a.partial_cmp(&b)
}
