// Fixture: condvar waits with no predicate re-check. A spurious wakeup or
// a notification racing the park returns with the condition still false.

struct Queue {
    jobs: Mutex<Vec<u64>>,
    cv: Condvar,
}

impl Queue {
    fn next(&self) -> u64 {
        let mut jobs = lock_recover(&self.jobs);
        jobs = wait_recover(&self.cv, jobs);
        jobs.pop().unwrap_or(0)
    }

    fn next_raw(&self) -> u64 {
        let jobs = lock_recover(&self.jobs);
        let mut jobs = self.cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
        jobs.pop().unwrap_or(0)
    }

    fn next_timed(&self) -> u64 {
        let jobs = lock_recover(&self.jobs);
        let (mut jobs, _timed_out) = wait_timeout_recover(&self.cv, jobs, Duration::from_millis(5));
        jobs.pop().unwrap_or(0)
    }
}
