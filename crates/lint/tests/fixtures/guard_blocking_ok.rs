// Fixture: the safe shapes — take the payload out of the slot (the guard
// is a statement temporary), drop the guard before blocking, or scope the
// guard in its own block.

struct Tier {
    children: Mutex<Option<Child>>,
    log: Mutex<Vec<u8>>,
}

impl Tier {
    fn reap(&self) {
        let orphan = lock_recover(&self.children).take();
        if let Some(mut c) = orphan {
            let _ = c.wait();
        }
    }

    fn forward(&self, stream: &mut TcpStream, buf: &[u8]) {
        let mut log = lock_recover(&self.log);
        log.extend_from_slice(buf);
        drop(log);
        let _ = stream.write_all(buf);
    }

    fn relaunch(&self, program: &str) {
        let child = Command::new(program).spawn().ok();
        let mut slot = lock_recover(&self.children);
        *slot = child;
    }

    fn throttle(&self) {
        {
            let mut log = lock_recover(&self.log);
            log.push(1);
        }
        thread::sleep(Duration::from_millis(50));
    }
}
