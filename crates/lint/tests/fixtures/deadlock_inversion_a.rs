// Fixture, file A of the cross-file inversion: `submit` holds `queue` and
// calls `bump` (defined in file B), which acquires `state` — the edge
// `queue → state` only exists across the call graph.

struct Pool {
    queue: Mutex<Vec<u64>>,
    state: Mutex<u64>,
}

impl Pool {
    fn submit(&self, job: u64) {
        let mut q = lock_recover(&self.queue);
        q.push(job);
        bump(self);
    }
}
