// Fixture: nondeterminism sources banned from compute crates. Four
// violations (HashMap, HashSet, SystemTime, Instant), then safe forms.
// Not compiled — consumed as text by tests/fixtures.rs.

use std::collections::HashMap;

fn bad_hash_set() {
    let _s: std::collections::HashSet<u32> = Default::default();
}

fn bad_clocks() {
    let _t = std::time::SystemTime::now();
    let _i = std::time::Instant::now();
}

fn good_btree() {
    // Ordered containers are deterministic and allowed everywhere.
    let mut m = std::collections::BTreeMap::new();
    m.insert(1u32, 2u32);
}

fn good_sorted_vec(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}
