// Fixture: seeded two-lock inversion. `enqueue` takes queue → state,
// `drain` takes state → queue; the acquired-while-held graph has a cycle,
// so both inner acquisitions are deadlock-risk findings.

struct Pool {
    queue: Mutex<Vec<u64>>,
    state: Mutex<u64>,
}

impl Pool {
    fn enqueue(&self, job: u64) {
        let mut q = lock_recover(&self.queue);
        let mut st = lock_recover(&self.state);
        q.push(job);
        *st += 1;
    }

    fn drain(&self) {
        let mut st = lock_recover(&self.state);
        let mut q = lock_recover(&self.queue);
        q.clear();
        *st = 0;
    }
}
