// Fixture: the same two locks in one global order everywhere — the
// acquired-while-held graph is `queue → state` only, which is acyclic.
// `report` shows the other safe shape: release before re-acquiring.

struct Pool {
    queue: Mutex<Vec<u64>>,
    state: Mutex<u64>,
}

impl Pool {
    fn enqueue(&self, job: u64) {
        let mut q = lock_recover(&self.queue);
        let mut st = lock_recover(&self.state);
        q.push(job);
        *st += 1;
    }

    fn drain(&self) {
        let mut q = lock_recover(&self.queue);
        let mut st = lock_recover(&self.state);
        q.clear();
        *st = 0;
    }

    fn report(&self) -> u64 {
        let n = {
            let st = lock_recover(&self.state);
            *st
        };
        let q = lock_recover(&self.queue);
        n + q.len() as u64
    }
}
