// Fixture: the legal `Relaxed` shapes — statistics counters that nothing
// synchronizes on — plus control-flow atomics at `SeqCst`/`Acquire`.

struct Worker {
    running: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Worker {
    fn stop(&self) {
        self.running.store(false, Ordering::SeqCst);
    }

    fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> (u64, u64) {
        let h = self.hits.load(Ordering::Relaxed);
        let m = self.misses.load(Ordering::Relaxed);
        (h, m)
    }
}
