// Fixture: `Ordering::Relaxed` carrying cross-thread control flow — a
// shutdown flag, a publishing store, a CAS handoff, and a spin condition.

struct Worker {
    running: AtomicBool,
    seq: AtomicU64,
}

impl Worker {
    fn stop(&self) {
        self.running.store(false, Ordering::Relaxed);
    }

    fn publish(&self, n: u64) {
        self.seq.store(n, Ordering::Relaxed);
    }

    fn claim(&self) -> bool {
        self.seq.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
    }

    fn spin(&self) {
        while self.seq.load(Ordering::Relaxed) == 0 {
            std::hint::spin_loop();
        }
    }
}
