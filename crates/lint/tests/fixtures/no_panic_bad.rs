// Fixture: every no-panic construct that must be flagged in library code.
// Not compiled — consumed as text by tests/fixtures.rs.

fn unwrap_site(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn expect_site(x: Option<u8>) -> u8 {
    x.expect("present")
}

fn panic_site() {
    panic!("boom");
}

fn todo_site() {
    todo!()
}

fn unreachable_site() {
    unreachable!("cannot happen")
}

fn unimplemented_site() {
    unimplemented!()
}
