// Fixture: suppression-directive handling. One justified allow
// (suppressed, no finding), one bare allow (meta-finding), one wrong-rule
// allow (original finding survives). Not compiled — consumed as text by
// tests/fixtures.rs.

fn justified(x: f32) -> bool {
    // lint: allow(float-eq) — exact-zero sparsity sentinel, never computed
    x == 0.0
}

fn unjustified(x: f32) -> bool {
    // lint: allow(float-eq)
    x == 0.0
}

fn wrong_rule(x: f32) -> bool {
    // lint: allow(no-panic) — this justifies a different rule
    x == 0.0
}
