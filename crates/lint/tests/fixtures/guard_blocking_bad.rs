// Fixture: live guards spanning blocking calls. Each function stalls
// every thread touching its lock behind process reaping, socket I/O,
// process spawning, or a sleep.

struct Tier {
    children: Mutex<Option<Child>>,
    log: Mutex<Vec<u8>>,
}

impl Tier {
    fn reap(&self) {
        let mut slot = lock_recover(&self.children);
        if let Some(mut c) = slot.take() {
            let _ = c.wait();
        }
    }

    fn forward(&self, stream: &mut TcpStream, buf: &[u8]) {
        let mut log = lock_recover(&self.log);
        let _ = stream.write_all(buf);
        log.extend_from_slice(buf);
    }

    fn relaunch(&self, program: &str) {
        let mut slot = lock_recover(&self.children);
        *slot = Command::new(program).spawn().ok();
    }

    fn throttle(&self) {
        let log = lock_recover(&self.log);
        thread::sleep(Duration::from_millis(50));
        drop(log);
    }
}
