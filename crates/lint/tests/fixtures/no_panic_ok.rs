// Fixture: constructs that look like panics but must NOT be flagged.
// Not compiled — consumed as text by tests/fixtures.rs.

fn fallback_variants(x: Option<u8>) -> u8 {
    // unwrap_or / unwrap_or_else / unwrap_or_default never panic.
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

fn text_only() -> &'static str {
    // A comment saying .unwrap() or panic! is not code.
    "docs may say x.unwrap() or panic! without tripping the lexer"
}

fn unwrap_as_plain_ident() {
    // An identifier named `unwrap` without a leading dot is not a call.
    let unwrap = 3;
    let _ = unwrap;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        None::<u8>.unwrap();
        panic!("tests assert exact fixtures by design");
    }
}
