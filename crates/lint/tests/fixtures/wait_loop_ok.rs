// Fixture: every wait sits inside a loop that re-checks the predicate, so
// spurious wakeups and racing notifications are harmless.

struct Queue {
    jobs: Mutex<Vec<u64>>,
    cv: Condvar,
}

impl Queue {
    fn next(&self) -> u64 {
        let mut jobs = lock_recover(&self.jobs);
        while jobs.is_empty() {
            jobs = wait_recover(&self.cv, jobs);
        }
        jobs.pop().unwrap_or(0)
    }

    fn next_timed(&self) -> Option<u64> {
        let mut jobs = lock_recover(&self.jobs);
        loop {
            if let Some(job) = jobs.pop() {
                return Some(job);
            }
            let (next, timed_out) = wait_timeout_recover(&self.cv, jobs, Duration::from_millis(5));
            jobs = next;
            if timed_out {
                return None;
            }
        }
    }

    fn next_raw(&self) -> u64 {
        let mut jobs = lock_recover(&self.jobs);
        while jobs.is_empty() {
            jobs = self.cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
        }
        jobs.pop().unwrap_or(0)
    }
}
