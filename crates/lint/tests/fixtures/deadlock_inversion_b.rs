// Fixture, file B of the cross-file inversion: `drain` nests
// `state → queue` directly, closing the cycle that file A's
// `queue → state` call edge opened.

fn bump(p: &Pool) {
    let mut st = lock_recover(&p.state);
    *st += 1;
}

fn drain(p: &Pool) {
    let mut st = lock_recover(&p.state);
    let mut q = lock_recover(&p.queue);
    q.clear();
    *st = 0;
}
