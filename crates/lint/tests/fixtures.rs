//! Fixture coverage: every rule has a positive (flagged) and negative
//! (clean) fixture, plus the suppression-directive matrix. The fixtures in
//! `tests/fixtures/` are plain text to the lint — they are never compiled.

use cascn_lint::rules::FileClass;
use cascn_lint::scan_source;

const COMPUTE_HOT: FileClass = FileClass {
    compute: true,
    hot: true,
};

fn rules_of(src: &str, class: FileClass) -> Vec<&'static str> {
    scan_source("fixture.rs", src, class)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn no_panic_flags_every_panicking_construct() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    let found = rules_of(src, COMPUTE_HOT);
    assert_eq!(
        found,
        ["no-panic"; 6],
        "unwrap, expect, panic!, todo!, unreachable!, unimplemented!"
    );
}

#[test]
fn no_panic_ignores_fallbacks_strings_and_test_code() {
    let src = include_str!("fixtures/no_panic_ok.rs");
    assert_eq!(rules_of(src, COMPUTE_HOT), Vec::<&str>::new());
}

#[test]
fn partial_cmp_unwrap_and_expect_are_flagged() {
    let src = include_str!("fixtures/no_partial_cmp.rs");
    let found = rules_of(src, COMPUTE_HOT);
    // Each bad line trips both the chained-panic rule and no-panic itself;
    // the safe total_cmp / Option-propagating forms add nothing.
    assert_eq!(found.iter().filter(|r| **r == "no-partial-cmp").count(), 2);
    assert_eq!(found.iter().filter(|r| **r == "no-panic").count(), 2);
    assert_eq!(found.len(), 4);
}

#[test]
fn float_eq_flags_exact_comparisons_only() {
    let src = include_str!("fixtures/float_eq.rs");
    assert_eq!(rules_of(src, COMPUTE_HOT), ["float-eq", "float-eq"]);
}

#[test]
fn nondeterminism_applies_only_to_compute_crates() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let compute = rules_of(src, COMPUTE_HOT);
    assert_eq!(
        compute,
        ["nondeterminism"; 4],
        "HashMap, HashSet, SystemTime, Instant"
    );
    // The same file in a non-compute crate (baselines, bench, …) is clean.
    assert_eq!(rules_of(src, FileClass::default()), Vec::<&str>::new());
}

#[test]
fn cast_truncation_flags_narrowing_in_index_arithmetic_only() {
    let src = include_str!("fixtures/cast_truncation.rs");
    let hot = rules_of(src, COMPUTE_HOT);
    assert_eq!(hot, ["cast-truncation", "cast-truncation"]);
    // Outside the hot crates the rule does not run at all.
    assert_eq!(
        rules_of(
            src,
            FileClass {
                compute: true,
                hot: false
            }
        ),
        Vec::<&str>::new()
    );
}

#[test]
fn allow_directive_matrix() {
    let src = include_str!("fixtures/allow_cases.rs");
    let findings = scan_source("fixture.rs", src, COMPUTE_HOT);
    let found: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // Justified allow: fully suppressed. Bare allow: suppresses the
    // violation but reports the missing justification. Wrong-rule allow:
    // the original violation survives.
    assert_eq!(found, ["allow-justification", "float-eq"]);
    assert!(
        findings[0].line < findings[1].line,
        "meta-finding comes from the earlier bare directive"
    );
}
