//! Fixture coverage: every rule has a positive (flagged) and negative
//! (clean) fixture, plus the suppression-directive matrix. The fixtures in
//! `tests/fixtures/` are plain text to the lint — they are never compiled.

use cascn_lint::resolve::FileModel;
use cascn_lint::rules::FileClass;
use cascn_lint::scan_source;

const COMPUTE_HOT: FileClass = FileClass {
    compute: true,
    hot: true,
    concurrency: false,
};

/// Serving-tier class: enables `guard-across-blocking` / `atomic-ordering`
/// the way `classify` does for `crates/serve/` paths.
const CONCURRENCY: FileClass = FileClass {
    compute: false,
    hot: false,
    concurrency: true,
};

fn rules_of(src: &str, class: FileClass) -> Vec<&'static str> {
    scan_source("fixture.rs", src, class)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn no_panic_flags_every_panicking_construct() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    let found = rules_of(src, COMPUTE_HOT);
    assert_eq!(
        found,
        ["no-panic"; 6],
        "unwrap, expect, panic!, todo!, unreachable!, unimplemented!"
    );
}

#[test]
fn no_panic_ignores_fallbacks_strings_and_test_code() {
    let src = include_str!("fixtures/no_panic_ok.rs");
    assert_eq!(rules_of(src, COMPUTE_HOT), Vec::<&str>::new());
}

#[test]
fn partial_cmp_unwrap_and_expect_are_flagged() {
    let src = include_str!("fixtures/no_partial_cmp.rs");
    let found = rules_of(src, COMPUTE_HOT);
    // Each bad line trips both the chained-panic rule and no-panic itself;
    // the safe total_cmp / Option-propagating forms add nothing.
    assert_eq!(found.iter().filter(|r| **r == "no-partial-cmp").count(), 2);
    assert_eq!(found.iter().filter(|r| **r == "no-panic").count(), 2);
    assert_eq!(found.len(), 4);
}

#[test]
fn float_eq_flags_exact_comparisons_only() {
    let src = include_str!("fixtures/float_eq.rs");
    assert_eq!(rules_of(src, COMPUTE_HOT), ["float-eq", "float-eq"]);
}

#[test]
fn nondeterminism_applies_only_to_compute_crates() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let compute = rules_of(src, COMPUTE_HOT);
    assert_eq!(
        compute,
        ["nondeterminism"; 4],
        "HashMap, HashSet, SystemTime, Instant"
    );
    // The same file in a non-compute crate (baselines, bench, …) is clean.
    assert_eq!(rules_of(src, FileClass::default()), Vec::<&str>::new());
}

#[test]
fn cast_truncation_flags_narrowing_in_index_arithmetic_only() {
    let src = include_str!("fixtures/cast_truncation.rs");
    let hot = rules_of(src, COMPUTE_HOT);
    assert_eq!(hot, ["cast-truncation", "cast-truncation"]);
    // Outside the hot crates the rule does not run at all.
    assert_eq!(
        rules_of(
            src,
            FileClass {
                compute: true,
                hot: false,
                concurrency: false
            }
        ),
        Vec::<&str>::new()
    );
}

#[test]
fn lock_order_flags_the_seeded_inversion() {
    let src = include_str!("fixtures/lock_order_bad.rs");
    let found = rules_of(src, CONCURRENCY);
    assert_eq!(
        found,
        ["lock-order", "lock-order"],
        "both inner acquisitions of the inverted pair are findings"
    );
}

#[test]
fn lock_order_accepts_a_single_global_order() {
    let src = include_str!("fixtures/lock_order_ok.rs");
    assert_eq!(rules_of(src, CONCURRENCY), Vec::<&str>::new());
}

#[test]
fn lock_order_cycle_across_files_is_detected() {
    // The inversion only exists across the call graph: file A holds
    // `queue` while calling into file B, which nests `state → queue`.
    // Neither file alone contains a cycle.
    let a_src = include_str!("fixtures/deadlock_inversion_a.rs");
    let b_src = include_str!("fixtures/deadlock_inversion_b.rs");
    let models = [
        FileModel::build("fixture_a.rs", a_src, CONCURRENCY),
        FileModel::build("fixture_b.rs", b_src, CONCURRENCY),
    ];
    let raw = cascn_lint::concurrency::scan(&models);
    let per_file: Vec<usize> = (0..2)
        .map(|fi| raw.iter().filter(|(f, _, r, _)| *f == fi && *r == "lock-order").count())
        .collect();
    assert!(
        per_file[0] >= 1 && per_file[1] >= 1,
        "each half of the cross-file inversion gets a finding: {raw:?}"
    );

    // Each file alone is acyclic.
    for (label, src) in [("fixture_a.rs", a_src), ("fixture_b.rs", b_src)] {
        let solo = [FileModel::build(label, src, CONCURRENCY)];
        assert!(
            cascn_lint::concurrency::scan(&solo).iter().all(|(_, _, r, _)| *r != "lock-order"),
            "{label} has no cycle on its own"
        );
    }
}

#[test]
fn guard_across_blocking_flags_live_guards_only() {
    let src = include_str!("fixtures/guard_blocking_bad.rs");
    let found = rules_of(src, CONCURRENCY);
    assert_eq!(
        found,
        ["guard-across-blocking"; 4],
        "Child::wait, write_all, Command::spawn, thread::sleep under a live guard"
    );
    let ok = include_str!("fixtures/guard_blocking_ok.rs");
    assert_eq!(rules_of(ok, CONCURRENCY), Vec::<&str>::new());
}

#[test]
fn guard_across_blocking_is_gated_to_the_serving_tier() {
    // Outside the serve crate the pass does not run at all; `lock-order`
    // and `wait-loop` still do, but this fixture trips neither.
    let src = include_str!("fixtures/guard_blocking_bad.rs");
    assert_eq!(rules_of(src, FileClass::default()), Vec::<&str>::new());
}

#[test]
fn wait_loop_requires_a_predicate_loop() {
    let src = include_str!("fixtures/wait_loop_bad.rs");
    let found = rules_of(src, CONCURRENCY);
    assert_eq!(
        found,
        ["wait-loop"; 3],
        "wait_recover, raw cv.wait, and wait_timeout_recover outside loops"
    );
    let ok = include_str!("fixtures/wait_loop_ok.rs");
    assert_eq!(rules_of(ok, CONCURRENCY), Vec::<&str>::new());
}

#[test]
fn atomic_ordering_flags_control_flow_relaxed_only() {
    let src = include_str!("fixtures/atomic_ordering_bad.rs");
    let found = rules_of(src, CONCURRENCY);
    assert_eq!(
        found,
        ["atomic-ordering"; 4],
        "AtomicBool store, publishing store, CAS handoff, spin-loop load"
    );
    let ok = include_str!("fixtures/atomic_ordering_ok.rs");
    assert_eq!(rules_of(ok, CONCURRENCY), Vec::<&str>::new());
}

#[test]
fn concurrency_allow_matrix() {
    let src = include_str!("fixtures/concurrency_allow_cases.rs");
    let findings = scan_source("fixture.rs", src, CONCURRENCY);
    let found: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // Justified allow: suppressed. Bare allow: suppressed but the missing
    // justification is reported. Wrong-rule allow: the finding survives.
    assert_eq!(found, ["allow-justification", "guard-across-blocking"]);
}

#[test]
fn allow_directive_matrix() {
    let src = include_str!("fixtures/allow_cases.rs");
    let findings = scan_source("fixture.rs", src, COMPUTE_HOT);
    let found: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // Justified allow: fully suppressed. Bare allow: suppresses the
    // violation but reports the missing justification. Wrong-rule allow:
    // the original violation survives.
    assert_eq!(found, ["allow-justification", "float-eq"]);
    assert!(
        findings[0].line < findings[1].line,
        "meta-finding comes from the earlier bare directive"
    );
}
