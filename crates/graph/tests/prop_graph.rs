//! Property-based tests of the graph substrate on arbitrary random DAGs
//! (not just cascade trees): CSR correctness, topological order, and the
//! spectral invariants of the CasLaplacian pipeline.

use cascn_graph::{laplacian, walks, Csr, DiGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random DAG with up to `max_n` nodes; edges only go from
/// lower to higher indices, so acyclicity holds by construction.
fn arbitrary_dag(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n * n, 0.1f32..5.0), 0..=max_edges.min(30)).prop_map(
            move |pairs| {
                let mut g = DiGraph::new(n);
                for (code, w) in pairs {
                    let (a, b) = (code / n, code % n);
                    if a < b {
                        g.add_edge(a, b, w);
                    } else if b < a {
                        g.add_edge(b, a, w);
                    }
                }
                g
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_through_dense(g in arbitrary_dag(12)) {
        let csr = g.out_csr();
        let dense = g.adjacency();
        let back = Csr::from_dense(&dense);
        // Dense forms agree (duplicates merged identically).
        let d2 = back.to_dense();
        for i in 0..dense.len() {
            prop_assert!((dense.as_slice()[i] - d2.as_slice()[i]).abs() < 1e-5);
        }
        // spmv agrees with dense multiply.
        let x: Vec<f32> = (0..g.node_count()).map(|i| i as f32 - 1.5).collect();
        let y1 = csr.spmv(&x);
        let y2 = dense.matmul(&cascn_tensor::Matrix::col_vector(&x));
        for (a, b) in y1.iter().zip(y2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn constructed_dags_are_dags(g in arbitrary_dag(15)) {
        prop_assert!(g.is_dag());
        let order = g.topological_order().expect("is a DAG");
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for (u, v, _) in g.edges() {
            prop_assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn degree_identities(g in arbitrary_dag(12)) {
        let out: usize = g.out_degrees().iter().sum();
        let into: usize = g.in_degrees().iter().sum();
        prop_assert_eq!(out, g.edge_count());
        prop_assert_eq!(into, g.edge_count());
        // Leaves have zero out-degree by definition.
        let degs = g.out_degrees();
        for leaf in g.leaves() {
            prop_assert_eq!(degs[leaf], 0);
        }
    }

    #[test]
    fn transition_matrix_is_stochastic_for_any_dag(g in arbitrary_dag(10)) {
        let p = laplacian::transition_matrix(&g, 0.85);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| x > 0.0));
        }
        // Stationary distribution is a positive fixed point.
        let phi = laplacian::stationary_distribution(&p);
        prop_assert!((phi.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(phi.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn cas_laplacian_kernel_property(g in arbitrary_dag(10)) {
        let lap = laplacian::cas_laplacian(&g, 0.85);
        let v = laplacian::sqrt_stationary(&g, 0.85);
        for r in 0..lap.rows() {
            let y: f32 = lap.row(r).iter().zip(&v).map(|(&a, &b)| a * b).sum();
            prop_assert!(y.abs() < 2e-3, "row {} maps sqrt-stationary to {}", r, y);
        }
    }

    #[test]
    fn chebyshev_recursion_identity(g in arbitrary_dag(8)) {
        // T_2 = 2 L̃ T_1 − T_0 must hold exactly for the produced bases.
        let lap = laplacian::cas_laplacian(&g, 0.85);
        let scaled = laplacian::scale_laplacian(&lap, laplacian::largest_eigenvalue(&lap));
        let bases = laplacian::chebyshev_bases(&scaled, 2);
        let expect = {
            let mut m = scaled.matmul(&bases[1]).scale(2.0);
            m.axpy(-1.0, &bases[0]);
            m
        };
        for i in 0..expect.len() {
            prop_assert!((bases[2].as_slice()[i] - expect.as_slice()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn walks_never_leave_the_edge_set(g in arbitrary_dag(12), seed in 0u64..1000) {
        let csr = g.out_csr();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = walks::random_walk(&csr, 0, 10, &mut rng);
        prop_assert!(!w.is_empty());
        for pair in w.windows(2) {
            prop_assert!(csr.row(pair[0]).iter().any(|&(c, _)| c == pair[1]));
        }
    }

    #[test]
    fn undirected_csr_is_symmetric(g in arbitrary_dag(10)) {
        let und = walks::undirected_csr(&g).to_dense();
        for r in 0..und.rows() {
            for c in 0..und.cols() {
                prop_assert!((und[(r, c)] - und[(c, r)]).abs() < 1e-5);
            }
        }
    }
}
