//! Transition matrices, stationary distributions, and the CasLaplacian
//! (paper Section IV-B, Eq. 5–11, Algorithm 1).

use std::sync::Arc;

use cascn_tensor::{dot, Csr, Matrix, SparseOp};

use crate::DiGraph;

/// Default teleport probability `α` of Eq. 7. The paper leaves the value
/// unstated; 0.85 is the standard PageRank choice and keeps `P_c`
/// irreducible as the equation requires.
pub const DEFAULT_ALPHA: f32 = 0.85;

/// Builds the cascade transition matrix of Eq. 7:
/// `P_c = (1 − α)·E/n + α·D⁻¹W`.
///
/// Rows whose out-degree is zero (cascade leaves) receive a self-loop before
/// normalization — the same fix the paper applies to the cascade initiator in
/// Section IV-A — so `D⁻¹` is always defined.
///
/// # Panics
/// Panics if the graph has no nodes or `alpha` is outside `(0, 1)`.
pub fn transition_matrix(g: &DiGraph, alpha: f32) -> Matrix {
    assert!(g.node_count() > 0, "transition_matrix: empty graph");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "transition_matrix: alpha must be in (0,1), got {alpha}"
    );
    let n = g.node_count();
    let mut w = g.adjacency();
    let deg = g.weighted_out_degrees();
    for (i, &d) in deg.iter().enumerate() {
        // lint: allow(float-eq) — dangling nodes have an exactly-zero out-degree by construction
        if d == 0.0 {
            w[(i, i)] = 1.0; // self-loop for dangling nodes
        }
    }
    let teleport = (1.0 - alpha) / n as f32;
    let mut p = Matrix::full(n, n, teleport);
    for r in 0..n {
        let row_sum: f32 = w.row(r).iter().sum();
        for c in 0..n {
            p[(r, c)] += alpha * w[(r, c)] / row_sum;
        }
    }
    p
}

/// Iteration cap of the stationary-distribution power iteration.
pub(crate) const STATIONARY_MAX_ITERS: usize = 10_000;

/// What the stationary-distribution power iteration actually did — callers
/// on the preprocessing hot path need to distinguish a converged φ from a
/// best-effort iterate or a degeneracy fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryOutcome {
    /// The distribution: converged φ, the last iterate, or uniform when
    /// `fallback` is set. Always finite with entries summing to ~1.
    pub phi: Vec<f32>,
    /// Whether the iteration reached the `1e-10` max-norm tolerance.
    pub converged: bool,
    /// Whether a non-finite `P` or a degenerate (NaN/Inf/zero/negative)
    /// normalizer forced the uniform-distribution fallback.
    pub fallback: bool,
    /// Power-iteration rounds performed before returning.
    pub iterations: usize,
}

/// Solves `φᵀ P = φᵀ` with `φᵀe = 1` by power iteration (step 3 of
/// Algorithm 1), reporting convergence and degeneracy explicitly.
///
/// `P` should be row-stochastic and irreducible (which Eq. 7 guarantees);
/// convergence is then geometric. Inputs that violate that contract — a
/// NaN-poisoned `P`, or one whose iterate normalizer becomes non-finite or
/// non-positive — do **not** poison the result: the uniform distribution is
/// returned with `fallback` set, so `cas_laplacian` and every Chebyshev
/// basis built from it stay finite.
///
/// # Panics
/// Panics if `p` is not square or empty.
pub fn stationary_distribution_checked(p: &Matrix) -> StationaryOutcome {
    assert_eq!(p.rows(), p.cols(), "stationary_distribution: non-square P");
    assert!(p.rows() > 0, "stationary_distribution: empty P");
    let n = p.rows();
    let uniform = vec![1.0 / n as f32; n];
    if !p.all_finite() {
        return StationaryOutcome {
            phi: uniform,
            converged: false,
            fallback: true,
            iterations: 0,
        };
    }
    // Route the iteration through the shared CSR kernel: `φᵀP` is
    // `Pᵀ·φ`, and `spmv_transpose` scatters in the same ascending-(r, c)
    // order (with the same exact-zero φ-entry skip) as the hand-rolled loop
    // this replaces, so results are bit-identical. Eq. 7 matrices are fully
    // dense (positive teleport everywhere), but sparse callers get the
    // nnz-proportional cost for free.
    let pt = Csr::from_dense(p);
    power_iterate(&pt, uniform.clone(), &uniform)
}

/// The shared power-iteration loop behind the cold and warm stationary
/// paths: iterate `φ ← normalize(Pᵀφ)` from `start` until the max-norm
/// delta drops below `1e-10`, falling back to `uniform` on a degenerate
/// normalizer. The cold path passes `start = uniform`, keeping its results
/// bit-identical to the pre-refactor loop.
fn power_iterate(pt: &Csr, start: Vec<f32>, uniform: &[f32]) -> StationaryOutcome {
    let mut phi = start;
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..STATIONARY_MAX_ITERS {
        iterations = it + 1;
        let mut next = pt.spmv_transpose(&phi);
        let sum: f32 = next.iter().sum();
        if !sum.is_finite() || sum <= 0.0 {
            // Overflow/underflow mid-iteration: normalizing by this sum
            // would spread NaN/Inf into φ and from there into the
            // CasLaplacian. Give up on this P instead.
            return StationaryOutcome {
                phi: uniform.to_vec(),
                converged: false,
                fallback: true,
                iterations,
            };
        }
        for x in &mut next {
            *x /= sum;
        }
        let delta: f32 = phi
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        std::mem::swap(&mut phi, &mut next);
        if delta < 1e-10 {
            converged = true;
            break;
        }
    }
    StationaryOutcome {
        phi,
        converged,
        fallback: false,
        iterations,
    }
}

/// Mixing weight pulling a warm-start seed off the probability-simplex
/// boundary: `seed' = (1 − ε)·seed/Σseed + ε·uniform`.
///
/// A seed with exact-zero entries is a trap for the power iteration:
/// `spmv_transpose` skips zero input entries, so coordinates a previous φ
/// left at zero can never receive mass from themselves, and on reducible or
/// periodic `P` the iterate sticks to (or oscillates on) the simplex
/// boundary instead of converging to the cold path's answer. The ε-mix
/// keeps every coordinate strictly positive.
const WARM_SEED_MIX: f32 = 1e-3;

/// [`stationary_distribution_checked`] warm-started from a previous
/// stationary distribution — the single-event update path of the streaming
/// spectral layer, where the new φ is one rank-1 perturbation away from the
/// seed and typically converges in a handful of rounds.
///
/// The seed is sanitized before use (non-finite and non-positive entries
/// are zeroed, then the vector is renormalized and ε-mixed with the uniform
/// distribution — see [`WARM_SEED_MIX`]); an unusable seed degrades to the
/// uniform start. If the warm iteration fails to converge, the result is
/// discarded and the cold path ([`stationary_distribution_checked`]) is
/// returned instead, so a bad seed can slow this function down but never
/// change what it converges to.
///
/// # Panics
/// Panics if `p` is not square or empty, or `seed.len() != p.rows()`.
pub fn stationary_distribution_warm(p: &Matrix, seed: &[f32]) -> StationaryOutcome {
    assert_eq!(p.rows(), p.cols(), "stationary_distribution: non-square P");
    assert!(p.rows() > 0, "stationary_distribution: empty P");
    assert_eq!(seed.len(), p.rows(), "stationary_distribution_warm: seed length mismatch");
    let n = p.rows();
    let uniform = vec![1.0 / n as f32; n];
    if !p.all_finite() {
        return StationaryOutcome {
            phi: uniform,
            converged: false,
            fallback: true,
            iterations: 0,
        };
    }
    let pt = Csr::from_dense(p);
    let warm = power_iterate(&pt, sanitize_warm_seed(seed, n), &uniform);
    if warm.converged {
        return warm;
    }
    // Checked fallback: the warm iterate went nowhere (periodic or
    // reducible P can cycle forever from a boundary-adjacent seed), so pay
    // for the cold start rather than return a seed-dependent answer.
    let mut cold = stationary_distribution_checked(p);
    cold.iterations += warm.iterations;
    cold
}

/// Clamps, renormalizes, and ε-mixes a warm-start seed (see
/// [`WARM_SEED_MIX`]); returns the uniform distribution when nothing
/// usable survives sanitization.
pub(crate) fn sanitize_warm_seed(seed: &[f32], n: usize) -> Vec<f32> {
    let mut s: Vec<f32> = seed
        .iter()
        .map(|&x| if x.is_finite() && x > 0.0 { x } else { 0.0 })
        .collect();
    let sum: f32 = s.iter().sum();
    if !sum.is_finite() || sum <= 0.0 {
        return vec![1.0 / n as f32; n];
    }
    let mix = WARM_SEED_MIX / n as f32;
    for x in &mut s {
        *x = (1.0 - WARM_SEED_MIX) * (*x / sum) + mix;
    }
    s
}

/// [`stationary_distribution_checked`] collapsed to the distribution alone,
/// warning on stderr when the result is a fallback or unconverged — the
/// compatibility surface for callers that only need φ.
///
/// # Panics
/// Panics if `p` is not square or empty.
pub fn stationary_distribution(p: &Matrix) -> Vec<f32> {
    let out = stationary_distribution_checked(p);
    if out.fallback {
        eprintln!(
            "warning: stationary_distribution: degenerate or non-finite P \
             ({}x{}); falling back to the uniform distribution",
            p.rows(),
            p.cols()
        );
    } else if !out.converged {
        // Benign slow convergence can recur on every cascade of a training
        // run; report it once per process instead of flooding stderr.
        static NONCONVERGENCE_WARNED: std::sync::Once = std::sync::Once::new();
        NONCONVERGENCE_WARNED.call_once(|| {
            eprintln!(
                "warning: stationary_distribution: power iteration did not \
                 converge within {STATIONARY_MAX_ITERS} rounds; using the last \
                 iterate (reported once; callers needing per-matrix outcomes \
                 should use stationary_distribution_checked)"
            );
        });
    }
    out.phi
}

/// Computes the CasLaplacian of Eq. 8 / Algorithm 1:
/// `Δ_c = Φ^{1/2} (I − P_c) Φ^{-1/2}` with `Φ = diag(φ)`.
///
/// Unlike the undirected normalized Laplacian (Eq. 9), `Δ_c` preserves the
/// directionality of the cascade — the property Table IV's
/// `CasCN-Undirected` ablation shows to matter.
pub fn cas_laplacian(g: &DiGraph, alpha: f32) -> Matrix {
    let p = transition_matrix(g, alpha);
    let phi = stationary_distribution(&p);
    cas_laplacian_from(&p, &phi)
}

/// [`cas_laplacian`] from an already-computed transition matrix and
/// stationary distribution (the operator builder shares both with the dense
/// path, so λ_max estimation sees the identical matrix).
fn cas_laplacian_from(p: &Matrix, phi: &[f32]) -> Matrix {
    let n = p.rows();
    let mut lap = Matrix::zeros(n, n);
    for r in 0..n {
        let sr = phi[r].max(1e-12).sqrt();
        for c in 0..n {
            let sc = phi[c].max(1e-12).sqrt();
            let i_minus_p = if r == c { 1.0 - p[(r, c)] } else { -p[(r, c)] };
            lap[(r, c)] = sr * i_minus_p / sc;
        }
    }
    lap
}

/// The square-rooted stationary vector `Φ^{1/2}·e`. `Δ_c` annihilates this
/// vector by construction — a fact the property tests exploit.
pub fn sqrt_stationary(g: &DiGraph, alpha: f32) -> Vec<f32> {
    let p = transition_matrix(g, alpha);
    stationary_distribution(&p)
        .into_iter()
        .map(|x| x.max(0.0).sqrt())
        .collect()
}

/// The symmetric normalized Laplacian of Eq. 9,
/// `L = I − D^{-1/2} W_sym D^{-1/2}`, after symmetrizing the cascade
/// (`W_sym = W + Wᵀ`). Used by the `CasCN-Undirected` variant.
///
/// Isolated nodes get a self-loop so `D^{-1/2}` is defined.
pub fn undirected_normalized_laplacian(g: &DiGraph) -> Matrix {
    let n = g.node_count();
    let w = g.adjacency();
    let mut sym = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            sym[(r, c)] = w[(r, c)] + w[(c, r)];
        }
    }
    for i in 0..n {
        let row_sum: f32 = sym.row(i).iter().sum();
        // lint: allow(float-eq) — isolated nodes have an exactly-zero row sum; NaN falls through to the general path
        if row_sum == 0.0 {
            sym[(i, i)] = 1.0;
        }
    }
    let dinv_sqrt: Vec<f32> = (0..n)
        .map(|i| 1.0 / sym.row(i).iter().sum::<f32>().sqrt())
        .collect();
    let mut lap = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            let v = dinv_sqrt[r] * sym[(r, c)] * dinv_sqrt[c];
            lap[(r, c)] = if r == c { 1.0 - v } else { -v };
        }
    }
    lap
}

/// Estimates the largest eigenvalue of a Laplacian for Chebyshev scaling.
///
/// `Δ_c` is not symmetric, so we take the largest eigenvalue of its
/// symmetric part `(Δ_c + Δ_cᵀ)/2` — the maximum Rayleigh quotient of `Δ_c`
/// over real vectors, which is exactly the quantity that must bound the
/// Chebyshev domain. Power iteration runs on the positively shifted
/// operator `S + cI` so the dominant eigenvalue is the largest (not merely
/// largest-magnitude) one.
///
/// Returns 2.0 (the paper's `λ_max ≈ 2` shortcut) for degenerate inputs.
pub fn largest_eigenvalue(lap: &Matrix) -> f32 {
    let n = lap.rows();
    assert_eq!(n, lap.cols(), "largest_eigenvalue: non-square input");
    if n == 0 {
        return 2.0;
    }
    if n == 1 {
        return if lap[(0, 0)].abs() > 1e-6 { lap[(0, 0)].abs() } else { 2.0 };
    }
    // Symmetric part.
    let mut s = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            s[(r, c)] = 0.5 * (lap[(r, c)] + lap[(c, r)]);
        }
    }
    // Shift by the max absolute row sum (Gershgorin bound) to make the
    // target eigenvalue dominant and positive.
    let shift: f32 = (0..n)
        .map(|r| s.row(r).iter().map(|x| x.abs()).sum::<f32>())
        .fold(0.0, f32::max);
    for i in 0..n {
        s[(i, i)] += shift;
    }
    let mut x = vec![1.0f32; n];
    let mut lambda = 0.0f32;
    for _ in 0..200 {
        let y = mat_vec(&s, &x);
        let norm = y.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm < 1e-20 {
            return 2.0;
        }
        let xn: Vec<f32> = y.iter().map(|v| v / norm).collect();
        let new_lambda = dot(&mat_vec(&s, &xn), &xn);
        let done = (new_lambda - lambda).abs() < 1e-7 * new_lambda.abs().max(1.0);
        lambda = new_lambda;
        x = xn;
        if done {
            break;
        }
    }
    let result = lambda - shift;
    if result.is_finite() && result > 1e-3 {
        result
    } else {
        2.0
    }
}

/// Scales a Laplacian to the Chebyshev domain `[-1, 1]`:
/// `Δ̃ = (2/λ_max)·Δ − I` (Eq. 2).
///
/// # Panics
/// Panics if `lambda_max <= 0`.
pub fn scale_laplacian(lap: &Matrix, lambda_max: f32) -> Matrix {
    assert!(
        lambda_max > 0.0,
        "scale_laplacian: lambda_max must be positive, got {lambda_max}"
    );
    let mut out = lap.scale(2.0 / lambda_max);
    for i in 0..out.rows().min(out.cols()) {
        out[(i, i)] -= 1.0;
    }
    out
}

/// The spectral quantity CasCN derives from one cascade Laplacian: the
/// scaled operator `Δ̃` in sparse-plus-rank-1 form, ready to drive the
/// operator-form Chebyshev recurrence — bundled into a single cacheable
/// handle.
///
/// Earlier revisions materialized the `K + 1` dense `n×n` bases
/// `T_0(Δ̃)..T_K(Δ̃)` here. The operator form stores only `Δ̃` itself
/// (`O(nnz + n)` instead of `O(K·n²)`) and the convolution layer carries the
/// recurrence on `n×d` feature blocks: `T_k·X = 2·Δ̃·(T_{k-1}·X) − T_{k-2}·X`.
/// That drops per-gate convolution cost from `O(K·n²·d)` to `O(K·nnz·d)` and
/// shrinks the serve-cache/snapshot footprint by the same factor.
/// [`SpectralBasis::materialize`] still produces the dense bases for the
/// legacy kernel path, gradient checking, and tests.
///
/// Building the operator (Eq. 2–8) dominates inference preprocessing, yet it
/// depends only on the observed cascade structure, never on model
/// parameters. A cascade re-queried across requests therefore reuses the
/// same handle: the serving layer's spectral cache stores
/// `Arc<SpectralBasis>` keyed by (cascade id, window) and every consumer
/// shares it read-only.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralBasis {
    /// The λ_max the Laplacian was scaled by.
    pub lambda_max: f32,
    /// The Chebyshev order `K` of the convolution this operator feeds.
    pub k: usize,
    /// The scaled Laplacian `Δ̃ = (2/λ_max)·Δ − I` (Eq. 2) as a sparse
    /// operator, shared with every tape node that applies it.
    pub op: Arc<SparseOp>,
}

impl SpectralBasis {
    /// Builds the handle from an (unscaled) dense Laplacian. `lambda_max:
    /// None` estimates the scaling constant with [`largest_eigenvalue`];
    /// `Some(v)` pins it (the paper's `λ_max ≈ 2` shortcut).
    ///
    /// The operator is the exact CSR form of the dense scaled Laplacian
    /// (no rank-1 split), so [`SparseOp::apply`] on a finite block is
    /// bit-identical to the dense `matmul` it replaces. Undirected
    /// Laplacians are genuinely sparse and benefit directly; for directed
    /// cascades prefer [`SpectralBasis::directed`], which keeps the teleport
    /// mass in a rank-1 term instead of densifying the core.
    ///
    /// # Panics
    /// Panics if `lap` is not square or a pinned `lambda_max` is not
    /// positive (the [`scale_laplacian`] contract).
    pub fn from_laplacian(lap: &Matrix, lambda_max: Option<f32>, k: usize) -> Self {
        let lambda_max = lambda_max.unwrap_or_else(|| largest_eigenvalue(lap));
        let scaled = scale_laplacian(lap, lambda_max);
        let op = Arc::new(SparseOp::from_csr(Csr::from_dense(&scaled)));
        Self { lambda_max, k, op }
    }

    /// Builds the scaled **directed** CasLaplacian operator straight from
    /// the cascade graph, without subtracting dense matrices:
    ///
    /// `Δ̃ = S + coeff·u·vᵀ` where `S` carries the adjacency-supported part
    /// (`S_rr = (2/λ)·(1 − a_rr) − 1`, `S_rc = −(2/λ)·s_r·a_rc/s_c` with
    /// `a_rc = α·w_rc/rowsum` over the self-loop-patched adjacency and
    /// `s = φ^{1/2}`), and the rank-1 term is the PageRank teleport mass:
    /// `coeff = −(2/λ)·(1−α)/n`, `u = s`, `v = 1/s`.
    ///
    /// `φ` and (when `lambda_max` is `None`) `λ_max` are computed by the
    /// *identical* dense pipeline as [`cas_laplacian`] +
    /// [`largest_eigenvalue`], so the spectral constants match the legacy
    /// path exactly; only the `O(n²)`-entry storage and the per-application
    /// cost change.
    ///
    /// # Panics
    /// Panics if the graph is empty or `alpha` is outside `(0, 1)` (the
    /// [`transition_matrix`] contract), or a pinned `lambda_max` is not
    /// positive.
    pub fn directed(g: &DiGraph, alpha: f32, lambda_max: Option<f32>, k: usize) -> Self {
        let p = transition_matrix(g, alpha);
        let phi = stationary_distribution(&p);
        let lambda_max =
            lambda_max.unwrap_or_else(|| largest_eigenvalue(&cas_laplacian_from(&p, &phi)));
        assert!(
            lambda_max > 0.0,
            "directed operator: lambda_max must be positive, got {lambda_max}"
        );
        let n = g.node_count();
        let two_over = 2.0 / lambda_max;
        let teleport = (1.0 - alpha) / n as f32;
        let s: Vec<f32> = phi.iter().map(|&x| x.max(1e-12).sqrt()).collect();
        // Self-loop-patched adjacency, exactly as `transition_matrix` builds
        // its normalizer.
        let mut w = g.adjacency();
        for (i, &d) in g.weighted_out_degrees().iter().enumerate() {
            // lint: allow(float-eq) — dangling nodes have an exactly-zero out-degree by construction
            if d == 0.0 {
                w[(i, i)] = 1.0;
            }
        }
        let mut rows: Vec<Vec<(usize, f32)>> = Vec::with_capacity(n);
        for r in 0..n {
            let row_sum: f32 = w.row(r).iter().sum();
            let mut entries: Vec<(usize, f32)> = Vec::new();
            let mut has_diag = false;
            for (c, &wv) in w.row(r).iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity test: only true zeros are dropped from S
                if wv == 0.0 {
                    continue;
                }
                let a_rc = alpha * wv / row_sum;
                let val = if r == c {
                    has_diag = true;
                    two_over * (1.0 - a_rc) - 1.0
                } else {
                    -(two_over * s[r] * a_rc / s[c])
                };
                entries.push((c, val));
            }
            if !has_diag {
                // The identity contribution `(2/λ)·δ_rc − δ_rc` for rows
                // without a stored self-loop. Kept even when it is exactly
                // zero (λ_max pinned to 2) so the row structure — and the
                // persisted text form — is independent of the pin.
                let pos = entries.partition_point(|&(c, _)| c < r);
                entries.insert(pos, (r, two_over - 1.0));
            }
            rows.push(entries);
        }
        let csr = Csr::from_rows(n, &rows);
        let v: Vec<f32> = s.iter().map(|&x| 1.0 / x).collect();
        let coeff = -(two_over * teleport);
        let op = Arc::new(SparseOp::new(csr, Some((coeff, s, v))));
        Self { lambda_max, k, op }
    }

    /// Rebuilds a handle from persisted parts (the snapshot loader).
    pub fn from_parts(lambda_max: f32, k: usize, op: Arc<SparseOp>) -> Self {
        Self { lambda_max, k, op }
    }

    /// Number of nodes the operator covers.
    pub fn num_nodes(&self) -> usize {
        self.op.dim()
    }

    /// The Chebyshev order `K` (the operator drives `K + 1` recurrence
    /// terms).
    pub fn order(&self) -> usize {
        self.k
    }

    /// Approximate heap footprint in bytes — the sparse operator — used by
    /// cache-budget accounting. Compare `O(K·n²·4)` for the materialized
    /// bases this replaces.
    pub fn approx_bytes(&self) -> usize {
        self.op.approx_bytes()
    }

    /// The dense scaled Laplacian `Δ̃` (tests and diagnostics).
    pub fn scaled_dense(&self) -> Matrix {
        self.op.to_dense()
    }

    /// Materializes the dense Chebyshev bases `[T_0(Δ̃), …, T_K(Δ̃)]` the
    /// way earlier revisions stored them — the legacy dense-kernel path and
    /// gradient checking use this; the default path never does.
    pub fn materialize(&self) -> Vec<Matrix> {
        chebyshev_bases(&self.op.to_dense(), self.k)
    }
}

/// Chebyshev polynomial bases `[T_0(L̃), …, T_K(L̃)]` via the recursion
/// `T_k = 2 L̃ T_{k-1} − T_{k-2}` (Eq. 2/3). Returns `K + 1` matrices.
pub fn chebyshev_bases(scaled: &Matrix, k: usize) -> Vec<Matrix> {
    let n = scaled.rows();
    let mut bases = Vec::with_capacity(k + 1);
    bases.push(Matrix::eye(n));
    if k >= 1 {
        bases.push(scaled.clone());
    }
    for i in 2..=k {
        let mut next = scaled.matmul(&bases[i - 1]).scale(2.0);
        next.axpy(-1.0, &bases[i - 2]);
        bases.push(next);
    }
    bases
}

/// Dense matrix–vector product through the shared [`cascn_tensor::dot`]
/// kernel. Each output element is one strictly sequential dot product, so
/// the power iterations above stay bit-identical across refactors of the
/// surrounding code.
fn mat_vec(m: &Matrix, x: &[f32]) -> Vec<f32> {
    (0..m.rows()).map(|r| dot(m.row(r), x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::assert_matrix_eq;

    fn fig1() -> DiGraph {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g
    }

    #[test]
    fn transition_rows_are_stochastic_and_positive() {
        let p = transition_matrix(&fig1(), 0.85);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(p.row(r).iter().all(|&x| x > 0.0), "row {r} has a zero entry");
        }
    }

    #[test]
    fn stationary_is_a_fixed_point() {
        let p = transition_matrix(&fig1(), 0.85);
        let phi = stationary_distribution(&p);
        assert!((phi.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // φᵀ P ≈ φᵀ
        let n = p.rows();
        for c in 0..n {
            let projected: f32 = (0..n).map(|r| phi[r] * p[(r, c)]).sum();
            assert!(
                (projected - phi[c]).abs() < 1e-4,
                "column {c}: {projected} vs {}",
                phi[c]
            );
        }
    }

    #[test]
    fn stationary_reports_convergence_on_healthy_input() {
        let p = transition_matrix(&fig1(), 0.85);
        let out = stationary_distribution_checked(&p);
        assert!(out.converged, "Eq. 7 transition matrices converge geometrically");
        assert!(!out.fallback);
        assert!(out.iterations < 10_000, "converged after {} rounds", out.iterations);
        assert_eq!(out.phi, stationary_distribution(&p));
        assert!((out.phi.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stationary_falls_back_to_uniform_on_nan_input() {
        // Regression: a NaN-poisoned P used to flow straight through the
        // `sum` normalizer into φ — and from there into cas_laplacian and
        // every Chebyshev basis.
        let mut p = transition_matrix(&fig1(), 0.85);
        p[(2, 3)] = f32::NAN;
        let out = stationary_distribution_checked(&p);
        assert!(out.fallback, "NaN P must trigger the uniform fallback");
        assert!(!out.converged);
        let n = p.rows();
        assert_eq!(out.phi, vec![1.0 / n as f32; n]);
        let phi = stationary_distribution(&p);
        assert!(phi.iter().all(|x| x.is_finite()), "fallback φ must be finite");
    }

    #[test]
    fn stationary_falls_back_on_degenerate_normalizer() {
        // An all-zero "transition matrix" drives the iterate sum to 0.
        let p = Matrix::zeros(4, 4);
        let out = stationary_distribution_checked(&p);
        assert!(out.fallback);
        assert_eq!(out.phi, vec![0.25; 4]);
        assert_eq!(out.iterations, 1, "degeneracy is detected on the first round");
    }

    #[test]
    fn warm_start_converges_to_cold_answer_fast() {
        let p = transition_matrix(&fig1(), 0.85);
        let cold = stationary_distribution_checked(&p);
        let warm = stationary_distribution_warm(&p, &cold.phi);
        assert!(warm.converged && !warm.fallback);
        // The ε-mix perturbs the seed off the fixed point, so the warm
        // restart re-contracts that perturbation — it must never take
        // *longer* than the cold start.
        assert!(
            warm.iterations <= cold.iterations,
            "warm restart from the answer took {} rounds vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (a, b) in warm.phi.iter().zip(&cold.phi) {
            assert!((a - b).abs() < 1e-5, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn warm_start_zero_entry_seed_matches_cold() {
        // Regression (streaming warm-start degeneracy): `spmv_transpose`
        // skips exact-zero input entries, so an all-zero warm seed produced
        // a zero iterate and the uniform *fallback* outcome — while the cold
        // path on the same healthy P converges normally. Sanitization must
        // make the two paths agree.
        let p = transition_matrix(&fig1(), 0.85);
        let cold = stationary_distribution_checked(&p);
        assert!(cold.converged && !cold.fallback);
        let warm = stationary_distribution_warm(&p, &vec![0.0; p.rows()]);
        assert!(!warm.fallback, "an all-zero seed must not poison a healthy P");
        assert!(warm.converged);
        assert_eq!(warm.phi, cold.phi, "sanitized all-zero seed degrades to the uniform start");
        // Non-finite and negative seeds degrade the same way.
        for bad in [f32::NAN, f32::INFINITY, -1.0] {
            let out = stationary_distribution_warm(&p, &vec![bad; p.rows()]);
            assert_eq!(out.phi, cold.phi);
        }
    }

    #[test]
    fn warm_start_boundary_seed_falls_back_to_cold_on_periodic_p() {
        // P = [[0,1],[1,0]] is periodic: from the simplex boundary seed
        // (1, 0) the raw iterate oscillates forever between the two corners
        // and never converges — before the fix, the warm path returned a
        // seed-dependent corner while the cold path (uniform start) lands
        // exactly on the stationary (0.5, 0.5) in one round. The checked
        // fallback must hand back the cold answer.
        let mut p = Matrix::zeros(2, 2);
        p[(0, 1)] = 1.0;
        p[(1, 0)] = 1.0;
        let cold = stationary_distribution_checked(&p);
        assert!(cold.converged);
        assert_eq!(cold.phi, vec![0.5, 0.5]);
        let warm = stationary_distribution_warm(&p, &[1.0, 0.0]);
        assert!(warm.converged, "fallback must report the cold outcome");
        assert_eq!(warm.phi, cold.phi, "seed corner must not leak into the result");
        assert!(
            warm.iterations > cold.iterations,
            "the failed warm attempt is charged to the iteration count"
        );
    }

    #[test]
    fn cas_laplacian_stays_finite_for_degenerate_stationary_input() {
        // End-to-end: even when φ falls back, the Laplacian built from it
        // must be finite (the anomaly guard depends on preprocessing never
        // emitting NaN bases for structurally valid cascades).
        let g = fig1();
        let lap = cas_laplacian(&g, 0.85);
        assert!(lap.all_finite());
    }

    #[test]
    fn cas_laplacian_annihilates_sqrt_stationary() {
        let g = fig1();
        let lap = cas_laplacian(&g, 0.85);
        let v = sqrt_stationary(&g, 0.85);
        for r in 0..lap.rows() {
            let y: f32 = lap.row(r).iter().zip(&v).map(|(&a, &b)| a * b).sum();
            assert!(y.abs() < 1e-4, "row {r} maps sqrt-stationary to {y}");
        }
    }

    #[test]
    fn cas_laplacian_is_asymmetric_for_directed_input() {
        let lap = cas_laplacian(&fig1(), 0.85);
        let mut asym = 0.0f32;
        for r in 0..lap.rows() {
            for c in 0..r {
                asym = asym.max((lap[(r, c)] - lap[(c, r)]).abs());
            }
        }
        assert!(asym > 1e-4, "CasLaplacian should retain directionality");
    }

    #[test]
    fn single_node_cascade_is_handled() {
        let g = DiGraph::new(1);
        let lap = cas_laplacian(&g, 0.85);
        assert_eq!(lap.shape(), (1, 1));
        assert!(lap[(0, 0)].abs() < 1e-5, "1-node laplacian should be ~0");
    }

    #[test]
    fn undirected_laplacian_is_symmetric_psd() {
        let lap = undirected_normalized_laplacian(&fig1());
        for r in 0..lap.rows() {
            for c in 0..lap.cols() {
                assert!((lap[(r, c)] - lap[(c, r)]).abs() < 1e-6);
            }
        }
        // Rayleigh quotients of a normalized Laplacian lie in [0, 2].
        let lmax = largest_eigenvalue(&lap);
        assert!(lmax > 0.0 && lmax <= 2.0 + 1e-4, "λmax = {lmax}");
    }

    #[test]
    fn largest_eigenvalue_of_diag_matrix() {
        let m = Matrix::diag(&[0.5, 1.7, 0.3]);
        let l = largest_eigenvalue(&m);
        assert!((l - 1.7).abs() < 1e-3, "got {l}");
    }

    #[test]
    fn scale_laplacian_maps_spectrum() {
        // For L = diag(0, 2) and λmax = 2: scaled = diag(-1, 1).
        let l = Matrix::diag(&[0.0, 2.0]);
        let s = scale_laplacian(&l, 2.0);
        assert_matrix_eq(&s, &Matrix::diag(&[-1.0, 1.0]), 1e-6);
    }

    #[test]
    fn chebyshev_matches_cosine_formula_on_diagonal() {
        // For diagonal L̃ with entries x ∈ [-1, 1], T_k(L̃) must be diagonal
        // with entries cos(k·arccos(x)).
        let xs = [-0.9f32, -0.2, 0.4, 1.0];
        let l = Matrix::diag(&xs);
        let bases = chebyshev_bases(&l, 4);
        for (k, t) in bases.iter().enumerate() {
            for (i, &x) in xs.iter().enumerate() {
                let expect = (k as f32 * x.acos()).cos();
                assert!(
                    (t[(i, i)] - expect).abs() < 1e-4,
                    "T_{k}({x}) = {} vs cos formula {expect}",
                    t[(i, i)]
                );
            }
        }
    }

    #[test]
    fn chebyshev_t0_t1_identities() {
        let lap = cas_laplacian(&fig1(), 0.85);
        let scaled = scale_laplacian(&lap, largest_eigenvalue(&lap));
        let bases = chebyshev_bases(&scaled, 2);
        assert_matrix_eq(&bases[0], &Matrix::eye(6), 1e-6);
        assert_matrix_eq(&bases[1], &scaled, 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn transition_rejects_bad_alpha() {
        let _ = transition_matrix(&fig1(), 1.5);
    }

    #[test]
    fn spectral_basis_matches_manual_pipeline() {
        let lap = cas_laplacian(&fig1(), 0.85);
        let handle = SpectralBasis::from_laplacian(&lap, None, 3);
        let lmax = largest_eigenvalue(&lap);
        assert_eq!(handle.lambda_max, lmax);
        let scaled = scale_laplacian(&lap, lmax);
        assert_matrix_eq(&handle.scaled_dense(), &scaled, 0.0);
        let bases = handle.materialize();
        let manual = chebyshev_bases(&scaled, 3);
        assert_eq!(bases.len(), manual.len());
        for (b, m) in bases.iter().zip(&manual) {
            assert_matrix_eq(b, m, 0.0);
        }
        assert_eq!(handle.num_nodes(), 6);
        assert_eq!(handle.order(), 3);
        // Operator storage beats the 5 dense 6x6 bases the old handle held.
        assert!(handle.approx_bytes() < 5 * 6 * 6 * 4);
    }

    #[test]
    fn spectral_basis_pins_lambda_max() {
        let lap = cas_laplacian(&fig1(), 0.85);
        let handle = SpectralBasis::from_laplacian(&lap, Some(2.0), 2);
        assert_eq!(handle.lambda_max, 2.0);
        assert_matrix_eq(&handle.scaled_dense(), &scale_laplacian(&lap, 2.0), 0.0);
        assert_eq!(handle.materialize().len(), 3, "K + 1 bases");
    }

    #[test]
    fn directed_operator_matches_dense_scaled_laplacian() {
        let g = fig1();
        for lmax in [None, Some(2.0)] {
            let handle = SpectralBasis::directed(&g, 0.85, lmax, 2);
            let lap = cas_laplacian(&g, 0.85);
            let dense = scale_laplacian(&lap, handle.lambda_max);
            assert_matrix_eq(&handle.scaled_dense(), &dense, 1e-5);
            // The core must stay as sparse as the cascade: 5 edges + 6
            // diagonal entries + dangling self-loops, nowhere near 36.
            assert!(
                handle.op.nnz() <= 2 * g.edge_count() + g.node_count(),
                "core nnz {} is not sparse",
                handle.op.nnz()
            );
            assert!(handle.op.rank1().is_some(), "teleport mass must be rank-1");
        }
    }

    #[test]
    fn directed_operator_lambda_matches_dense_estimate() {
        let g = fig1();
        let handle = SpectralBasis::directed(&g, 0.85, None, 2);
        let dense_lmax = largest_eigenvalue(&cas_laplacian(&g, 0.85));
        assert_eq!(
            handle.lambda_max.to_bits(),
            dense_lmax.to_bits(),
            "operator path must reuse the exact dense λ_max pipeline"
        );
    }

    #[test]
    fn directed_operator_apply_matches_materialized_products() {
        let g = fig1();
        let handle = SpectralBasis::directed(&g, 0.85, None, 3);
        let x = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f32).sin());
        let got = handle.op.apply(&x);
        let expect = handle.scaled_dense().matmul(&x);
        assert_matrix_eq(&got, &expect, 1e-5);
    }

    #[test]
    fn directed_operator_single_node() {
        let g = DiGraph::new(1);
        let handle = SpectralBasis::directed(&g, 0.85, None, 2);
        assert_eq!(handle.num_nodes(), 1);
        let x = Matrix::row_vector(&[1.0, 2.0]);
        assert!(handle.op.apply(&x).all_finite());
    }
}
