//! Incremental maintenance of the directed CasLaplacian operator under
//! single-node/single-edge insertion — the spectral layer behind streaming
//! `/observe` ingestion.
//!
//! A growing cascade changes its spectral operator in a structured way: one
//! new adoption appends one node (dangling, so it gets the patched
//! self-loop) and one edge (its parent may *lose* the patched self-loop if
//! this is its first child). The stationary distribution `φ` moves
//! everywhere, but only by a rank-1-perturbation's worth — a power
//! iteration warm-started from the previous `φ` re-converges in a handful
//! of `O(nnz)` rounds instead of the cold path's dense `O(n²)` rounds. The
//! CSR core of `Δ̃ = S + coeff·u·vᵀ` changes structurally in exactly two
//! rows (the parent's and the new node's); every stored *value* is
//! refreshed in place in `O(nnz)` because `φ` is global.
//!
//! The invariant, property-tested here and end-to-end in the workspace
//! suite: after any sequence of [`IncrementalSpectral::push_child`] calls,
//! the maintained operator matches [`SpectralBasis::directed`] built from
//! scratch on the same graph to within the streaming parity tolerance
//! (`5e-4` on predictions; entrywise far tighter), for both `λ_max` modes.

use std::sync::Arc;

use cascn_tensor::{dot, Csr, SparseOp};

use crate::laplacian::{
    sanitize_warm_seed, stationary_distribution_checked, transition_matrix, SpectralBasis,
    STATIONARY_MAX_ITERS,
};
use crate::DiGraph;

/// Warm-iteration round cap before the incremental path gives up and pays
/// for a cold dense restart. Cascade transition matrices contract
/// geometrically (spectral gap ≥ α), so healthy updates converge in far
/// fewer rounds; the cap only bounds pathological inputs.
const WARM_PHI_MAX_ITERS: usize = 2_000;

/// Incrementally maintained spectral state of one growing cascade.
///
/// Holds the cascade's out-adjacency, its stationary distribution `φ`, and
/// the scaled directed CasLaplacian as a [`SpectralBasis`] (sparse core +
/// rank-1 teleport). [`IncrementalSpectral::push_child`] advances all three
/// under a single-event insertion in `O(nnz)` (plus the warm power
/// iterations), never rebuilding the dense `n×n` pipeline.
#[derive(Debug, Clone)]
pub struct IncrementalSpectral {
    alpha: f32,
    /// `Some(λ)` pins the Chebyshev scaling (the paper's `λ_max ≈ 2`
    /// shortcut); `None` re-estimates the largest eigenvalue sparsely on
    /// every push, mirroring the dense `largest_eigenvalue` estimator.
    pinned_lambda: Option<f32>,
    k: usize,
    /// Out-adjacency: `children[r]` is `(child, weight)` sorted by child.
    children: Vec<Vec<(usize, f32)>>,
    phi: Vec<f32>,
    /// Master copy of the scaled operator's CSR core; cloned into the
    /// published basis after each push.
    csr: Csr,
    lambda_max: f32,
    basis: SpectralBasis,
    warm_fallbacks: u64,
}

impl IncrementalSpectral {
    /// Cold-initializes the state from an existing cascade graph — the
    /// one-time cost when a live cascade is first registered (or restored
    /// from a snapshot). The published basis is exactly
    /// [`SpectralBasis::directed`] on `g`.
    ///
    /// # Panics
    /// Panics if the graph is empty or `alpha` is outside `(0, 1)` (the
    /// [`transition_matrix`] contract).
    pub fn from_graph(g: &DiGraph, alpha: f32, lambda_max: Option<f32>, k: usize) -> Self {
        let basis = SpectralBasis::directed(g, alpha, lambda_max, k);
        let p = transition_matrix(g, alpha);
        let phi = stationary_distribution_checked(&p).phi;
        let n = g.node_count();
        let mut children: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        for (u, v, w) in g.edges() {
            children[u].push((v, w));
        }
        for c in &mut children {
            c.sort_unstable_by_key(|&(v, _)| v);
        }
        Self {
            alpha,
            pinned_lambda: lambda_max,
            k,
            children,
            phi,
            csr: basis.op.csr().clone(),
            lambda_max: basis.lambda_max,
            basis,
            warm_fallbacks: 0,
        }
    }

    /// Number of nodes currently covered.
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// The maintained stationary distribution.
    pub fn phi(&self) -> &[f32] {
        &self.phi
    }

    /// The current scaled operator (cheap clone: the heavy parts are
    /// behind an `Arc`).
    pub fn basis(&self) -> SpectralBasis {
        self.basis.clone()
    }

    /// How many pushes abandoned the warm φ iteration for a cold dense
    /// restart. Stays at zero on healthy cascade trees; surfaced in serve
    /// metrics so a pathological workload is visible.
    pub fn warm_fallbacks(&self) -> u64 {
        self.warm_fallbacks
    }

    /// Approximate heap footprint (operator + adjacency + φ) for registry
    /// memory accounting.
    pub fn approx_bytes(&self) -> usize {
        let adj: usize = self
            .children
            .iter()
            .map(|c| c.len() * std::mem::size_of::<(usize, f32)>())
            .sum();
        self.basis.approx_bytes() + adj + self.phi.len() * std::mem::size_of::<f32>()
    }

    /// Appends one adoption: a new node whose parent is `parent`.
    ///
    /// Updates the adjacency, warm-restarts `φ`, re-estimates `λ_max`
    /// (unless pinned), splices the two structurally changed CSR rows,
    /// refreshes every stored value in place, and republishes the basis.
    ///
    /// # Panics
    /// Panics if `parent` is out of range.
    pub fn push_child(&mut self, parent: usize) {
        let new = self.children.len();
        assert!(parent < new, "push_child: parent {parent} out of range for {new} nodes");
        let n = new + 1;
        self.children[parent].push((new, 1.0));
        self.children.push(Vec::new());

        // φ: warm power iteration from the previous distribution, the new
        // node seeded at its teleport-only floor.
        let mut seed = std::mem::take(&mut self.phi);
        seed.push((1.0 - self.alpha) / n as f32);
        self.phi = self.warm_phi(&seed);

        let s: Vec<f32> = self.phi.iter().map(|&x| x.max(1e-12).sqrt()).collect();
        self.lambda_max = match self.pinned_lambda {
            Some(v) => v,
            None => self.estimate_lambda(&s),
        };

        // Structure: the parent row changes shape (it may have been
        // dangling), the new node's row is appended dangling.
        self.csr.grow_cols(n);
        let two_over = 2.0 / self.lambda_max;
        let parent_row = self.build_row(parent, &s, two_over);
        self.csr.set_row(parent, &parent_row);
        let new_row = self.build_row(new, &s, two_over);
        self.csr.push_row(&new_row);

        // Values: φ moved under every entry, so refresh all of them in
        // place (`O(nnz)`, no structural work).
        for r in 0..n {
            let row = self.build_row(r, &s, two_over);
            for ((_, v), &(_, fresh)) in self.csr.row_values_mut(r).zip(&row) {
                *v = fresh;
            }
        }

        let teleport = (1.0 - self.alpha) / n as f32;
        let coeff = -(two_over * teleport);
        let v: Vec<f32> = s.iter().map(|&x| 1.0 / x).collect();
        self.basis = SpectralBasis::from_parts(
            self.lambda_max,
            self.k,
            Arc::new(SparseOp::new(self.csr.clone(), Some((coeff, s, v)))),
        );
    }

    /// One row of the scaled operator's sparse core, mirroring the
    /// construction (and f32 operation order) of [`SpectralBasis::directed`]:
    /// dangling rows carry only the patched self-loop entry; rows with
    /// children carry one entry per child plus the identity diagonal, kept
    /// even when it is exactly zero so row structure is pin-independent.
    fn build_row(&self, r: usize, s: &[f32], two_over: f32) -> Vec<(usize, f32)> {
        let cs = &self.children[r];
        if cs.is_empty() {
            // Patched self-loop: w_rr = 1, row_sum = 1, a_rr = α.
            return vec![(r, two_over * (1.0 - self.alpha) - 1.0)];
        }
        let row_sum: f32 = cs.iter().map(|&(_, w)| w).sum();
        let mut entries: Vec<(usize, f32)> = Vec::with_capacity(cs.len() + 1);
        let mut has_diag = false;
        for &(c, wv) in cs {
            let a_rc = self.alpha * wv / row_sum;
            let val = if r == c {
                has_diag = true;
                two_over * (1.0 - a_rc) - 1.0
            } else {
                -(two_over * s[r] * a_rc / s[c])
            };
            entries.push((c, val));
        }
        if !has_diag {
            let pos = entries.partition_point(|&(c, _)| c < r);
            entries.insert(pos, (r, two_over - 1.0));
        }
        entries
    }

    /// Sparse warm power iteration for `φᵀP = φᵀ` over the adjacency
    /// lists: `next[c] = teleport·Σφ + α·Σ_r φ[r]·w_rc/rowsum_r`, with
    /// dangling rows contributing their patched self-loop mass. `O(nnz)`
    /// per round. Falls back to the cold dense path when it fails to
    /// converge — the result is then exactly what a from-scratch
    /// preprocessing would have used.
    fn warm_phi(&mut self, seed: &[f32]) -> Vec<f32> {
        let n = self.children.len();
        let teleport = (1.0 - self.alpha) / n as f32;
        let mut phi = sanitize_warm_seed(seed, n);
        let mut converged = false;
        // f32 iterates can cycle with a constant ~1e-7 delta instead of
        // reaching the 1e-10 tolerance (the dense path burns its full
        // round budget on such graphs and keeps the last iterate). Accept
        // the iterate once the delta has stopped improving at a level
        // already below the streaming parity tolerance.
        let mut best = f32::INFINITY;
        let mut stale = 0usize;
        for _ in 0..WARM_PHI_MAX_ITERS.min(STATIONARY_MAX_ITERS) {
            let sphi: f32 = phi.iter().sum();
            let mut next = vec![teleport * sphi; n];
            for (r, cs) in self.children.iter().enumerate() {
                if cs.is_empty() {
                    next[r] += self.alpha * phi[r];
                    continue;
                }
                let row_sum: f32 = cs.iter().map(|&(_, w)| w).sum();
                let f = self.alpha * phi[r] / row_sum;
                for &(c, w) in cs {
                    next[c] += f * w;
                }
            }
            let sum: f32 = next.iter().sum();
            if !sum.is_finite() || sum <= 0.0 {
                converged = false;
                break;
            }
            for x in &mut next {
                *x /= sum;
            }
            let delta: f32 = phi
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            phi = next;
            if delta < 1e-10 {
                converged = true;
                break;
            }
            if delta < best {
                best = delta;
                stale = 0;
            } else {
                stale += 1;
                if stale >= 32 && delta < 1e-6 {
                    converged = true;
                    break;
                }
            }
        }
        if converged {
            return phi;
        }
        // Cold restart: rebuild the dense transition matrix once and let
        // the checked path (with its own degeneracy handling) decide.
        self.warm_fallbacks += 1;
        let mut g = DiGraph::new(n);
        for (r, cs) in self.children.iter().enumerate() {
            for &(c, w) in cs {
                g.add_edge(r, c, w);
            }
        }
        stationary_distribution_checked(&transition_matrix(&g, self.alpha)).phi
    }

    /// Sparse replica of [`crate::laplacian::largest_eigenvalue`]: power
    /// iteration on the positively shifted symmetric part of the
    /// *unscaled* CasLaplacian `Δ = S_Δ − teleport·u·vᵀ`, applied in
    /// `O(nnz)` per round through the adjacency lists. The Gershgorin
    /// shift is computed exactly from `Δ`'s sign structure (positive
    /// diagonal, negative off-diagonals), so no dense matrix is formed.
    fn estimate_lambda(&self, s: &[f32]) -> f32 {
        let n = self.children.len();
        if n == 1 {
            let d = self.delta_apply(&[1.0], s, false)[0];
            return if d.abs() > 1e-6 { d.abs() } else { 2.0 };
        }
        // Gershgorin bound on the symmetric part via sign structure:
        // Σ_c |sym_rc| = 2·Δ_rr − ½·(rowΣ_r(Δ) + colΣ_r(Δ)).
        let teleport = (1.0 - self.alpha) / n as f32;
        let inv_s: Vec<f32> = s.iter().map(|&x| 1.0 / x).collect();
        let sum_s: f32 = s.iter().sum();
        let sum_inv: f32 = inv_s.iter().sum();
        let mut row_sum = vec![0.0f32; n];
        let mut col_sum = vec![0.0f32; n];
        let mut diag = vec![0.0f32; n];
        for (r, cs) in self.children.iter().enumerate() {
            if cs.is_empty() {
                let val = 1.0 - self.alpha;
                row_sum[r] += val;
                col_sum[r] += val;
                diag[r] += val;
                continue;
            }
            let rs: f32 = cs.iter().map(|&(_, w)| w).sum();
            let mut has_diag = false;
            for &(c, wv) in cs {
                let a_rc = self.alpha * wv / rs;
                let val = if r == c {
                    has_diag = true;
                    1.0 - a_rc
                } else {
                    -(s[r] * a_rc / s[c])
                };
                row_sum[r] += val;
                col_sum[c] += val;
                if r == c {
                    diag[r] += val;
                }
            }
            if !has_diag {
                row_sum[r] += 1.0;
                col_sum[r] += 1.0;
                diag[r] += 1.0;
            }
        }
        let mut shift = 0.0f32;
        for r in 0..n {
            let row_t = row_sum[r] - teleport * s[r] * sum_inv;
            let col_t = col_sum[r] - teleport * inv_s[r] * sum_s;
            let d = diag[r] - teleport * (s[r] * inv_s[r]);
            shift = shift.max(2.0 * d - 0.5 * (row_t + col_t));
        }
        shift = shift.max(0.0);

        let sym = |x: &[f32]| -> Vec<f32> {
            let fwd = self.delta_apply(x, s, false);
            let bwd = self.delta_apply(x, s, true);
            fwd.iter().zip(&bwd).map(|(a, b)| 0.5 * (a + b)).collect()
        };
        let mut x = vec![1.0f32; n];
        let mut lambda = 0.0f32;
        for _ in 0..200 {
            let mut y = sym(&x);
            for (yi, &xi) in y.iter_mut().zip(&x) {
                *yi += shift * xi;
            }
            let norm = y.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm < 1e-20 {
                return 2.0;
            }
            let xn: Vec<f32> = y.iter().map(|v| v / norm).collect();
            let mut z = sym(&xn);
            for (zi, &xi) in z.iter_mut().zip(&xn) {
                *zi += shift * xi;
            }
            let new_lambda = dot(&z, &xn);
            let done = (new_lambda - lambda).abs() < 1e-7 * new_lambda.abs().max(1.0);
            lambda = new_lambda;
            x = xn;
            if done {
                break;
            }
        }
        let result = lambda - shift;
        if result.is_finite() && result > 1e-3 {
            result
        } else {
            2.0
        }
    }

    /// `y = Δ·x` (or `Δᵀ·x`) for the unscaled CasLaplacian in
    /// sparse-plus-rank-1 form, `O(nnz + n)`.
    fn delta_apply(&self, x: &[f32], s: &[f32], transpose: bool) -> Vec<f32> {
        let n = self.children.len();
        let teleport = (1.0 - self.alpha) / n as f32;
        let mut y = vec![0.0f32; n];
        for (r, cs) in self.children.iter().enumerate() {
            if cs.is_empty() {
                y[r] += (1.0 - self.alpha) * x[r];
                continue;
            }
            let rs: f32 = cs.iter().map(|&(_, w)| w).sum();
            let mut has_diag = false;
            for &(c, wv) in cs {
                let a_rc = self.alpha * wv / rs;
                let val = if r == c {
                    has_diag = true;
                    1.0 - a_rc
                } else {
                    -(s[r] * a_rc / s[c])
                };
                if transpose {
                    y[c] += val * x[r];
                } else {
                    y[r] += val * x[c];
                }
            }
            if !has_diag {
                y[r] += x[r];
            }
        }
        // Rank-1 teleport: Δ −= teleport·s·(1/s)ᵀ.
        if transpose {
            let folded: f32 = s.iter().zip(x).map(|(&u, &xi)| u * xi).sum();
            for (yc, &sc) in y.iter_mut().zip(s) {
                *yc -= teleport * folded / sc;
            }
        } else {
            let folded: f32 = s.iter().zip(x).map(|(&u, &xi)| xi / u).sum();
            for (yr, &sr) in y.iter_mut().zip(s) {
                *yr -= teleport * sr * folded;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{largest_eigenvalue, cas_laplacian};

    /// Deterministic xorshift for random tree shapes.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn graph_from_parents(parents: &[usize]) -> DiGraph {
        let mut g = DiGraph::new(parents.len() + 1);
        for (i, &p) in parents.iter().enumerate() {
            g.add_edge(p, i + 1, 1.0);
        }
        g
    }

    fn assert_parity(inc: &IncrementalSpectral, g: &DiGraph, lmax: Option<f32>, tol: f32) {
        let cold = SpectralBasis::directed(g, 0.85, lmax, 2);
        let a = inc.basis();
        assert_eq!(a.num_nodes(), cold.num_nodes());
        let rel = (a.lambda_max - cold.lambda_max).abs() / cold.lambda_max.max(1.0);
        assert!(
            rel < 1e-3,
            "λ drift {rel}: incremental {} vs cold {}",
            a.lambda_max,
            cold.lambda_max
        );
        let da = a.scaled_dense();
        let dc = cold.scaled_dense();
        let mut worst = 0.0f32;
        for (x, y) in da.as_slice().iter().zip(dc.as_slice()) {
            worst = worst.max((x - y).abs());
        }
        assert!(
            worst < tol,
            "operator drift {worst} over {} nodes (tol {tol})",
            g.node_count()
        );
    }

    #[test]
    fn push_child_matches_cold_directed_over_random_orders() {
        for seed in 1..=8u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let n = 4 + rng.below(20);
            let parents: Vec<usize> = (1..n).map(|i| rng.below(i)).collect();
            for lmax in [None, Some(2.0)] {
                let mut inc =
                    IncrementalSpectral::from_graph(&DiGraph::new(1), 0.85, lmax, 2);
                for (i, &p) in parents.iter().enumerate() {
                    inc.push_child(p);
                    // Parity at every prefix, not just the end state.
                    let g = graph_from_parents(&parents[..=i]);
                    assert_parity(&inc, &g, lmax, 2e-4);
                }
                assert_eq!(
                    inc.warm_fallbacks(),
                    0,
                    "healthy cascade trees must never need the cold restart"
                );
            }
        }
    }

    #[test]
    fn from_graph_is_exactly_the_cold_basis() {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        let inc = IncrementalSpectral::from_graph(&g, 0.85, None, 3);
        let cold = SpectralBasis::directed(&g, 0.85, None, 3);
        assert_eq!(inc.basis().lambda_max.to_bits(), cold.lambda_max.to_bits());
        assert_eq!(
            inc.basis().scaled_dense().as_slice(),
            cold.scaled_dense().as_slice(),
            "cold init must be bit-identical to the batch path"
        );
        assert_eq!(inc.num_nodes(), 6);
        assert!(inc.approx_bytes() > 0);
    }

    #[test]
    fn mid_graph_init_then_pushes_keep_parity() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        let mut inc = IncrementalSpectral::from_graph(&g, 0.85, None, 2);
        for p in [1, 2, 0, 3] {
            inc.push_child(p);
        }
        let full = graph_from_parents(&[0, 0, 1, 2, 0, 3]);
        assert_parity(&inc, &full, None, 2e-4);
    }

    #[test]
    fn phi_tracks_the_stationary_distribution() {
        let mut inc = IncrementalSpectral::from_graph(&DiGraph::new(1), 0.85, None, 2);
        for p in [0, 0, 1, 1, 3] {
            inc.push_child(p);
        }
        let g = graph_from_parents(&[0, 0, 1, 1, 3]);
        let cold = stationary_distribution_checked(&transition_matrix(&g, 0.85));
        assert!(cold.converged);
        for (a, b) in inc.phi().iter().zip(&cold.phi) {
            assert!((a - b).abs() < 1e-5, "φ drift: {a} vs {b}");
        }
        assert!((inc.phi().iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sparse_lambda_matches_dense_estimator() {
        let g = graph_from_parents(&[0, 0, 1, 1, 3, 2, 4]);
        let mut inc = IncrementalSpectral::from_graph(&DiGraph::new(1), 0.85, None, 2);
        for &p in &[0usize, 0, 1, 1, 3, 2, 4] {
            inc.push_child(p);
        }
        let dense = largest_eigenvalue(&cas_laplacian(&g, 0.85));
        let rel = (inc.basis().lambda_max - dense).abs() / dense;
        assert!(
            rel < 1e-3,
            "sparse λ {} vs dense {} (rel {rel})",
            inc.basis().lambda_max,
            dense
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_child_rejects_forward_parent() {
        let mut inc = IncrementalSpectral::from_graph(&DiGraph::new(1), 0.85, Some(2.0), 2);
        inc.push_child(5);
    }
}
