//! Random-walk sampling over cascade graphs.
//!
//! DeepCas and the `CasCN-Path` variant represent a cascade as a bag of
//! random-walk node sequences; Node2Vec uses biased second-order walks.
//! Both samplers live here so every model draws from the same machinery.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::{Csr, DiGraph};

/// Configuration for DeepCas-style uniform walk sampling.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Number of walks sampled per cascade.
    pub num_walks: usize,
    /// Maximum walk length (walks stop early at sinks).
    pub walk_length: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        // DeepCas defaults: K = 200 sequences of length 10; scaled to the
        // small cascades this reproduction trains on.
        Self {
            num_walks: 32,
            walk_length: 10,
        }
    }
}

/// Samples one uniform random walk starting at `start`, following outgoing
/// edges with probability proportional to weight, stopping at sinks.
pub fn random_walk(csr: &Csr, start: usize, max_len: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut walk = Vec::with_capacity(max_len);
    let mut cur = start;
    walk.push(cur);
    while walk.len() < max_len {
        let row = csr.row(cur);
        if row.is_empty() {
            break;
        }
        cur = weighted_choice(row, rng);
        walk.push(cur);
    }
    walk
}

/// Samples `cfg.num_walks` walks from a cascade graph. Walk starts are drawn
/// from the root set when available (information flows outward from the
/// initiator), falling back to uniform nodes for degenerate graphs.
pub fn sample_walks(g: &DiGraph, cfg: WalkConfig, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let csr = g.out_csr();
    let roots = g.roots();
    let n = g.node_count();
    (0..cfg.num_walks)
        .map(|_| {
            let start = if roots.is_empty() {
                rng.random_range(0..n)
            } else {
                roots[rng.random_range(0..roots.len())]
            };
            random_walk(&csr, start, cfg.walk_length, rng)
        })
        .collect()
}

/// Configuration for node2vec biased walks (Grover & Leskovec 2016).
#[derive(Debug, Clone, Copy)]
pub struct Node2VecConfig {
    /// Return parameter `p`: likelihood of revisiting the previous node.
    pub p: f32,
    /// In-out parameter `q`: BFS (`q > 1`) vs DFS (`q < 1`) bias.
    pub q: f32,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        // The paper's grid centers: p, q ∈ {0.25, 0.5, 1, 2, 4}; length ∈
        // {10..100}; walks per node ∈ {5..20}. Defaults sit mid-grid.
        Self {
            p: 1.0,
            q: 1.0,
            walks_per_node: 10,
            walk_length: 25,
        }
    }
}

/// Samples one node2vec walk over the *undirected view* of the graph (the
/// standard node2vec setting) starting from `start`.
pub fn node2vec_walk(
    undirected: &Csr,
    start: usize,
    cfg: Node2VecConfig,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut walk = Vec::with_capacity(cfg.walk_length);
    let mut prev: Option<usize> = None;
    let mut cur = start;
    walk.push(cur);
    while walk.len() < cfg.walk_length {
        let neighbors = undirected.row(cur);
        if neighbors.is_empty() {
            break;
        }
        let next = match prev {
            None => weighted_choice(neighbors, rng),
            Some(p) => biased_choice(undirected, p, neighbors, cfg.p, cfg.q, rng),
        };
        walk.push(next);
        prev = Some(cur);
        cur = next;
    }
    walk
}

/// Samples node2vec walks from every node of `g` over its undirected view.
pub fn sample_node2vec_walks(g: &DiGraph, cfg: Node2VecConfig, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let undirected = undirected_csr(g);
    let mut walks = Vec::with_capacity(g.node_count() * cfg.walks_per_node);
    for _ in 0..cfg.walks_per_node {
        for start in 0..g.node_count() {
            walks.push(node2vec_walk(&undirected, start, cfg, rng));
        }
    }
    walks
}

/// The undirected CSR view of a directed graph (each edge mirrored).
pub fn undirected_csr(g: &DiGraph) -> Csr {
    Csr::from_edges(
        g.node_count(),
        g.edges()
            .flat_map(|(u, v, w)| [(u, v, w), (v, u, w)]),
    )
}

fn weighted_choice(row: &[(usize, f32)], rng: &mut StdRng) -> usize {
    let total: f32 = row.iter().map(|&(_, w)| w).sum();
    let mut target = rng.random_range(0.0..total.max(f32::MIN_POSITIVE));
    // Rounding can walk `target` past every bucket; the last candidate seen
    // is then the correct choice. Empty rows (guarded by every caller)
    // fall back to node 0 rather than panicking.
    let mut chosen = 0;
    for &(c, w) in row {
        chosen = c;
        if target < w {
            return c;
        }
        target -= w;
    }
    chosen
}

fn biased_choice(
    csr: &Csr,
    prev: usize,
    neighbors: &[(usize, f32)],
    p: f32,
    q: f32,
    rng: &mut StdRng,
) -> usize {
    let prev_neighbors = csr.row(prev);
    let weights: Vec<(usize, f32)> = neighbors
        .iter()
        .map(|&(x, w)| {
            let bias = if x == prev {
                1.0 / p
            } else if prev_neighbors.binary_search_by_key(&x, |&(c, _)| c).is_ok() {
                1.0
            } else {
                1.0 / q
            };
            (x, w * bias)
        })
        .collect();
    weighted_choice(&weights, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fig1() -> DiGraph {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g
    }

    #[test]
    fn walks_follow_edges() {
        let g = fig1();
        let csr = g.out_csr();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let walk = random_walk(&csr, 0, 8, &mut rng);
            assert_eq!(walk[0], 0);
            for pair in walk.windows(2) {
                assert!(
                    csr.row(pair[0]).iter().any(|&(c, _)| c == pair[1]),
                    "walk used a non-edge {}→{}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn walks_stop_at_sinks() {
        let g = fig1();
        let csr = g.out_csr();
        let mut rng = StdRng::seed_from_u64(7);
        let walk = random_walk(&csr, 5, 10, &mut rng);
        assert_eq!(walk, vec![5]);
    }

    #[test]
    fn sample_walks_start_from_roots() {
        let g = fig1();
        let mut rng = StdRng::seed_from_u64(11);
        let walks = sample_walks(
            &g,
            WalkConfig {
                num_walks: 20,
                walk_length: 5,
            },
            &mut rng,
        );
        assert_eq!(walks.len(), 20);
        assert!(walks.iter().all(|w| w[0] == 0), "fig1's only root is node 0");
    }

    #[test]
    fn seeded_walks_are_deterministic() {
        let g = fig1();
        let cfg = WalkConfig::default();
        let w1 = sample_walks(&g, cfg, &mut StdRng::seed_from_u64(3));
        let w2 = sample_walks(&g, cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(w1, w2);
    }

    #[test]
    fn node2vec_walks_cover_undirected_neighbors() {
        let g = fig1();
        let und = undirected_csr(&g);
        let mut rng = StdRng::seed_from_u64(5);
        // From node 5 the undirected view allows moving back to 3.
        let walk = node2vec_walk(
            &und,
            5,
            Node2VecConfig {
                walk_length: 3,
                ..Node2VecConfig::default()
            },
            &mut rng,
        );
        assert!(walk.len() > 1, "undirected walk should escape a sink");
        assert_eq!(walk[1], 3);
    }

    #[test]
    fn extreme_p_discourages_backtracking() {
        // A path graph 0-1-2: from 1 (having come from 0), p=∞ should always
        // move forward to 2.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let und = undirected_csr(&g);
        let cfg = Node2VecConfig {
            p: 1e6,
            q: 1.0,
            walk_length: 3,
            walks_per_node: 1,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let walk = node2vec_walk(&und, 0, cfg, &mut rng);
            assert_eq!(walk, vec![0, 1, 2], "high p must forbid backtracking");
        }
    }

    #[test]
    fn sample_node2vec_walks_count() {
        let g = fig1();
        let cfg = Node2VecConfig {
            walks_per_node: 3,
            walk_length: 4,
            ..Node2VecConfig::default()
        };
        let walks = sample_node2vec_walks(&g, cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(walks.len(), 18);
    }
}
