//! A compact weighted directed graph.

use cascn_tensor::Matrix;

use crate::Csr;

/// A weighted directed graph over nodes `0..n`.
///
/// Edges are stored as a flat list and compiled to CSR (forward and reverse)
/// lazily via [`DiGraph::out_csr`] / [`DiGraph::in_csr`]. Cascade graphs in
/// the paper are DAGs; [`DiGraph::is_dag`] and
/// [`DiGraph::topological_order`] support that invariant.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    n: usize,
    edges: Vec<(usize, usize, f32)>,
}

impl DiGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a weighted directed edge `u → v`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f32) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range for {} nodes", self.n);
        self.edges.push((u, v, w));
    }

    /// Grows the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Iterates over `(src, dst, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.edges.iter().copied()
    }

    /// Out-degree (unweighted edge count) of each node.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(u, _, _) in &self.edges {
            d[u] += 1;
        }
        d
    }

    /// In-degree (unweighted edge count) of each node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(_, v, _) in &self.edges {
            d[v] += 1;
        }
        d
    }

    /// Weighted out-degree (sum of outgoing weights) of each node.
    pub fn weighted_out_degrees(&self) -> Vec<f32> {
        let mut d = vec![0.0f32; self.n];
        for &(u, _, w) in &self.edges {
            d[u] += w;
        }
        d
    }

    /// Nodes with no outgoing edges (the frontier/leaves of a cascade DAG).
    pub fn leaves(&self) -> Vec<usize> {
        let d = self.out_degrees();
        (0..self.n).filter(|&i| d[i] == 0).collect()
    }

    /// Nodes with no incoming edges (roots).
    pub fn roots(&self) -> Vec<usize> {
        let d = self.in_degrees();
        (0..self.n).filter(|&i| d[i] == 0).collect()
    }

    /// Forward adjacency in CSR form.
    pub fn out_csr(&self) -> Csr {
        Csr::from_edges(self.n, self.edges.iter().copied())
    }

    /// Reverse adjacency in CSR form (edges flipped).
    pub fn in_csr(&self) -> Csr {
        Csr::from_edges(self.n, self.edges.iter().map(|&(u, v, w)| (v, u, w)))
    }

    /// Dense weighted adjacency matrix `W` with `W[u][v] = weight(u→v)`
    /// (parallel edges sum).
    pub fn adjacency(&self) -> Matrix {
        let mut w = Matrix::zeros(self.n, self.n);
        for &(u, v, wt) in &self.edges {
            w[(u, v)] += wt;
        }
        w
    }

    /// A topological order if the graph is a DAG, `None` otherwise
    /// (Kahn's algorithm).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let csr = self.out_csr();
        let mut indeg = self.in_degrees();
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &(v, _) in csr.row(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Whether the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Longest path length (in edges) from any root, assuming a DAG.
    ///
    /// Returns `None` for cyclic graphs.
    pub fn dag_depth(&self) -> Option<usize> {
        let order = self.topological_order()?;
        let csr = self.out_csr();
        let mut depth = vec![0usize; self.n];
        let mut max = 0;
        for &u in &order {
            for &(v, _) in csr.row(u) {
                if depth[u] + 1 > depth[v] {
                    depth[v] = depth[u] + 1;
                    max = max.max(depth[v]);
                }
            }
        }
        Some(max)
    }

    /// Parents (sources of incoming edges) of `v`, in insertion order.
    pub fn parents(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, d, _)| d == v)
            .map(|&(s, _, _)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 cascade used throughout the paper.
    fn fig1() -> DiGraph {
        let mut g = DiGraph::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g
    }

    #[test]
    fn degrees_match_fig1() {
        let g = fig1();
        assert_eq!(g.out_degrees(), vec![2, 2, 0, 1, 0, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 1, 1, 1]);
        assert_eq!(g.leaves(), vec![2, 4, 5]);
        assert_eq!(g.roots(), vec![0]);
    }

    #[test]
    fn adjacency_is_dense_and_directed() {
        let g = fig1();
        let w = g.adjacency();
        assert_eq!(w[(0, 1)], 1.0);
        assert_eq!(w[(1, 0)], 0.0);
        assert_eq!(w.sum(), 5.0);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = fig1();
        let order = g.topological_order().expect("fig1 is a DAG");
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v, _) in g.edges() {
            assert!(pos[u] < pos[v], "edge {u}->{v} violates topo order");
        }
    }

    #[test]
    fn cycle_is_not_a_dag() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 0, 1.0);
        assert!(!g.is_dag());
        assert!(g.dag_depth().is_none());
    }

    #[test]
    fn dag_depth_of_fig1_is_three() {
        // Longest path: 0 → 1 → 3 → 5.
        assert_eq!(fig1().dag_depth(), Some(3));
    }

    #[test]
    fn parents_listed_in_order() {
        let g = fig1();
        assert_eq!(g.parents(5), vec![3]);
        assert_eq!(g.parents(0), Vec::<usize>::new());
    }

    #[test]
    fn parallel_edges_sum_in_adjacency() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert_eq!(g.adjacency()[(0, 1)], 3.0);
        assert_eq!(g.weighted_out_degrees(), vec![3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 2, 1.0);
    }
}
