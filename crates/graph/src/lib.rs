//! Directed-graph and spectral-graph machinery for the CasCN reproduction.
//!
//! Implements everything Sections III-B and IV-B of the paper require:
//!
//! * [`DiGraph`] — a compact directed graph with CSR adjacency in both
//!   directions, degree queries, DAG checks and topological order;
//! * [`Csr`] — a minimal sparse matrix supporting dense conversion and
//!   matrix–vector products;
//! * transition matrices with teleportation (Eq. 7), stationary
//!   distributions, the **CasLaplacian** `Δ_c = Φ^{1/2}(I − P_c)Φ^{-1/2}`
//!   (Eq. 8, Algorithm 1), the undirected normalized Laplacian (Eq. 9), the
//!   scaled Laplacian `Δ̃_c = 2Δ_c/λ_max − I` and Chebyshev polynomial bases
//!   `T_k(Δ̃_c)` (Eq. 2–4);
//! * uniform and node2vec-biased random walks (used by the DeepCas /
//!   Node2Vec baselines and the CasCN-Path variant).
//!
//! # Example: CasLaplacian of a small cascade
//!
//! ```
//! use cascn_graph::{laplacian, DiGraph};
//!
//! // The Fig. 1 cascade: V0→V1, V0→V2, V1→V3, V1→V4, V3→V5.
//! let mut g = DiGraph::new(6);
//! for &(u, v) in &[(0, 1), (0, 2), (1, 3), (1, 4), (3, 5)] {
//!     g.add_edge(u, v, 1.0);
//! }
//! let lap = laplacian::cas_laplacian(&g, 0.85);
//! assert_eq!(lap.rows(), 6);
//! ```

mod digraph;
pub mod incremental;
pub mod laplacian;
pub mod walks;

// `Csr` moved into `cascn-tensor` so the autograd tape can apply sparse
// operators; re-exported here for the adjacency-traversal call sites.
pub use cascn_tensor::{Csr, SparseOp};
pub use digraph::DiGraph;
pub use incremental::IncrementalSpectral;
pub use laplacian::SpectralBasis;
