//! Compressed sparse row matrices.

use cascn_tensor::Matrix;

/// A sparse matrix in CSR format.
///
/// Stores, per row, the `(column, value)` pairs of its nonzeros. Used for
/// adjacency traversal (random walks, topological sweeps) and sparse
/// matrix–vector products where the dense `n x n` form would waste work.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    entries: Vec<(usize, f32)>,
}

impl Csr {
    /// Builds a square `n x n` CSR matrix from `(row, col, value)` triples.
    /// Duplicate coordinates are kept as separate entries (they sum under
    /// multiplication, matching dense semantics).
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn from_edges(n: usize, edges: impl Iterator<Item = (usize, usize, f32)>) -> Self {
        let mut buckets: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        for (r, c, v) in edges {
            assert!(r < n && c < n, "entry ({r},{c}) out of range for {n}x{n}");
            buckets[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        row_ptr.push(0);
        for mut b in buckets {
            b.sort_unstable_by_key(|&(c, _)| c);
            entries.extend_from_slice(&b);
            row_ptr.push(entries.len());
        }
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr,
            entries,
        }
    }

    /// Builds a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut entries = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity test: only true zeros are dropped from the CSR
                if v != 0.0 {
                    entries.push((c, v));
                }
            }
            row_ptr.push(entries.len());
        }
        Self {
            n_rows: m.rows(),
            n_cols: m.cols(),
            row_ptr,
            entries,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The `(column, value)` pairs of row `r`, sorted by column.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[(usize, f32)] {
        assert!(r < self.n_rows, "row {r} out of range");
        &self.entries[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Dense conversion (duplicates sum).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for &(c, v) in self.row(r) {
                m[(r, c)] += v;
            }
        }
        m
    }

    /// Sparse matrix × dense vector: `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_cols, "spmv: dimension mismatch");
        let mut y = vec![0.0f32; self.n_rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &(c, v) in self.row(r) {
                acc += v * x[c];
            }
            *out = acc;
        }
        y
    }

    /// Transposed product: `y = Aᵀ·x` (used by power iteration on `Pᵀ`).
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn spmv_transpose(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_rows, "spmv_transpose: dimension mismatch");
        let mut y = vec![0.0f32; self.n_cols];
        for (r, &xr) in x.iter().enumerate() {
            // lint: allow(float-eq) — exact-zero skip: NaN/Inf compare unequal and still take the dense path
            if xr == 0.0 {
                continue;
            }
            for &(c, v) in self.row(r) {
                y[c] += v * xr;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::assert_matrix_eq;

    fn sample() -> Csr {
        Csr::from_edges(
            3,
            vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0), (0, 2, 1.0)].into_iter(),
        )
    }

    #[test]
    fn roundtrip_through_dense() {
        let c = sample();
        let d = c.to_dense();
        let c2 = Csr::from_dense(&d);
        assert_matrix_eq(&c2.to_dense(), &d, 0.0);
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let c = sample();
        assert_eq!(c.row(0), &[(1, 2.0), (2, 1.0)]);
        assert_eq!(c.row(1), &[(2, 3.0)]);
    }

    #[test]
    fn spmv_matches_dense_product() {
        let c = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = c.spmv(&x);
        let dense_y = c.to_dense().matmul(&Matrix::col_vector(&x));
        assert_eq!(y, dense_y.as_slice());
    }

    #[test]
    fn spmv_transpose_matches_dense_product() {
        let c = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = c.spmv_transpose(&x);
        let dense_y = c.to_dense().transpose().matmul(&Matrix::col_vector(&x));
        assert_eq!(y, dense_y.as_slice());
    }

    #[test]
    fn duplicates_sum_in_dense_form() {
        let c = Csr::from_edges(2, vec![(0, 1, 1.0), (0, 1, 2.5)].into_iter());
        assert_eq!(c.to_dense()[(0, 1)], 3.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_bounds_checked() {
        let _ = Csr::from_edges(2, vec![(0, 5, 1.0)].into_iter());
    }
}
