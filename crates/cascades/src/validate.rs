//! Cascade invariant validation and data quarantine.
//!
//! Real-world cascade dumps (and the fault-injection harness) contain
//! malformed cascades: non-monotone timestamps, parent references that point
//! forward in time, empty bodies. The strict loaders reject the whole file;
//! the lenient loaders route each bad cascade here and keep going, so one
//! corrupt record cannot take down a training run.

use crate::{Cascade, Event};

/// A violated cascade invariant (paper Definition 1: a time-ordered DAG
/// rooted at event 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CascadeFault {
    /// The event list is empty.
    Empty,
    /// Event 0 has a parent — the first event must be the root post.
    RootHasParent,
    /// The root's time is not 0.0 (times are seconds since the root).
    RootTimeNonZero {
        /// The offending root time.
        time: f64,
    },
    /// An event carries a negative timestamp.
    NegativeTime {
        /// 0-based event index.
        index: usize,
        /// The offending time.
        time: f64,
    },
    /// A non-root event has no parent.
    MissingParent {
        /// 0-based event index.
        index: usize,
    },
    /// An event references a parent at or after its own position — a
    /// dangling/forward parent index.
    ForwardParent {
        /// 0-based event index.
        index: usize,
        /// The out-of-range parent index.
        parent: usize,
    },
    /// Event times are not non-decreasing.
    TimeUnsorted {
        /// 0-based index of the first out-of-order event.
        index: usize,
    },
}

impl std::fmt::Display for CascadeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CascadeFault::Empty => write!(f, "no events"),
            CascadeFault::RootHasParent => write!(f, "event 0 must be the root"),
            CascadeFault::RootTimeNonZero { time } => {
                write!(f, "root must be at t=0 (got {time})")
            }
            CascadeFault::NegativeTime { index, time } => {
                write!(f, "event {index} has negative time {time}")
            }
            CascadeFault::MissingParent { index } => write!(f, "event {index} has no parent"),
            CascadeFault::ForwardParent { index, parent } => {
                write!(f, "event {index} references later parent {parent}")
            }
            CascadeFault::TimeUnsorted { index } => {
                write!(f, "events not time-sorted at {index}")
            }
        }
    }
}

impl std::error::Error for CascadeFault {}

/// Checks every cascade invariant over a raw event list, reporting the first
/// violation.
pub fn validate_events(events: &[Event]) -> Result<(), CascadeFault> {
    let Some(root) = events.first() else {
        return Err(CascadeFault::Empty);
    };
    if root.parent.is_some() {
        return Err(CascadeFault::RootHasParent);
    }
    // lint: allow(float-eq) — the cascade contract pins the root at exactly t=0
    if root.time != 0.0 {
        return Err(CascadeFault::RootTimeNonZero { time: root.time });
    }
    for (i, e) in events.iter().enumerate().skip(1) {
        if e.time < 0.0 {
            return Err(CascadeFault::NegativeTime { index: i, time: e.time });
        }
        match e.parent {
            None => return Err(CascadeFault::MissingParent { index: i }),
            Some(p) if p >= i => return Err(CascadeFault::ForwardParent { index: i, parent: p }),
            Some(_) => {}
        }
        if e.time < events[i - 1].time {
            return Err(CascadeFault::TimeUnsorted { index: i });
        }
    }
    Ok(())
}

impl Cascade {
    /// Fallible counterpart of [`Cascade::new`]: validates the invariants and
    /// returns the violation instead of panicking, so loaders can quarantine
    /// bad cascades.
    pub fn try_new(id: u64, start_time: f64, events: Vec<Event>) -> Result<Self, CascadeFault> {
        validate_events(&events)?;
        Ok(Self {
            id,
            start_time,
            events,
        })
    }
}

/// One cascade rejected by a lenient loader.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedCascade {
    /// The cascade id from its header, when the header itself parsed.
    pub id: Option<u64>,
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

/// Outcome of a lenient load: how many cascades survived and which were
/// quarantined, with reasons.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuarantineReport {
    /// Number of cascades that passed validation.
    pub kept: usize,
    /// Cascades dropped, in input order.
    pub quarantined: Vec<QuarantinedCascade>,
}

impl QuarantineReport {
    /// Whether nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Multi-line human-readable summary for logs and CLI output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("{} cascades loaded, none quarantined", self.kept);
        }
        let mut out = format!(
            "{} cascades loaded, {} quarantined:",
            self.kept,
            self.quarantined.len()
        );
        for q in &self.quarantined {
            let id = q
                .id
                .map(|i| i.to_string())
                .unwrap_or_else(|| "<unknown>".into());
            out.push_str(&format!("\n  - cascade {} (line {}): {}", id, q.line, q.reason));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u64, parent: Option<usize>, time: f64) -> Event {
        Event { user, parent, time }
    }

    #[test]
    fn valid_events_pass() {
        let events = vec![ev(0, None, 0.0), ev(1, Some(0), 1.0), ev(2, Some(1), 1.0)];
        assert_eq!(validate_events(&events), Ok(()));
        assert!(Cascade::try_new(1, 0.0, events).is_ok());
    }

    #[test]
    fn each_fault_is_detected() {
        assert_eq!(validate_events(&[]), Err(CascadeFault::Empty));
        assert_eq!(
            validate_events(&[ev(0, Some(0), 0.0)]),
            Err(CascadeFault::RootHasParent)
        );
        assert_eq!(
            validate_events(&[ev(0, None, 1.0)]),
            Err(CascadeFault::RootTimeNonZero { time: 1.0 })
        );
        assert_eq!(
            validate_events(&[ev(0, None, 0.0), ev(1, Some(0), -2.0)]),
            Err(CascadeFault::NegativeTime { index: 1, time: -2.0 })
        );
        assert_eq!(
            validate_events(&[ev(0, None, 0.0), ev(1, None, 1.0)]),
            Err(CascadeFault::MissingParent { index: 1 })
        );
        assert_eq!(
            validate_events(&[ev(0, None, 0.0), ev(1, Some(3), 1.0)]),
            Err(CascadeFault::ForwardParent { index: 1, parent: 3 })
        );
        assert_eq!(
            validate_events(&[ev(0, None, 0.0), ev(1, Some(0), 5.0), ev(2, Some(0), 2.0)]),
            Err(CascadeFault::TimeUnsorted { index: 2 })
        );
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        let err = Cascade::try_new(9, 0.0, vec![ev(0, None, 0.0), ev(1, Some(5), 1.0)])
            .unwrap_err();
        assert!(err.to_string().contains("references later parent 5"));
    }

    #[test]
    fn report_summary_lists_reasons() {
        let mut rep = QuarantineReport { kept: 3, ..Default::default() };
        assert!(rep.is_clean());
        assert!(rep.summary().contains("none quarantined"));
        rep.quarantined.push(QuarantinedCascade {
            id: Some(7),
            line: 12,
            reason: "events not time-sorted at 2".into(),
        });
        rep.quarantined.push(QuarantinedCascade {
            id: None,
            line: 30,
            reason: "unknown record type `evnt`".into(),
        });
        let s = rep.summary();
        assert!(s.contains("3 cascades loaded, 2 quarantined"));
        assert!(s.contains("cascade 7 (line 12)"));
        assert!(s.contains("cascade <unknown> (line 30)"));
    }
}
