//! Loader for the EchoFlow CSV cascade format.
//!
//! EchoFlow dumps are flat CSV event logs, one adoption per row:
//!
//! ```text
//! user_id,topic_id,timestamp
//! u_001,t_078,1692201000
//! u_034,t_078,1692201417
//! u_001,t_101,1692202210
//! ```
//!
//! Each `topic_id` is one cascade; rows may be interleaved across topics
//! and need not be time-sorted. Ids are the digits of the token (`u_034` →
//! `34`; bare integers also work), timestamps are absolute seconds (integer
//! or fractional).
//!
//! The format carries no reshare edges, so the loader reconstructs the
//! flattest DAG consistent with the data: every later adopter hangs off the
//! root post (the topic's earliest row), times become seconds since that
//! root, and repeat adoptions by the same user are dropped (a user adopts
//! at most once per cascade — the invariant the rest of the workspace
//! assumes). The result round-trips through [`Cascade::try_new`], so every
//! loaded cascade satisfies the validated-cascade invariants.
//!
//! Malformed data follows the same quarantine-on-malformed semantics as the
//! native lenient loader ([`crate::io::dataset_from_str_lenient`]): a bad
//! row poisons exactly its topic's cascade — recorded in the
//! [`QuarantineReport`] with the offending line — and every other topic
//! loads normally. The strict variant fails on the first bad row instead.

use crate::io::ReadError;
use crate::validate::{QuarantineReport, QuarantinedCascade};
use crate::{Cascade, Dataset, Event};

/// Parses an id token: the concatenated ASCII digits of the token
/// (`u_034` → `34`, `17` → `17`). `None` when the token has no digits or
/// the digits overflow `u64`.
fn parse_id(token: &str) -> Option<u64> {
    let digits: String = token.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Whether `line` is the conventional EchoFlow header row.
fn is_header(line: &str) -> bool {
    let mut fields = line.split(',').map(str::trim);
    matches!(
        (fields.next(), fields.next(), fields.next()),
        (Some(u), Some(t), Some(ts))
            if u.eq_ignore_ascii_case("user_id")
                && t.eq_ignore_ascii_case("topic_id")
                && ts.eq_ignore_ascii_case("timestamp")
    )
}

/// One parsed row: `(user, timestamp, 1-based line number)`.
type Row = (u64, f64, usize);

struct Topic {
    id: u64,
    /// Line of the topic's first row — the quarantine anchor when the
    /// cascade itself (rather than a specific row) fails validation.
    first_line: usize,
    rows: Vec<Row>,
    /// First malformed row seen for this topic, which poisons the cascade.
    poisoned: Option<(usize, String)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Strict,
    Lenient,
}

fn parse(text: &str, name_hint: &str, mode: Mode) -> Result<(Dataset, QuarantineReport), ReadError> {
    let mut topics: Vec<Topic> = Vec::new();
    // Slot lookup by topic id; output order is first-seen order via `topics`,
    // so the map is never iterated and determinism is untouched.
    let mut slots: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut report = QuarantineReport::default();
    let mut seen_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !seen_header && is_header(line) {
            seen_header = true;
            continue;
        }
        seen_header = true;

        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Errors carry the topic id when it parsed, so lenient mode can
        // poison the right cascade instead of dropping just the row.
        let parsed: Result<(u64, u64, f64), (Option<u64>, String)> = if fields.len() != 3 {
            let topic = fields.get(1).copied().and_then(parse_id);
            Err((
                topic,
                format!("expected `user_id,topic_id,timestamp`, got {} fields", fields.len()),
            ))
        } else {
            let topic = parse_id(fields[1])
                .ok_or_else(|| format!("unparsable topic id `{}`", fields[1]));
            let user = parse_id(fields[0])
                .ok_or_else(|| format!("unparsable user id `{}`", fields[0]));
            let ts = fields[2]
                .parse::<f64>()
                .ok()
                .filter(|t| t.is_finite())
                .ok_or_else(|| format!("unparsable timestamp `{}`", fields[2]));
            match (topic, user, ts) {
                (Ok(topic), Ok(user), Ok(ts)) => Ok((topic, user, ts)),
                (topic, user, ts) => {
                    let message = [user.err(), topic.clone().err(), ts.err()]
                        .into_iter()
                        .flatten()
                        .collect::<Vec<_>>()
                        .join("; ");
                    Err((topic.ok(), message))
                }
            }
        };

        match parsed {
            Ok((topic_id, user, ts)) => {
                let slot = *slots.entry(topic_id).or_insert_with(|| {
                    topics.push(Topic {
                        id: topic_id,
                        first_line: lineno,
                        rows: Vec::new(),
                        poisoned: None,
                    });
                    topics.len() - 1
                });
                topics[slot].rows.push((user, ts, lineno));
            }
            Err((topic, message)) => match mode {
                Mode::Strict => {
                    return Err(ReadError::Parse { line: lineno, message });
                }
                Mode::Lenient => match topic.and_then(|t| slots.get(&t).copied()) {
                    // The topic is identifiable: poison that cascade.
                    Some(slot) => {
                        let t = &mut topics[slot];
                        if t.poisoned.is_none() {
                            t.poisoned = Some((lineno, message));
                        }
                    }
                    None => match topic {
                        Some(topic_id) => {
                            // First sighting of the topic is already bad.
                            slots.insert(topic_id, topics.len());
                            topics.push(Topic {
                                id: topic_id,
                                first_line: lineno,
                                rows: Vec::new(),
                                poisoned: Some((lineno, message)),
                            });
                        }
                        // Not even the topic parsed: quarantine the row alone.
                        None => report.quarantined.push(QuarantinedCascade {
                            id: None,
                            line: lineno,
                            reason: message,
                        }),
                    },
                },
            },
        }
    }

    let mut cascades = Vec::new();
    for mut topic in topics {
        if let Some((line, reason)) = topic.poisoned {
            report.quarantined.push(QuarantinedCascade {
                id: Some(topic.id),
                line,
                reason,
            });
            continue;
        }
        // Stable sort by timestamp: equal times keep input order, so the
        // reconstruction is deterministic.
        topic.rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut seen_users = std::collections::HashSet::new();
        topic.rows.retain(|&(user, _, _)| seen_users.insert(user));

        let t0 = topic.rows[0].1;
        let events: Vec<Event> = topic
            .rows
            .iter()
            .enumerate()
            .map(|(i, &(user, ts, _))| Event {
                user,
                parent: if i == 0 { None } else { Some(0) },
                time: ts - t0,
            })
            .collect();
        match Cascade::try_new(topic.id, t0, events) {
            Ok(c) => {
                report.kept += 1;
                cascades.push(c);
            }
            Err(fault) => match mode {
                Mode::Strict => {
                    return Err(ReadError::Parse {
                        line: topic.first_line,
                        message: fault.to_string(),
                    });
                }
                Mode::Lenient => report.quarantined.push(QuarantinedCascade {
                    id: Some(topic.id),
                    line: topic.first_line,
                    reason: fault.to_string(),
                }),
            },
        }
    }
    Ok((Dataset::new(name_hint, cascades), report))
}

/// Strict EchoFlow load: the first malformed row or invalid cascade aborts
/// with a [`ReadError::Parse`] carrying its line number.
pub fn dataset_from_echoflow_str(text: &str, name_hint: &str) -> Result<Dataset, ReadError> {
    parse(text, name_hint, Mode::Strict).map(|(d, _)| d)
}

/// Lenient EchoFlow load: malformed rows quarantine their topic's cascade
/// (or just themselves, when not even the topic id parses) and everything
/// else loads; see the module docs for the exact semantics.
pub fn dataset_from_echoflow_str_lenient(text: &str, name_hint: &str) -> (Dataset, QuarantineReport) {
    match parse(text, name_hint, Mode::Lenient) {
        Ok(out) => out,
        // Lenient parsing never returns Err; the arm exists for the shared
        // signature only.
        Err(e) => {
            let mut report = QuarantineReport::default();
            report.quarantined.push(QuarantinedCascade {
                id: None,
                line: 0,
                reason: e.to_string(),
            });
            (Dataset::new(name_hint, Vec::new()), report)
        }
    }
}

/// Serializes a dataset back to EchoFlow CSV (header included): each
/// cascade becomes `u_<user>,t_<id>,<start_time + event time>` rows. The
/// inverse of the loader for cascades the format can represent (star
/// DAGs); arbitrary parent structure is flattened, exactly as loading
/// does.
pub fn echoflow_to_string(dataset: &Dataset) -> String {
    let mut out = String::from("user_id,topic_id,timestamp\n");
    for c in &dataset.cascades {
        for e in &c.events {
            out.push_str(&format!("u_{},t_{},{}\n", e.user, c.id, c.start_time + e.time));
        }
    }
    out
}

/// Whether `text` looks like EchoFlow CSV rather than the native or
/// DeepHawkes formats: its first content line is the EchoFlow header or a
/// comma-separated three-field row.
pub fn looks_like_echoflow(text: &str) -> bool {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|l| is_header(l) || (!l.contains('\t') && l.split(',').count() == 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
user_id,topic_id,timestamp
u_001,t_078,1692201000
u_034,t_078,1692201417
u_002,t_101,1692202210
u_007,t_078,1692201500
u_003,t_101,1692202300
";

    #[test]
    fn groups_interleaved_topics_into_cascades() {
        let ds = dataset_from_echoflow_str(SAMPLE, "echo").expect("clean sample loads");
        assert_eq!(ds.cascades.len(), 2);
        let t78 = ds.cascades.iter().find(|c| c.id == 78).unwrap();
        assert_eq!(t78.events.len(), 3);
        assert_eq!(t78.start_time, 1692201000.0);
        assert_eq!(t78.events[0], Event { user: 1, parent: None, time: 0.0 });
        assert_eq!(t78.events[1], Event { user: 34, parent: Some(0), time: 417.0 });
        assert_eq!(t78.events[2], Event { user: 7, parent: Some(0), time: 500.0 });
        let t101 = ds.cascades.iter().find(|c| c.id == 101).unwrap();
        assert_eq!(t101.events.len(), 2);
    }

    #[test]
    fn rows_out_of_time_order_are_sorted_not_rejected() {
        let text = "u_5,t_1,300\nu_6,t_1,100\nu_7,t_1,200\n";
        let ds = dataset_from_echoflow_str(text, "echo").unwrap();
        let c = &ds.cascades[0];
        assert_eq!(c.events[0].user, 6, "earliest row becomes the root");
        assert_eq!(c.events[1].user, 7);
        assert_eq!(c.events[2].user, 5);
        assert_eq!(c.events[2].time, 200.0);
    }

    #[test]
    fn repeat_adoptions_keep_the_first() {
        let text = "u_1,t_1,0\nu_2,t_1,10\nu_1,t_1,20\n";
        let ds = dataset_from_echoflow_str(text, "echo").unwrap();
        assert_eq!(ds.cascades[0].events.len(), 2);
    }

    #[test]
    fn malformed_row_quarantines_only_its_topic() {
        let text = "\
u_1,t_1,0
u_2,t_1,oops
u_1,t_2,0
u_3,t_2,50
";
        let (ds, report) = dataset_from_echoflow_str_lenient(text, "echo");
        assert_eq!(ds.cascades.len(), 1);
        assert_eq!(ds.cascades[0].id, 2);
        assert_eq!(report.kept, 1);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.id, Some(1));
        assert_eq!(q.line, 2);
        assert!(q.reason.contains("unparsable timestamp"), "{}", q.reason);
    }

    #[test]
    fn row_without_topic_is_quarantined_alone() {
        let text = "u_1,t_1,0\nu_2,???,5\nu_2,t_1,9\n";
        let (ds, report) = dataset_from_echoflow_str_lenient(text, "echo");
        assert_eq!(ds.cascades.len(), 1);
        assert_eq!(ds.cascades[0].events.len(), 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].id, None);
        assert_eq!(report.quarantined[0].line, 2);
    }

    #[test]
    fn strict_mode_fails_on_first_bad_row() {
        let text = "u_1,t_1,0\nnot-a-row\n";
        let err = dataset_from_echoflow_str(text, "echo").unwrap_err();
        match err {
            ReadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_field_count_reports_the_line() {
        let text = "u_1,t_1,0\nu_2,t_1\n";
        let (ds, report) = dataset_from_echoflow_str_lenient(text, "echo");
        // The bad row has no third field; its topic field still parses, so
        // topic 1 is poisoned.
        assert!(ds.cascades.is_empty());
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("fields"));
    }

    #[test]
    fn round_trips_through_csv() {
        let ds = dataset_from_echoflow_str(SAMPLE, "echo").unwrap();
        let text = echoflow_to_string(&ds);
        let back = dataset_from_echoflow_str(&text, "echo").unwrap();
        assert_eq!(ds.cascades.len(), back.cascades.len());
        for (a, b) in ds.cascades.iter().zip(&back.cascades) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.start_time, b.start_time);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn detects_the_format() {
        assert!(looks_like_echoflow(SAMPLE));
        assert!(looks_like_echoflow("u_9,t_9,12.5\n"));
        assert!(!looks_like_echoflow("cascade 1 0.0 2\nevent 0 - 0.0\n"));
        assert!(!looks_like_echoflow("1\t2\t0 1:0.0 2:1.0\n"));
    }
}
