//! Hand-crafted cascade features (paper Section V-B).
//!
//! The feature-based baselines (Feature-linear / Feature-deep) and the
//! Fig. 9 visualizations consume these. The set mirrors the paper:
//! structural counts (leaf nodes, in/out degrees, re-tweet path lengths) and
//! temporal growth curves (elapsed times, cumulative and incremental growth
//! per fixed time bin).

use crate::ObservedCascade;

/// Number of time bins for the cumulative/incremental growth features
/// (the paper bins every 10 minutes for Weibo and every 31 days for HEP-PH;
/// six bins per observation window is the scale-free equivalent).
pub const NUM_TIME_BINS: usize = 6;

/// Names of the extracted features, aligned with [`extract`]'s output.
pub fn feature_names() -> Vec<String> {
    let mut names = vec![
        "log_observed_size".to_string(),
        "num_leaves".to_string(),
        "leaf_fraction".to_string(),
        "avg_out_degree".to_string(),
        "avg_in_degree".to_string(),
        "max_path_length".to_string(),
        "avg_path_length".to_string(),
        "mean_time".to_string(),
        "std_time".to_string(),
        "first_half_fraction".to_string(),
    ];
    for i in 0..NUM_TIME_BINS {
        names.push(format!("cumulative_growth_{i}"));
    }
    for i in 0..NUM_TIME_BINS {
        names.push(format!("incremental_growth_{i}"));
    }
    names
}

/// Total feature dimension.
pub fn num_features() -> usize {
    10 + 2 * NUM_TIME_BINS
}

/// Extracts the Section V-B feature vector from an observed cascade.
///
/// `window` is the observation window `T` used to normalize temporal
/// features into `[0, 1]` (so features transfer across window settings).
pub fn extract(observed: &ObservedCascade<'_>, window: f64) -> Vec<f32> {
    let n = observed.num_nodes();
    let g = observed.graph();
    let mut features = Vec::with_capacity(num_features());

    // --- structural ---------------------------------------------------------
    let leaves = g.leaves().len();
    features.push(((n + 1) as f32).ln());
    features.push(leaves as f32);
    features.push(leaves as f32 / n as f32);
    let edges = g.edge_count();
    features.push(edges as f32 / n as f32); // avg out-degree
    features.push(edges as f32 / n as f32); // avg in-degree (tree: identical)
    let depth = g.dag_depth().unwrap_or(0);
    features.push(depth as f32);
    let paths = observed.diffusion_paths();
    let avg_path =
        paths.iter().map(|p| (p.len() - 1) as f32).sum::<f32>() / paths.len().max(1) as f32;
    features.push(avg_path);

    // --- temporal ------------------------------------------------------------
    let times: Vec<f64> = observed.times().collect();
    let w = window.max(f64::MIN_POSITIVE);
    let fracs: Vec<f64> = times.iter().map(|&t| (t / w).clamp(0.0, 1.0)).collect();
    let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
    let var = fracs.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>()
        / fracs.len().max(1) as f64;
    features.push(mean as f32);
    features.push(var.sqrt() as f32);
    let first_half = fracs.iter().filter(|&&f| f < 0.5).count();
    features.push(first_half as f32 / fracs.len().max(1) as f32);

    // Cumulative and incremental growth per bin, normalized by final
    // observed size.
    let mut cumulative = [0usize; NUM_TIME_BINS];
    for &f in &fracs {
        let bin = ((f * NUM_TIME_BINS as f64) as usize).min(NUM_TIME_BINS - 1);
        cumulative[bin] += 1;
    }
    let mut running = 0usize;
    let mut incremental = [0f32; NUM_TIME_BINS];
    for (i, &c) in cumulative.iter().enumerate() {
        incremental[i] = c as f32 / n as f32;
        running += c;
        features.push(running as f32 / n as f32);
        // (cumulative features pushed here; incremental appended below)
        let _ = i;
    }
    features.extend_from_slice(&incremental);

    debug_assert_eq!(features.len(), num_features());
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cascade, Event};

    fn fig1() -> Cascade {
        Cascade::new(
            1,
            0.0,
            vec![
                Event { user: 0, parent: None, time: 0.0 },
                Event { user: 1, parent: Some(0), time: 10.0 },
                Event { user: 2, parent: Some(0), time: 20.0 },
                Event { user: 3, parent: Some(1), time: 30.0 },
                Event { user: 4, parent: Some(1), time: 40.0 },
                Event { user: 5, parent: Some(3), time: 50.0 },
            ],
        )
    }

    #[test]
    fn names_match_dimension() {
        assert_eq!(feature_names().len(), num_features());
    }

    #[test]
    fn fig1_features_are_sane() {
        let c = fig1();
        let o = c.observe(60.0);
        let f = extract(&o, 60.0);
        assert_eq!(f.len(), num_features());
        let names = feature_names();
        let get = |n: &str| f[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("num_leaves"), 3.0);
        assert!((get("leaf_fraction") - 0.5).abs() < 1e-6);
        assert_eq!(get("max_path_length"), 3.0);
        // Cumulative growth in the last bin must be 1.0 by construction.
        assert!((get(&format!("cumulative_growth_{}", NUM_TIME_BINS - 1)) - 1.0).abs() < 1e-6);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn singleton_cascade_has_finite_features() {
        let c = Cascade::new(2, 0.0, vec![Event { user: 0, parent: None, time: 0.0 }]);
        let o = c.observe(3600.0);
        let f = extract(&o, 3600.0);
        assert!(f.iter().all(|x| x.is_finite()));
        let names = feature_names();
        let leaf_frac = f[names.iter().position(|x| x == "leaf_fraction").unwrap()];
        assert_eq!(leaf_frac, 1.0, "a lone root is its own leaf");
    }

    #[test]
    fn temporal_features_distinguish_early_from_late() {
        // Same structure, different timing → different temporal features.
        let mk = |times: [f64; 3]| {
            Cascade::new(
                3,
                0.0,
                vec![
                    Event { user: 0, parent: None, time: 0.0 },
                    Event { user: 1, parent: Some(0), time: times[0] },
                    Event { user: 2, parent: Some(0), time: times[1] },
                    Event { user: 3, parent: Some(1), time: times[2] },
                ],
            )
        };
        let early = mk([1.0, 2.0, 3.0]);
        let late = mk([55.0, 57.0, 59.0]);
        let fe = extract(&early.observe(60.0), 60.0);
        let fl = extract(&late.observe(60.0), 60.0);
        let names = feature_names();
        let idx = names.iter().position(|x| x == "mean_time").unwrap();
        assert!(fe[idx] < fl[idx]);
        // Structural features identical.
        let leaf = names.iter().position(|x| x == "num_leaves").unwrap();
        assert_eq!(fe[leaf], fl[leaf]);
    }
}
