//! Seeded synthetic cascade generators standing in for the paper's Sina
//! Weibo and HEP-PH datasets (DESIGN.md §3 documents the substitution).
//!
//! Both generators run the same Hawkes-style branching process:
//!
//! * every *user* carries a persistent influence level, derived
//!   deterministically from the user id, drawn from a log-normal
//!   (heavy-tailed — the source of the power-law cascade sizes in Fig. 4);
//!   identities recur across cascades, so embedding-based models can learn
//!   user influence the way they do on real data;
//! * an adopter's offspring count is Poisson with mean
//!   `base_rate · influence(user)` (roots get a `root_boost` exposure
//!   multiplier), so the observed branching *structure* is a posterior
//!   signal of per-node fertility and thus of pending growth;
//! * offspring arrival delays follow a Lomax (Pareto-II) memory kernel
//!   `P(τ > t) = (1 + t/c)^{-θ}` — the power-law decay the paper notes fits
//!   social networks (Section IV-D) — so *recency* of observed activity is
//!   informative too;
//! * a user adopts at most once per cascade.
//!
//! A model that exploits both the observed structure and the event times
//! (CasCN) therefore has strictly more usable signal than structure-only or
//! time-only baselines, preserving the relative ordering of Table III.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Cascade, Dataset, Event};

/// Shared parameters of the branching simulator.
#[derive(Debug, Clone, Copy)]
pub struct BranchingConfig {
    /// Number of cascades to generate.
    pub num_cascades: usize,
    /// RNG seed: generation is fully deterministic given the config.
    pub seed: u64,
    /// Size of the global user universe.
    pub num_users: u64,
    /// Tracking horizon per cascade, in dataset time units.
    pub horizon: f64,
    /// Mean-offspring multiplier applied to every node's influence.
    pub base_rate: f64,
    /// Extra exposure multiplier for the root post.
    pub root_boost: f64,
    /// Lomax kernel scale `c` (time units).
    pub kernel_c: f64,
    /// Lomax kernel shape `θ` (smaller = heavier tail = slower saturation).
    pub kernel_theta: f64,
    /// Log-normal influence location `μ` of the per-user base influence.
    pub influence_mu: f64,
    /// Log-normal influence scale `σ` of the per-user base influence.
    pub influence_sigma: f64,
    /// Lineage correlation `ρ ∈ [0, 1)`: a child's effective influence mixes
    /// its own base influence with its parent's effective influence, so
    /// fertile lineages cluster — the "local structure matters" premise of
    /// the paper (community size and activity degree, §I challenge 3).
    pub lineage_rho: f64,
    /// Per-generation log-influence damping: exposure decays with depth,
    /// guaranteeing eventual subcriticality even in fertile lineages.
    pub depth_decay: f64,
    /// Hard cap on cascade size (the paper truncates giants).
    pub max_size: usize,
    /// Root publication times are uniform over `[0, publish_span)`.
    pub publish_span: f64,
    /// Tournament size for adopter *identity*: each non-root adopter is
    /// the most influential of this many uniform candidate draws. `1`
    /// (the macroscopic presets) keeps identities uniform — and consumes
    /// exactly one RNG draw, so existing datasets are bit-identical.
    /// Microscopic experiments raise it so who-adopts-next carries a
    /// learnable popularity signal, mirroring the heavy-tailed user
    /// activity of real cascade data.
    pub adopter_tournament: usize,
}

/// Configuration of the Weibo-like generator (time unit: seconds).
#[derive(Debug, Clone, Copy)]
pub struct WeiboConfig {
    /// Number of cascades.
    pub num_cascades: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard cap on cascade size.
    pub max_size: usize,
}

impl Default for WeiboConfig {
    fn default() -> Self {
        Self {
            num_cascades: 2000,
            seed: 2019,
            max_size: 1000,
        }
    }
}

/// Configuration of the HEP-PH-like citation generator (time unit: days).
#[derive(Debug, Clone, Copy)]
pub struct CitationConfig {
    /// Number of cascades.
    pub num_cascades: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard cap on cascade size.
    pub max_size: usize,
}

impl Default for CitationConfig {
    fn default() -> Self {
        Self {
            num_cascades: 2000,
            seed: 1993,
            max_size: 400,
        }
    }
}

/// Generator for re-tweet cascades mimicking the Sina Weibo dataset:
/// 24-hour tracking, daytime publication (8:00–18:00), second-scale burstiness.
#[derive(Debug, Clone)]
pub struct WeiboGenerator {
    cfg: BranchingConfig,
}

impl WeiboGenerator {
    /// Creates the generator from the compact public config.
    pub fn new(cfg: WeiboConfig) -> Self {
        Self {
            cfg: BranchingConfig {
                num_cascades: cfg.num_cascades,
                seed: cfg.seed,
                num_users: 5_000,
                horizon: 24.0 * 3600.0,
                base_rate: 2.6,
                root_boost: 8.0,
                kernel_c: 700.0,
                kernel_theta: 0.7,
                influence_mu: -1.6,
                influence_sigma: 1.2,
                lineage_rho: 0.6,
                depth_decay: 0.25,
                max_size: cfg.max_size,
                publish_span: 30.0 * 86_400.0,
                adopter_tournament: 1,
            },
        }
    }

    /// Creates the generator from a full branching config — for
    /// experiments that vary knobs the compact preset pins (e.g. the
    /// microscopic task raises `adopter_tournament` so adopter identity
    /// carries signal).
    pub fn from_branching(cfg: BranchingConfig) -> Self {
        Self { cfg }
    }

    /// The full branching config this generator runs (the Weibo preset
    /// when built via [`WeiboGenerator::new`]).
    pub fn branching(&self) -> &BranchingConfig {
        &self.cfg
    }

    /// Generates the dataset. Root publication times fall in the 8:00–18:00
    /// daytime band the paper keeps after filtering.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let cascades = (0..self.cfg.num_cascades)
            .map(|i| {
                let day = rng.random_range(0..(self.cfg.publish_span / 86_400.0) as u64);
                let time_of_day = rng.random_range(8.0 * 3600.0..18.0 * 3600.0);
                let start = day as f64 * 86_400.0 + time_of_day;
                branching_cascade(i as u64, start, &self.cfg, &mut rng)
            })
            .collect();
        Dataset::new("weibo-synth", cascades)
    }
}

/// Generator for citation cascades mimicking HEP-PH: ~10-year tracking,
/// day-scale dynamics, smaller cascades, slow (years-long) saturation.
#[derive(Debug, Clone)]
pub struct CitationGenerator {
    cfg: BranchingConfig,
}

impl CitationGenerator {
    /// Creates the generator from the compact public config.
    pub fn new(cfg: CitationConfig) -> Self {
        Self {
            cfg: BranchingConfig {
                num_cascades: cfg.num_cascades,
                seed: cfg.seed,
                num_users: 3_000,
                horizon: 3720.0, // 124 months in days
                base_rate: 2.4,
                root_boost: 4.0,
                kernel_c: 2000.0,
                kernel_theta: 0.8,
                influence_mu: -1.8,
                influence_sigma: 1.0,
                lineage_rho: 0.5,
                depth_decay: 0.2,
                max_size: cfg.max_size,
                publish_span: 1500.0,
                adopter_tournament: 1,
            },
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let cascades = (0..self.cfg.num_cascades)
            .map(|i| {
                let start = rng.random_range(0.0..self.cfg.publish_span);
                branching_cascade(i as u64, start, &self.cfg, &mut rng)
            })
            .collect();
        Dataset::new("hepph-synth", cascades)
    }
}

/// Draws one adopter identity: the most influential of
/// `adopter_tournament` uniform candidates. A tournament of 1 is a single
/// uniform draw — the exact RNG consumption of the macroscopic presets.
fn draw_adopter(cfg: &BranchingConfig, rng: &mut StdRng) -> u64 {
    let mut user = rng.random_range(0..cfg.num_users);
    for _ in 1..cfg.adopter_tournament.max(1) {
        let rival = rng.random_range(0..cfg.num_users);
        if user_influence(rival, cfg) > user_influence(user, cfg) {
            user = rival;
        }
    }
    user
}

/// Runs the branching process for a single cascade.
fn branching_cascade(id: u64, start: f64, cfg: &BranchingConfig, rng: &mut StdRng) -> Cascade {
    // Raw events with provisional (pre-sort) parent indices.
    let root_user = rng.random_range(0..cfg.num_users);
    let root_influence = user_influence(root_user, cfg) * cfg.root_boost;
    // (user, parent, time, effective influence, depth)
    let mut raw: Vec<(u64, Option<usize>, f64, f64, usize)> =
        vec![(root_user, None, 0.0, root_influence, 0)];
    let mut seen = std::collections::HashSet::new();
    seen.insert(root_user);
    let mut frontier: Vec<usize> = vec![0];

    while let Some(idx) = frontier.pop() {
        if raw.len() >= cfg.max_size {
            break;
        }
        let (_, _, t_parent, influence, depth) = raw[idx];
        let mean = cfg.base_rate * influence;
        let k = sample_poisson(mean, rng);
        for _ in 0..k {
            if raw.len() >= cfg.max_size {
                break;
            }
            let tau = sample_lomax(cfg.kernel_c, cfg.kernel_theta, rng);
            let t = t_parent + tau;
            if t >= cfg.horizon {
                continue;
            }
            let user = draw_adopter(cfg, rng);
            if !seen.insert(user) {
                continue; // a user adopts at most once per cascade
            }
            // Geometric mix of own base influence and the parent's
            // effective influence (lineage correlation): fertile lineages
            // cluster, so the local branching structure is informative.
            let rho = cfg.lineage_rho;
            let own = user_influence(user, cfg);
            // The root's stored influence carries the exposure boost; strip
            // it so lineage mixing sees the intrinsic level.
            let parent_eff = if idx == 0 {
                (influence / cfg.root_boost.max(1.0)).max(1e-6)
            } else {
                influence.max(1e-6)
            };
            let mix = own.ln() * (1.0 - rho) + parent_eff.ln() * rho
                - cfg.depth_decay * (depth + 1) as f64;
            let child_influence = mix.min(3.0).exp();
            raw.push((user, Some(idx), t, child_influence, depth + 1));
            frontier.push(raw.len() - 1);
        }
    }

    // Sort by time and remap parent indices.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&a, &b| raw[a].2.total_cmp(&raw[b].2));
    let mut rank = vec![0usize; raw.len()];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        rank[old_idx] = new_idx;
    }
    let events: Vec<Event> = order
        .iter()
        .map(|&old| {
            let (user, parent, time, _, _) = raw[old];
            Event {
                user,
                parent: parent.map(|p| rank[p]),
                time,
            }
        })
        .collect();
    Cascade::new(id, start, events)
}

/// Persistent per-user log-normal influence, derived deterministically from
/// the user id (and the dataset seed) so identities carry signal across
/// cascades — the property embedding-based baselines rely on.
fn user_influence(user: u64, cfg: &BranchingConfig) -> f64 {
    // SplitMix64 over (user, seed) → two uniforms → Box–Muller.
    let mut x = user
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cfg.seed.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let mut next = || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let u1 = next().max(f64::MIN_POSITIVE);
    let u2 = next();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let log_infl = cfg.influence_mu + cfg.influence_sigma * z;
    log_infl.min(3.0).exp() // cap to avoid pathological explosions
}

/// Poisson sampling: Knuth's method for small means, normal approximation
/// above 30 (simulation means stay far below that in practice).
fn sample_poisson(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let z = standard_normal(rng);
        return (mean + mean.sqrt() * z).round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.random_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // unreachable guard
        }
    }
}

/// Inverse-CDF sampling of the Lomax delay kernel
/// `P(τ > t) = (1 + t/c)^{-θ}` → `τ = c·(u^{-1/θ} − 1)`.
fn sample_lomax(c: f64, theta: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    c * (u.powf(-1.0 / theta) - 1.0)
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_weibo() -> Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 200,
            seed: 11,
            max_size: 500,
        })
        .generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_weibo();
        let b = small_weibo();
        assert_eq!(a.cascades, b.cascades);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_weibo();
        let b = WeiboGenerator::new(WeiboConfig {
            num_cascades: 200,
            seed: 12,
            max_size: 500,
        })
        .generate();
        assert_ne!(a.cascades, b.cascades);
    }

    #[test]
    fn adopter_tournament_concentrates_identities() {
        // Share of non-root adoptions landing on the top influence decile
        // of the user universe (known a priori from `user_influence`):
        // tournament selection must shift mass there versus the uniform
        // default, and the default must be exactly the preset's output.
        let base = *WeiboGenerator::new(WeiboConfig {
            num_cascades: 300,
            seed: 11,
            max_size: 200,
        })
        .branching();
        let mut ranked: Vec<u64> = (0..base.num_users).collect();
        ranked.sort_by(|a, b| user_influence(*b, &base).total_cmp(&user_influence(*a, &base)));
        let top: std::collections::HashSet<u64> =
            ranked[..ranked.len() / 10].iter().copied().collect();
        let share = |tournament: usize| {
            let mut cfg = base;
            cfg.adopter_tournament = tournament;
            let d = WeiboGenerator::from_branching(cfg).generate();
            let (mut hits, mut total) = (0usize, 0usize);
            for c in &d.cascades {
                for e in c.events.iter().skip(1) {
                    hits += usize::from(top.contains(&e.user));
                    total += 1;
                }
            }
            hits as f64 / total as f64
        };
        let uniform = share(1);
        let biased = share(8);
        assert!(
            uniform < 0.2,
            "uniform adopter draws should roughly match the decile ({uniform:.3})"
        );
        assert!(
            biased > uniform + 0.2,
            "tournament 8 should concentrate adoptions (uniform {uniform:.3}, biased {biased:.3})"
        );

        // Tournament 1 is the preset itself, bit for bit.
        let preset = WeiboGenerator::new(WeiboConfig {
            num_cascades: 50,
            seed: 11,
            max_size: 200,
        });
        let via_branching = WeiboGenerator::from_branching(*preset.branching());
        assert_eq!(preset.generate().cascades, via_branching.generate().cascades);
    }

    #[test]
    fn cascades_satisfy_invariants() {
        let d = small_weibo();
        for c in &d.cascades {
            assert!(c.final_size() >= 1);
            assert!(c.final_size() <= 500);
            let g = c.observe(f64::MAX).graph();
            assert!(g.is_dag());
            // All event times inside the 24h horizon.
            assert!(c.events.iter().all(|e| e.time < 24.0 * 3600.0));
        }
    }

    #[test]
    fn weibo_roots_publish_in_daytime() {
        let d = small_weibo();
        for c in &d.cascades {
            let tod = c.start_time % 86_400.0;
            assert!(
                (8.0 * 3600.0..18.0 * 3600.0).contains(&tod),
                "root published at {tod}s of day"
            );
        }
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 1500,
            seed: 5,
            max_size: 1000,
        })
        .generate();
        let sizes: Vec<usize> = d.cascades.iter().map(|c| c.final_size()).collect();
        let big = sizes.iter().filter(|&&s| s >= 50).count();
        let one = sizes.iter().filter(|&&s| s == 1).count();
        assert!(big > 5, "expected some large cascades, got {big}");
        assert!(one > 100, "expected many singleton cascades, got {one}");
        let max = *sizes.iter().max().unwrap();
        assert!(max >= 200, "heaviest cascade only reached {max}");
    }

    #[test]
    fn citation_dynamics_are_slower_than_weibo() {
        // Fraction of final size reached at 25% of horizon should be much
        // higher for Weibo (bursty) than for citations (slow).
        let frac = |d: &Dataset, t: f64| {
            let (mut obs, mut tot) = (0usize, 0usize);
            for c in &d.cascades {
                if c.final_size() >= 5 {
                    obs += c.size_at(t);
                    tot += c.final_size();
                }
            }
            obs as f64 / tot.max(1) as f64
        };
        let w = small_weibo();
        let h = CitationGenerator::new(CitationConfig {
            num_cascades: 200,
            seed: 3,
            max_size: 400,
        })
        .generate();
        let fw = frac(&w, 0.1 * 24.0 * 3600.0);
        let fh = frac(&h, 0.1 * 3720.0);
        assert!(
            fw > fh,
            "weibo should saturate faster: weibo {fw:.2} vs hepph {fh:.2}"
        );
    }

    #[test]
    fn structure_and_recency_predict_future_growth() {
        // Sanity check of the learnability premise: controlling for observed
        // size, the observed structure and event times carry signal about
        // future growth. A large observed out-degree is posterior evidence
        // of a high-influence adopter (more arrivals pending), and recent
        // activity means more Lomax kernel mass still ahead.
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 3000,
            seed: 21,
            max_size: 1000,
        })
        .generate();
        let window = 3600.0;
        let mut rows: Vec<(f64, f64, f64)> = Vec::new(); // (max_out_deg, mean_time, growth)
        for c in &d.cascades {
            let n = c.size_at(window);
            if !(5..=15).contains(&n) {
                continue;
            }
            let o = c.observe(window);
            let max_out = *o.graph().out_degrees().iter().max().unwrap() as f64;
            let mean_time = o.times().sum::<f64>() / n as f64 / window;
            let growth = ((1 + c.increment_size(window)) as f64).ln();
            rows.push((max_out, mean_time, growth));
        }
        assert!(rows.len() > 100, "band too small: {}", rows.len());
        let corr = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
            let n = rows.len() as f64;
            let mx = rows.iter().map(f).sum::<f64>() / n;
            let my = rows.iter().map(|r| r.2).sum::<f64>() / n;
            let cov: f64 = rows.iter().map(|r| (f(r) - mx) * (r.2 - my)).sum();
            let vx: f64 = rows.iter().map(|r| (f(r) - mx).powi(2)).sum();
            let vy: f64 = rows.iter().map(|r| (r.2 - my).powi(2)).sum();
            cov / (vx * vy).sqrt()
        };
        let structure_corr = corr(&|r| r.0);
        let time_corr = corr(&|r| r.1);
        assert!(
            structure_corr > 0.1,
            "hub out-degree should positively predict growth, corr = {structure_corr:.3}"
        );
        assert!(
            time_corr > 0.05,
            "recent activity should positively predict growth, corr = {time_corr:.3}"
        );
    }

    #[test]
    fn poisson_mean_is_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 2.5;
        let total: usize = (0..n).map(|_| sample_poisson(mean, &mut rng)).sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean).abs() < 0.1, "empirical mean {empirical}");
    }

    #[test]
    fn lomax_median_matches_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let (c, theta) = (900.0, 0.5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| sample_lomax(c, theta, &mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[10_000];
        // Median: c·(2^{1/θ} − 1) = 900·3 = 2700.
        let expect = c * (2.0f64.powf(1.0 / theta) - 1.0);
        assert!(
            (median - expect).abs() / expect < 0.15,
            "median {median} vs {expect}"
        );
    }
}
