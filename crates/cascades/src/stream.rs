//! Incremental, bounded parsing of the cascade text format — the request
//! parser of the serving layer.
//!
//! [`crate::io::dataset_from_str`] slurps a whole file and builds a
//! [`crate::Dataset`]; a server handling untrusted request bodies needs
//! neither. [`CascadeStream`] consumes the same line format one line at a
//! time, enforces caps on cascade and event counts *as it reads* (so an
//! oversized body is rejected at the first line that exceeds a limit, not
//! after buffering everything), and yields each cascade as soon as the next
//! header — or the end of input — proves it complete.
//!
//! The grammar is the one [`crate::io`] writes:
//!
//! ```text
//! cascade <id> <start_time>
//! event <user> <parent_index|-> <time>
//! ```
//!
//! Comments (`#`) and blank lines are skipped. Every cascade invariant is
//! validated incrementally with the same checks as the strict loader, so a
//! body accepted here parses identically under [`crate::io`].

use crate::io::{check_follow_on, parse_tok, ReadError};
use crate::validate::CascadeFault;
use crate::{Cascade, Event};

/// Caps applied while streaming. Both limits are inclusive maxima.
#[derive(Debug, Clone, Copy)]
pub struct StreamLimits {
    /// Maximum number of cascades one stream may carry.
    pub max_cascades: usize,
    /// Maximum number of events in any single cascade.
    pub max_events: usize,
}

impl Default for StreamLimits {
    fn default() -> Self {
        Self {
            max_cascades: 64,
            max_events: 10_000,
        }
    }
}

/// The cascade currently being assembled.
struct Pending {
    id: u64,
    start: f64,
    events: Vec<Event>,
}

/// An incremental parser over the cascade line format.
pub struct CascadeStream {
    limits: StreamLimits,
    lineno: usize,
    emitted: usize,
    current: Option<Pending>,
}

impl CascadeStream {
    /// Creates a stream enforcing `limits`.
    pub fn new(limits: StreamLimits) -> Self {
        Self {
            limits,
            lineno: 0,
            emitted: 0,
            current: None,
        }
    }

    /// 1-based number of lines consumed so far.
    pub fn lines_read(&self) -> usize {
        self.lineno
    }

    /// Feeds one line. Returns `Ok(Some(cascade))` when this line completed
    /// the *previous* cascade (i.e. it was the next `cascade` header), and
    /// `Ok(None)` otherwise. Errors carry the 1-based line number.
    pub fn push_line(&mut self, raw: &str) -> Result<Option<Cascade>, ReadError> {
        self.lineno += 1;
        let lineno = self.lineno;
        let line = raw.trim();
        let err = |message: String| ReadError::Parse { line: lineno, message };
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("cascade") => {
                let header = (|| -> Result<Pending, String> {
                    let id = parse_tok(parts.next(), "cascade id")?;
                    let start = parse_tok(parts.next(), "start time")?;
                    Ok(Pending { id, start, events: Vec::new() })
                })()
                .map_err(err)?;
                if self.emitted + usize::from(self.current.is_some()) >= self.limits.max_cascades {
                    return Err(err(format!(
                        "too many cascades (limit {})",
                        self.limits.max_cascades
                    )));
                }
                let done = self.flush()?;
                self.current = Some(header);
                Ok(done)
            }
            Some("event") => {
                let Some(pending) = self.current.as_mut() else {
                    return Err(err("event before any cascade header".into()));
                };
                if pending.events.len() >= self.limits.max_events {
                    return Err(err(format!(
                        "cascade {} exceeds the event limit ({})",
                        pending.id, self.limits.max_events
                    )));
                }
                let event = (|| -> Result<Event, String> {
                    let user = parse_tok(parts.next(), "user")?;
                    let parent_tok = parts.next().ok_or("missing parent field")?;
                    let parent = if parent_tok == "-" {
                        None
                    } else {
                        Some(parse_tok(Some(parent_tok), "parent")?)
                    };
                    let time = parse_tok(parts.next(), "time")?;
                    Ok(Event { user, parent, time })
                })()
                .map_err(err)?;
                let idx = pending.events.len();
                // Same incremental invariants as the strict file loader.
                let fault = match pending.events.last() {
                    None => {
                        if event.parent.is_some() {
                            Some(CascadeFault::RootHasParent)
                        // lint: allow(float-eq) — the format contract pins the root at exactly t=0
                        } else if event.time != 0.0 {
                            Some(CascadeFault::RootTimeNonZero { time: event.time })
                        } else {
                            None
                        }
                    }
                    Some(prev) => check_follow_on(prev, &event, idx),
                };
                if let Some(f) = fault {
                    return Err(err(f.to_string()));
                }
                pending.events.push(event);
                Ok(None)
            }
            Some(other) => Err(err(format!("unknown record type `{other}`"))),
            None => Ok(None),
        }
    }

    /// Signals end of input, returning the final cascade if one is pending.
    ///
    /// A trailing cascade never sees a terminating blank line or follow-up
    /// header — this is the only place it can be yielded. It is charged
    /// against [`StreamLimits`] exactly like header-completed cascades:
    /// its header already counted toward `max_cascades` when it was read
    /// (so a stream that admits the header always has room to finish it),
    /// and its events were capped per-line by `max_events`.
    pub fn finish(mut self) -> Result<Option<Cascade>, ReadError> {
        self.flush()
    }

    /// Number of complete cascades yielded so far (including by
    /// [`CascadeStream::finish`] once called) — the count charged against
    /// `StreamLimits::max_cascades`.
    pub fn cascades_emitted(&self) -> usize {
        self.emitted
    }

    /// Completes the pending cascade. Per-line validation already enforced
    /// the event invariants, so only emptiness can fail here.
    fn flush(&mut self) -> Result<Option<Cascade>, ReadError> {
        let Some(p) = self.current.take() else {
            return Ok(None);
        };
        let line = self.lineno;
        if p.events.is_empty() {
            return Err(ReadError::Parse {
                line,
                message: format!("cascade {} has no events", p.id),
            });
        }
        let id = p.id;
        let cascade = Cascade::try_new(p.id, p.start, p.events).map_err(|f| ReadError::Parse {
            line,
            message: format!("cascade {id}: {f}"),
        })?;
        self.emitted += 1;
        Ok(Some(cascade))
    }
}

/// Drives a [`CascadeStream`] over a complete request body, collecting every
/// cascade. An empty (or comment-only) body yields an empty vector.
pub fn parse_cascades(text: &str, limits: StreamLimits) -> Result<Vec<Cascade>, ReadError> {
    let mut stream = CascadeStream::new(limits);
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(c) = stream.push_line(line)? {
            out.push(c);
        }
    }
    if let Some(c) = stream.finish()? {
        out.push(c);
    }
    Ok(out)
}

/// A parsed `/observe` request body: one cascade header plus the events to
/// append to the live cascade it names.
///
/// Unlike [`parse_cascades`], the events here are a *suffix* of a cascade the
/// server already holds, so parent indices refer to positions in the full
/// server-side event list and the first body event need not be a root. The
/// cross-boundary invariants (time ordering, parent bounds) are enforced at
/// append time by [`crate::Cascade::try_append`]; this parser owns the grammar
/// and the limits.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveBody {
    /// Identity of the live cascade being extended.
    pub id: u64,
    /// Start time the client believes the cascade has; the server rejects a
    /// mismatch rather than silently rebasing.
    pub start_time: f64,
    /// Adoption events to append, in arrival order.
    pub events: Vec<Event>,
}

/// Parses a single-cascade append payload in the same line grammar as
/// [`parse_cascades`]: exactly one `cascade <id> <start>` header followed by
/// one or more `event <user> <parent|-> <time>` lines. Comments and blank
/// lines are skipped. `limits.max_events` caps the number of events in one
/// body; `max_cascades` is irrelevant here (the body carries exactly one).
pub fn parse_observe_body(text: &str, limits: StreamLimits) -> Result<ObserveBody, ReadError> {
    let mut header: Option<(u64, f64)> = None;
    let mut events: Vec<Event> = Vec::new();
    let mut lineno = 0usize;
    for raw in text.lines() {
        lineno += 1;
        let line = raw.trim();
        let err = |message: String| ReadError::Parse { line: lineno, message };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("cascade") => {
                if header.is_some() {
                    return Err(err("observe body carries exactly one cascade".into()));
                }
                let id = parse_tok(parts.next(), "cascade id").map_err(err)?;
                let start = parse_tok(parts.next(), "start time").map_err(err)?;
                header = Some((id, start));
            }
            Some("event") => {
                if header.is_none() {
                    return Err(err("event before the cascade header".into()));
                }
                if events.len() >= limits.max_events {
                    return Err(err(format!(
                        "observe body exceeds the event limit ({})",
                        limits.max_events
                    )));
                }
                let event = (|| -> Result<Event, String> {
                    let user = parse_tok(parts.next(), "user")?;
                    let parent_tok = parts.next().ok_or("missing parent field")?;
                    let parent = if parent_tok == "-" {
                        None
                    } else {
                        Some(parse_tok(Some(parent_tok), "parent")?)
                    };
                    let time = parse_tok(parts.next(), "time")?;
                    Ok(Event { user, parent, time })
                })()
                .map_err(err)?;
                if !event.time.is_finite() {
                    return Err(err(format!("non-finite event time {}", event.time)));
                }
                events.push(event);
            }
            Some(other) => return Err(err(format!("unknown record type `{other}`"))),
            None => {}
        }
    }
    let last = lineno.max(1);
    let Some((id, start_time)) = header else {
        return Err(ReadError::Parse {
            line: last,
            message: "observe body has no cascade header".into(),
        });
    };
    if events.is_empty() {
        return Err(ReadError::Parse {
            line: last,
            message: format!("observe body for cascade {id} has no events"),
        });
    }
    Ok(ObserveBody { id, start_time, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{dataset_from_str, dataset_to_string};
    use crate::synth::{WeiboConfig, WeiboGenerator};

    fn limits() -> StreamLimits {
        StreamLimits::default()
    }

    #[test]
    fn streaming_matches_the_batch_loader() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 30,
            seed: 5,
            max_size: 120,
        })
        .generate();
        let text = dataset_to_string(&d);
        let streamed = parse_cascades(&text, StreamLimits { max_cascades: 30, max_events: 10_000 })
            .expect("valid dataset streams");
        let batch = dataset_from_str(&text, "x").expect("valid dataset parses");
        assert_eq!(streamed, batch.cascades);
    }

    #[test]
    fn cascades_are_yielded_incrementally() {
        let mut s = CascadeStream::new(limits());
        assert!(s.push_line("cascade 1 0.0").unwrap().is_none());
        assert!(s.push_line("event 5 - 0.0").unwrap().is_none());
        assert!(s.push_line("event 6 0 1.0").unwrap().is_none());
        // The next header completes cascade 1.
        let done = s.push_line("cascade 2 0.0").unwrap().expect("cascade 1 completes");
        assert_eq!(done.id, 1);
        assert_eq!(done.final_size(), 2);
        assert!(s.push_line("event 7 - 0.0").unwrap().is_none());
        let last = s.finish().unwrap().expect("cascade 2 completes");
        assert_eq!(last.id, 2);
    }

    #[test]
    fn empty_body_is_empty_not_an_error() {
        assert!(parse_cascades("", limits()).unwrap().is_empty());
        assert!(parse_cascades("# just a comment\n\n", limits()).unwrap().is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_cascades("cascade 1 0.0\nevent 5 - 0.0\nevent 6 bogus 1.0\n", limits())
            .unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("parent"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn invariants_are_enforced_incrementally() {
        for (body, needle) in [
            ("event 1 - 0.0\n", "before any cascade header"),
            ("cascade 1 0.0\nevent 5 - 2.0\n", "root must be at t=0"),
            ("cascade 1 0.0\nevent 5 - 0.0\nevent 6 9 1.0\n", "later parent"),
            ("cascade 1 0.0\nevent 5 - 0.0\nevent 6 0 9.0\nevent 7 1 4.0\n", "not time-sorted"),
            ("cascade 1 0.0\nwat 1 2 3\n", "unknown record type"),
            ("cascade 1 0.0\n", "has no events"),
        ] {
            let err = parse_cascades(body, limits()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "body {body:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn cascade_count_limit_is_enforced_at_the_header() {
        let body = "cascade 1 0.0\nevent 5 - 0.0\ncascade 2 0.0\nevent 6 - 0.0\n";
        let tight = StreamLimits { max_cascades: 1, max_events: 100 };
        let err = parse_cascades(body, tight).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 3, "rejected at the second header");
                assert!(message.contains("too many cascades"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Exactly at the limit is fine.
        let ok = parse_cascades(body, StreamLimits { max_cascades: 2, max_events: 100 });
        assert_eq!(ok.unwrap().len(), 2);
    }

    #[test]
    fn finish_yields_a_truncated_final_cascade() {
        // No terminating blank line, no follow-up header, no trailing
        // newline: only finish() can surface this cascade.
        let mut s = CascadeStream::new(limits());
        for line in ["cascade 9 3.5", "event 4 - 0.0", "event 8 0 2.0"] {
            assert!(s.push_line(line).unwrap().is_none(), "nothing completes mid-body");
        }
        assert_eq!(s.cascades_emitted(), 0, "pending cascade is not yet emitted");
        let c = s.finish().unwrap().expect("finish yields the trailing cascade");
        assert_eq!((c.id, c.start_time, c.final_size()), (9, 3.5, 2));
        // And it round-trips identically through the driver.
        let driven = parse_cascades("cascade 9 3.5\nevent 4 - 0.0\nevent 8 0 2.0", limits())
            .expect("truncated body parses");
        assert_eq!(driven, vec![c]);
    }

    #[test]
    fn limits_are_charged_at_finish_like_push_line() {
        // Exactly max_cascades cascades where the last is only completed by
        // finish(): the header was already charged, so finish always has room.
        let body = "cascade 1 0.0\nevent 5 - 0.0\ncascade 2 0.0\nevent 6 - 0.0";
        let tight = StreamLimits { max_cascades: 2, max_events: 100 };
        let mut s = CascadeStream::new(tight);
        let mut yielded = Vec::new();
        for line in body.lines() {
            if let Some(c) = s.push_line(line).unwrap() {
                yielded.push(c);
            }
        }
        assert_eq!((yielded.len(), s.cascades_emitted()), (1, 1));
        let last = s.finish().unwrap().expect("trailing cascade finishes within the limit");
        assert_eq!(last.id, 2);

        // One under the cap: the trailing cascade is rejected at its header,
        // not silently dropped at finish.
        let over = StreamLimits { max_cascades: 1, max_events: 100 };
        let err = parse_cascades(body, over).unwrap_err();
        assert!(err.to_string().contains("too many cascades"), "{err}");

        // Event caps bind on the trailing cascade too: the body below would
        // only complete via finish(), but the oversize event is rejected
        // per-line long before that.
        let fat = "cascade 1 0.0\nevent 0 - 0.0\nevent 1 0 1.0\nevent 2 0 2.0";
        let lean = StreamLimits { max_cascades: 4, max_events: 2 };
        let err = parse_cascades(fat, lean).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 4, "rejected at the first event past the cap");
                assert!(message.contains("event limit"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn observe_body_parses_a_single_cascade_suffix() {
        let body = "# live append\ncascade 7 1.5\nevent 12 3 40.0\nevent 13 5 41.5\n";
        let ob = parse_observe_body(body, limits()).expect("valid observe body");
        assert_eq!((ob.id, ob.start_time), (7, 1.5));
        assert_eq!(ob.events.len(), 2);
        // Suffix semantics: parents reference server-side indices, and the
        // first event needn't be a root.
        assert_eq!(ob.events[0], Event { user: 12, parent: Some(3), time: 40.0 });
        assert_eq!(ob.events[1], Event { user: 13, parent: Some(5), time: 41.5 });
    }

    #[test]
    fn observe_body_rejects_malformed_payloads() {
        for (body, needle) in [
            ("", "no cascade header"),
            ("# only a comment\n", "no cascade header"),
            ("cascade 1 0.0\n", "has no events"),
            ("event 5 2 9.0\n", "before the cascade header"),
            ("cascade 1 0.0\ncascade 2 0.0\nevent 5 2 9.0\n", "exactly one cascade"),
            ("cascade 1 0.0\nevent 5 2 nan\n", "non-finite event time"),
            ("cascade 1 0.0\nwat\n", "unknown record type"),
            ("cascade 1 0.0\nevent 5 2\n", "missing"),
        ] {
            let err = parse_observe_body(body, limits()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "body {body:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn observe_body_event_limit_binds() {
        let mut body = String::from("cascade 1 0.0\n");
        for i in 0..5 {
            body.push_str(&format!("event {i} 0 {i}.0\n"));
        }
        let tight = StreamLimits { max_cascades: 64, max_events: 4 };
        let err = parse_observe_body(&body, tight).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 6, "rejected at the first event past the cap");
                assert!(message.contains("event limit"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        let loose = StreamLimits { max_cascades: 64, max_events: 5 };
        assert_eq!(parse_observe_body(&body, loose).unwrap().events.len(), 5);
    }

    #[test]
    fn event_count_limit_is_enforced_mid_cascade() {
        let mut body = String::from("cascade 1 0.0\nevent 0 - 0.0\n");
        for i in 1..10 {
            body.push_str(&format!("event {i} 0 {}.0\n", i));
        }
        let tight = StreamLimits { max_cascades: 4, max_events: 5 };
        let err = parse_cascades(&body, tight).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 7, "rejected at the first event past the cap");
                assert!(message.contains("event limit"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }
}
