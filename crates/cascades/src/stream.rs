//! Incremental, bounded parsing of the cascade text format — the request
//! parser of the serving layer.
//!
//! [`crate::io::dataset_from_str`] slurps a whole file and builds a
//! [`crate::Dataset`]; a server handling untrusted request bodies needs
//! neither. [`CascadeStream`] consumes the same line format one line at a
//! time, enforces caps on cascade and event counts *as it reads* (so an
//! oversized body is rejected at the first line that exceeds a limit, not
//! after buffering everything), and yields each cascade as soon as the next
//! header — or the end of input — proves it complete.
//!
//! The grammar is the one [`crate::io`] writes:
//!
//! ```text
//! cascade <id> <start_time>
//! event <user> <parent_index|-> <time>
//! ```
//!
//! Comments (`#`) and blank lines are skipped. Every cascade invariant is
//! validated incrementally with the same checks as the strict loader, so a
//! body accepted here parses identically under [`crate::io`].

use crate::io::{check_follow_on, parse_tok, ReadError};
use crate::validate::CascadeFault;
use crate::{Cascade, Event};

/// Caps applied while streaming. Both limits are inclusive maxima.
#[derive(Debug, Clone, Copy)]
pub struct StreamLimits {
    /// Maximum number of cascades one stream may carry.
    pub max_cascades: usize,
    /// Maximum number of events in any single cascade.
    pub max_events: usize,
}

impl Default for StreamLimits {
    fn default() -> Self {
        Self {
            max_cascades: 64,
            max_events: 10_000,
        }
    }
}

/// The cascade currently being assembled.
struct Pending {
    id: u64,
    start: f64,
    events: Vec<Event>,
}

/// An incremental parser over the cascade line format.
pub struct CascadeStream {
    limits: StreamLimits,
    lineno: usize,
    emitted: usize,
    current: Option<Pending>,
}

impl CascadeStream {
    /// Creates a stream enforcing `limits`.
    pub fn new(limits: StreamLimits) -> Self {
        Self {
            limits,
            lineno: 0,
            emitted: 0,
            current: None,
        }
    }

    /// 1-based number of lines consumed so far.
    pub fn lines_read(&self) -> usize {
        self.lineno
    }

    /// Feeds one line. Returns `Ok(Some(cascade))` when this line completed
    /// the *previous* cascade (i.e. it was the next `cascade` header), and
    /// `Ok(None)` otherwise. Errors carry the 1-based line number.
    pub fn push_line(&mut self, raw: &str) -> Result<Option<Cascade>, ReadError> {
        self.lineno += 1;
        let lineno = self.lineno;
        let line = raw.trim();
        let err = |message: String| ReadError::Parse { line: lineno, message };
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("cascade") => {
                let header = (|| -> Result<Pending, String> {
                    let id = parse_tok(parts.next(), "cascade id")?;
                    let start = parse_tok(parts.next(), "start time")?;
                    Ok(Pending { id, start, events: Vec::new() })
                })()
                .map_err(err)?;
                if self.emitted + usize::from(self.current.is_some()) >= self.limits.max_cascades {
                    return Err(err(format!(
                        "too many cascades (limit {})",
                        self.limits.max_cascades
                    )));
                }
                let done = self.flush()?;
                self.current = Some(header);
                Ok(done)
            }
            Some("event") => {
                let Some(pending) = self.current.as_mut() else {
                    return Err(err("event before any cascade header".into()));
                };
                if pending.events.len() >= self.limits.max_events {
                    return Err(err(format!(
                        "cascade {} exceeds the event limit ({})",
                        pending.id, self.limits.max_events
                    )));
                }
                let event = (|| -> Result<Event, String> {
                    let user = parse_tok(parts.next(), "user")?;
                    let parent_tok = parts.next().ok_or("missing parent field")?;
                    let parent = if parent_tok == "-" {
                        None
                    } else {
                        Some(parse_tok(Some(parent_tok), "parent")?)
                    };
                    let time = parse_tok(parts.next(), "time")?;
                    Ok(Event { user, parent, time })
                })()
                .map_err(err)?;
                let idx = pending.events.len();
                // Same incremental invariants as the strict file loader.
                let fault = match pending.events.last() {
                    None => {
                        if event.parent.is_some() {
                            Some(CascadeFault::RootHasParent)
                        // lint: allow(float-eq) — the format contract pins the root at exactly t=0
                        } else if event.time != 0.0 {
                            Some(CascadeFault::RootTimeNonZero { time: event.time })
                        } else {
                            None
                        }
                    }
                    Some(prev) => check_follow_on(prev, &event, idx),
                };
                if let Some(f) = fault {
                    return Err(err(f.to_string()));
                }
                pending.events.push(event);
                Ok(None)
            }
            Some(other) => Err(err(format!("unknown record type `{other}`"))),
            None => Ok(None),
        }
    }

    /// Signals end of input, returning the final cascade if one is pending.
    pub fn finish(mut self) -> Result<Option<Cascade>, ReadError> {
        self.flush()
    }

    /// Completes the pending cascade. Per-line validation already enforced
    /// the event invariants, so only emptiness can fail here.
    fn flush(&mut self) -> Result<Option<Cascade>, ReadError> {
        let Some(p) = self.current.take() else {
            return Ok(None);
        };
        let line = self.lineno;
        if p.events.is_empty() {
            return Err(ReadError::Parse {
                line,
                message: format!("cascade {} has no events", p.id),
            });
        }
        let id = p.id;
        let cascade = Cascade::try_new(p.id, p.start, p.events).map_err(|f| ReadError::Parse {
            line,
            message: format!("cascade {id}: {f}"),
        })?;
        self.emitted += 1;
        Ok(Some(cascade))
    }
}

/// Drives a [`CascadeStream`] over a complete request body, collecting every
/// cascade. An empty (or comment-only) body yields an empty vector.
pub fn parse_cascades(text: &str, limits: StreamLimits) -> Result<Vec<Cascade>, ReadError> {
    let mut stream = CascadeStream::new(limits);
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(c) = stream.push_line(line)? {
            out.push(c);
        }
    }
    if let Some(c) = stream.finish()? {
        out.push(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{dataset_from_str, dataset_to_string};
    use crate::synth::{WeiboConfig, WeiboGenerator};

    fn limits() -> StreamLimits {
        StreamLimits::default()
    }

    #[test]
    fn streaming_matches_the_batch_loader() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 30,
            seed: 5,
            max_size: 120,
        })
        .generate();
        let text = dataset_to_string(&d);
        let streamed = parse_cascades(&text, StreamLimits { max_cascades: 30, max_events: 10_000 })
            .expect("valid dataset streams");
        let batch = dataset_from_str(&text, "x").expect("valid dataset parses");
        assert_eq!(streamed, batch.cascades);
    }

    #[test]
    fn cascades_are_yielded_incrementally() {
        let mut s = CascadeStream::new(limits());
        assert!(s.push_line("cascade 1 0.0").unwrap().is_none());
        assert!(s.push_line("event 5 - 0.0").unwrap().is_none());
        assert!(s.push_line("event 6 0 1.0").unwrap().is_none());
        // The next header completes cascade 1.
        let done = s.push_line("cascade 2 0.0").unwrap().expect("cascade 1 completes");
        assert_eq!(done.id, 1);
        assert_eq!(done.final_size(), 2);
        assert!(s.push_line("event 7 - 0.0").unwrap().is_none());
        let last = s.finish().unwrap().expect("cascade 2 completes");
        assert_eq!(last.id, 2);
    }

    #[test]
    fn empty_body_is_empty_not_an_error() {
        assert!(parse_cascades("", limits()).unwrap().is_empty());
        assert!(parse_cascades("# just a comment\n\n", limits()).unwrap().is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_cascades("cascade 1 0.0\nevent 5 - 0.0\nevent 6 bogus 1.0\n", limits())
            .unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("parent"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn invariants_are_enforced_incrementally() {
        for (body, needle) in [
            ("event 1 - 0.0\n", "before any cascade header"),
            ("cascade 1 0.0\nevent 5 - 2.0\n", "root must be at t=0"),
            ("cascade 1 0.0\nevent 5 - 0.0\nevent 6 9 1.0\n", "later parent"),
            ("cascade 1 0.0\nevent 5 - 0.0\nevent 6 0 9.0\nevent 7 1 4.0\n", "not time-sorted"),
            ("cascade 1 0.0\nwat 1 2 3\n", "unknown record type"),
            ("cascade 1 0.0\n", "has no events"),
        ] {
            let err = parse_cascades(body, limits()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "body {body:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn cascade_count_limit_is_enforced_at_the_header() {
        let body = "cascade 1 0.0\nevent 5 - 0.0\ncascade 2 0.0\nevent 6 - 0.0\n";
        let tight = StreamLimits { max_cascades: 1, max_events: 100 };
        let err = parse_cascades(body, tight).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 3, "rejected at the second header");
                assert!(message.contains("too many cascades"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Exactly at the limit is fine.
        let ok = parse_cascades(body, StreamLimits { max_cascades: 2, max_events: 100 });
        assert_eq!(ok.unwrap().len(), 2);
    }

    #[test]
    fn event_count_limit_is_enforced_mid_cascade() {
        let mut body = String::from("cascade 1 0.0\nevent 0 - 0.0\n");
        for i in 1..10 {
            body.push_str(&format!("event {i} 0 {}.0\n", i));
        }
        let tight = StreamLimits { max_cascades: 4, max_events: 5 };
        let err = parse_cascades(&body, tight).unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 7, "rejected at the first event past the cap");
                assert!(message.contains("event limit"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }
}
