//! Loader for the DeepHawkes/CasCN public dataset format.
//!
//! The paper's supplemental material distributes Sina Weibo cascades in the
//! DeepHawkes release format (github.com/CaoQi92/DeepHawkes), one cascade
//! per line:
//!
//! ```text
//! <message_id>\t<root_user_id>\t<publish_time>\t<num_retweets>\t<path>[ <path>...]
//! ```
//!
//! where each `<path>` is a `/`-separated chain of user ids ending in the
//! retweeting user, followed by `:<seconds_since_publish>`, e.g.
//! `12/56/78:3600`. The root appears as the single-element path `12:0`.
//!
//! This module parses that format into [`Cascade`]s so the reproduction can
//! run on the *real* datasets when they are available, instead of the
//! synthetic stand-ins.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::{Cascade, Dataset, Event};

/// Errors from parsing the DeepHawkes format.
#[derive(Debug)]
pub struct FormatError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deephawkes format error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

/// Parses a whole file in the DeepHawkes format. Lines that fail to parse
/// are reported, not skipped — silent data loss corrupts experiments.
pub fn parse(text: &str, dataset_name: &str) -> Result<Dataset, FormatError> {
    let mut cascades = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        cascades.push(parse_line(line, i + 1)?);
    }
    Ok(Dataset::new(dataset_name, cascades))
}

/// Reads and parses a DeepHawkes-format file.
pub fn read(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "deephawkes".into());
    parse(&text, &name).map_err(io::Error::other)
}

fn parse_line(line: &str, lineno: usize) -> Result<Cascade, FormatError> {
    let err = |message: String| FormatError { line: lineno, message };
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() < 5 {
        return Err(err(format!("expected 5 tab-separated fields, got {}", fields.len())));
    }
    let id: u64 = fields[0]
        .parse()
        .map_err(|_| err(format!("bad message id `{}`", fields[0])))?;
    let start_time: f64 = fields[2]
        .parse()
        .map_err(|_| err(format!("bad publish time `{}`", fields[2])))?;
    let declared: usize = fields[3]
        .parse()
        .map_err(|_| err(format!("bad retweet count `{}`", fields[3])))?;

    // Parse paths into (chain-of-users, time) records.
    struct PathRec {
        users: Vec<u64>,
        time: f64,
    }
    let mut records = Vec::new();
    for tok in fields[4].split_whitespace() {
        let (chain, time) = tok
            .rsplit_once(':')
            .ok_or_else(|| err(format!("path `{tok}` missing `:time`")))?;
        let time: f64 = time
            .parse()
            .map_err(|_| err(format!("bad path time in `{tok}`")))?;
        let users: Result<Vec<u64>, _> = chain.split('/').map(str::parse).collect();
        let users = users.map_err(|_| err(format!("bad user id in `{tok}`")))?;
        if users.is_empty() {
            return Err(err(format!("empty path `{tok}`")));
        }
        records.push(PathRec { users, time });
    }
    if records.is_empty() {
        return Err(err("cascade has no paths".into()));
    }
    // Sort by time; the root path (single user at t=0) must come first.
    records.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then(a.users.len().cmp(&b.users.len()))
    });
    // lint: allow(float-eq) — the DeepHawkes format pins the root path at exactly t=0
    if records[0].users.len() != 1 || records[0].time != 0.0 {
        return Err(err("first path must be the root `<user>:0`".into()));
    }

    // Each record's last user adopted at `time` from the second-to-last
    // user in the chain. Users may appear in several chains; the first
    // adoption wins (the DeepHawkes convention).
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    for rec in &records {
        let Some(&adopter) = rec.users.last() else {
            continue; // unreachable: record parsing rejects empty user chains
        };
        if index.contains_key(&adopter) {
            continue; // duplicate adoption of the same user
        }
        let parent = if rec.users.len() == 1 {
            None
        } else {
            let parent_user = rec.users[rec.users.len() - 2];
            match index.get(&parent_user) {
                Some(&pidx) => Some(pidx),
                // Parent never adopted explicitly (truncated path):
                // attach to the root, the DeepHawkes fallback.
                None => Some(0),
            }
        };
        if parent.is_none() && !events.is_empty() {
            return Err(err("multiple root paths".into()));
        }
        index.insert(adopter, events.len());
        events.push(Event {
            user: adopter,
            parent,
            time: rec.time,
        });
    }
    if events.len() != declared + 1 && events.len() != declared {
        // The header count in public dumps counts either adopters or
        // retweets; accept both but reject wild mismatches.
        if events.len().abs_diff(declared) > declared / 2 + 1 {
            return Err(err(format!(
                "declared {declared} retweets but parsed {} adoptions",
                events.len()
            )));
        }
    }
    Ok(Cascade::new(id, start_time, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
42\t100\t1465776000\t5\t100:0 100/101:10 100/102:20 100/101/103:30 100/101/104:40 100/101/103/105:50
7\t7\t1465776100\t0\t7:0
";

    #[test]
    fn parses_the_fig1_cascade() {
        let d = parse(SAMPLE, "weibo").expect("parses");
        assert_eq!(d.cascades.len(), 2);
        let c = d.cascades.iter().find(|c| c.id == 42).unwrap();
        assert_eq!(c.final_size(), 6);
        assert_eq!(c.events[0].user, 100);
        assert_eq!(c.events[0].parent, None);
        // V5 (user 105) retweeted from V3 (user 103) at t=50.
        let v5 = c.events.iter().find(|e| e.user == 105).unwrap();
        assert_eq!(v5.time, 50.0);
        let parent_user = c.events[v5.parent.unwrap()].user;
        assert_eq!(parent_user, 103);
        // The graph matches paper Fig. 1.
        let g = c.observe(1e9).graph();
        assert_eq!(g.leaves().len(), 3);
        assert_eq!(g.dag_depth(), Some(3));
    }

    #[test]
    fn singleton_cascades_parse() {
        let d = parse(SAMPLE, "weibo").unwrap();
        let c = d.cascades.iter().find(|c| c.id == 7).unwrap();
        assert_eq!(c.final_size(), 1);
    }

    #[test]
    fn duplicate_adoptions_keep_first() {
        let text = "1\t10\t0\t2\t10:0 10/11:5 10/12/11:9 10/12:7\n";
        let d = parse(text, "x").unwrap();
        let c = &d.cascades[0];
        assert_eq!(c.final_size(), 3, "user 11 adopts once");
        let u11 = c.events.iter().find(|e| e.user == 11).unwrap();
        assert_eq!(u11.time, 5.0, "first adoption wins");
    }

    #[test]
    fn truncated_parent_attaches_to_root() {
        // 99 never adopts; 13's path goes through it.
        let text = "1\t10\t0\t2\t10:0 10/99/13:5\n";
        let d = parse(text, "x").unwrap();
        let c = &d.cascades[0];
        let u13 = c.events.iter().find(|e| e.user == 13).unwrap();
        assert_eq!(u13.parent, Some(0), "fallback to root");
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let bad = "1\t10\t0\t1\t10:0 10/11:oops\n";
        let err = parse(bad, "x").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad path time"), "got: {}", err.message);

        let missing_root = "1\t10\t0\t1\t10/11:5\n";
        let err = parse(missing_root, "x").unwrap_err();
        assert!(err.message.contains("root"), "got: {}", err.message);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let text = "1\t10\t0\t50\t10:0 10/11:5\n";
        let err = parse(text, "x").unwrap_err();
        assert!(err.message.contains("declared"), "got: {}", err.message);
    }
}
