//! The evolving-cascade data model of paper Section III-A.

use cascn_graph::DiGraph;
use cascn_tensor::Matrix;

/// One adoption event in a cascade: a user re-tweeting (or a paper citing).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global user/paper identifier.
    pub user: u64,
    /// Index (into the cascade's event list) of the adopter this event
    /// re-tweeted from; `None` only for the root post.
    pub parent: Option<usize>,
    /// Seconds since the root post (the root itself is at 0.0).
    pub time: f64,
}

/// A full information cascade: the root post plus every adoption, ordered by
/// time. Events form a DAG rooted at event 0 (paper Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// Dataset-unique identifier of the post.
    pub id: u64,
    /// Absolute publication time of the root post (seconds; used for the
    /// paper's 8 am–6 pm publication filter and time-ordered splits).
    pub start_time: f64,
    /// Adoption events in non-decreasing time order; `events[0]` is the root.
    pub events: Vec<Event>,
}

impl Cascade {
    /// Creates a cascade from its parts, validating the invariants:
    /// a root-first event list, sorted times, and in-range parents.
    /// Use [`Cascade::try_new`] to report violations instead of panicking.
    ///
    /// # Panics
    /// Panics if the event list is empty or malformed.
    pub fn new(id: u64, start_time: f64, events: Vec<Event>) -> Self {
        match Self::try_new(id, start_time, events) {
            Ok(c) => c,
            // lint: allow(no-panic) — documented panicking constructor; the fallible route is try_new
            Err(fault) => panic!("cascade {id}: {fault}"),
        }
    }

    /// Final size: total number of adopters including the root.
    pub fn final_size(&self) -> usize {
        self.events.len()
    }

    /// Number of adopters whose event time is strictly less than `t`.
    pub fn size_at(&self, t: f64) -> usize {
        self.events.partition_point(|e| e.time < t)
    }

    /// Number of adopters whose event time is at most `t` — the size of the
    /// observed prefix `C_i(t)`. Observation is *inclusive* of the window
    /// boundary: an event landing exactly at `t == window` belongs to the
    /// model input, not to the prediction target.
    pub fn observed_size(&self, t: f64) -> usize {
        self.events.partition_point(|e| e.time <= t)
    }

    /// The paper's prediction target `ΔS_i` for an observation window `t`:
    /// the number of adoptions arriving strictly after `t` (up to the
    /// tracking horizon the dataset was generated with). Exclusive
    /// counterpart of the inclusive [`Cascade::observed_size`], so every
    /// event is counted exactly once between input and label.
    pub fn increment_size(&self, t: f64) -> usize {
        self.final_size() - self.observed_size(t)
    }

    /// The cascade as observed within `[0, window]` — the model input
    /// `C_i(t)` of Definition 1 (boundary events included).
    pub fn observe(&self, window: f64) -> ObservedCascade<'_> {
        let n = self.observed_size(window);
        ObservedCascade {
            cascade: self,
            n: n.max(1), // the root is always visible
        }
    }

    /// Appends one adoption event, validating it against the cascade's
    /// invariants (non-negative sorted time, in-range backward parent) —
    /// the single-event growth step behind live `/observe` ingestion.
    pub fn try_append(&mut self, event: Event) -> Result<(), crate::validate::CascadeFault> {
        let idx = self.events.len();
        // `events` is non-empty by construction (try_new rejects empty
        // lists), so the appended event always has a predecessor.
        if let Some(prev) = self.events.last() {
            if let Some(fault) = crate::io::check_follow_on(prev, &event, idx) {
                return Err(fault);
            }
        }
        self.events.push(event);
        Ok(())
    }
}

/// A prefix view of a cascade restricted to an observation window.
///
/// Node `i` of the local graph is the `i`-th adopter (adoption order), so
/// node 0 is always the initiator — matching Fig. 3's row/column layout.
#[derive(Debug, Clone, Copy)]
pub struct ObservedCascade<'a> {
    cascade: &'a Cascade,
    n: usize,
}

impl ObservedCascade<'_> {
    /// Number of observed adopters (≥ 1).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The observed events.
    pub fn events(&self) -> &[Event] {
        &self.cascade.events[..self.n]
    }

    /// Event times of the observed adoptions (seconds since the root post).
    pub fn times(&self) -> impl Iterator<Item = f64> + '_ {
        self.events().iter().map(|e| e.time)
    }

    /// The observed cascade as a directed graph over local indices
    /// (parent → child edges, unit weights).
    pub fn graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.n);
        for (i, e) in self.events().iter().enumerate().skip(1) {
            // try_new validated that every non-root event has a parent.
            if let Some(p) = e.parent {
                g.add_edge(p, i, 1.0);
            }
        }
        g
    }

    /// The sub-cascade adjacency sequence `A_i^T` of Fig. 3, capped at
    /// `max_steps` snapshots.
    ///
    /// Every snapshot is an `n x n` matrix over the *full* observed node set
    /// (absent nodes have zero rows, as in the paper's figure); snapshot `j`
    /// contains all edges whose child arrived at or before the `j`-th
    /// retained event. The first snapshot carries the root's self-loop (the
    /// paper adds a self-connection for the initiator).
    ///
    /// When the cascade has more events than `max_steps`, events are grouped
    /// so that the sequence length stays at `max_steps` while the final
    /// snapshot still equals the full observed adjacency.
    pub fn snapshots(&self, max_steps: usize) -> Vec<Matrix> {
        assert!(max_steps >= 1, "snapshots: need at least one step");
        let n = self.n;
        // Snapshot boundaries: indices (into events) after which we emit.
        let steps = n.min(max_steps);
        let mut boundaries = Vec::with_capacity(steps);
        for s in 1..=steps {
            // Even spacing with the last boundary at n.
            boundaries.push((s * n).div_ceil(steps));
        }
        let mut out = Vec::with_capacity(steps);
        let mut adj = Matrix::zeros(n, n);
        adj[(0, 0)] = 1.0; // root self-connection
        let mut next_event = 1usize;
        for &b in &boundaries {
            while next_event < b {
                let e = &self.events()[next_event];
                // try_new validated that every non-root event has a parent.
                if let Some(p) = e.parent {
                    adj[(p, next_event)] = 1.0;
                }
                next_event += 1;
            }
            out.push(adj.clone());
        }
        out
    }

    /// The diffusion time of each retained snapshot produced by
    /// [`ObservedCascade::snapshots`] (the arrival time of the last event
    /// included in that snapshot). Used by the time-decay mechanism
    /// (Eq. 15–16).
    pub fn snapshot_times(&self, max_steps: usize) -> Vec<f64> {
        let n = self.n;
        let steps = n.min(max_steps.max(1));
        (1..=steps)
            .map(|s| {
                let b = (s * n).div_ceil(steps);
                self.events()[b - 1].time
            })
            .collect()
    }

    /// Root-to-node diffusion paths for every observed adopter, as local
    /// indices (DeepHawkes represents a cascade as this path set).
    pub fn diffusion_paths(&self) -> Vec<Vec<usize>> {
        let events = self.events();
        (0..self.n)
            .map(|mut i| {
                let mut path = vec![i];
                while let Some(p) = events[i].parent {
                    path.push(p);
                    i = p;
                }
                path.reverse();
                path
            })
            .collect()
    }

    /// Global user ids of the observed adopters, in adoption order.
    pub fn users(&self) -> Vec<u64> {
        self.events().iter().map(|e| e.user).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 / Fig. 3 cascade: V0→V1 (t1), V0→V2 (t2), V1→V3 (t3),
    /// V1→V4 (t4), V3→V5 (t5).
    pub(crate) fn fig1_cascade() -> Cascade {
        Cascade::new(
            42,
            1000.0,
            vec![
                Event { user: 100, parent: None, time: 0.0 },
                Event { user: 101, parent: Some(0), time: 10.0 },
                Event { user: 102, parent: Some(0), time: 20.0 },
                Event { user: 103, parent: Some(1), time: 30.0 },
                Event { user: 104, parent: Some(1), time: 40.0 },
                Event { user: 105, parent: Some(3), time: 50.0 },
            ],
        )
    }

    #[test]
    fn sizes_and_increments() {
        let c = fig1_cascade();
        assert_eq!(c.final_size(), 6);
        assert_eq!(c.size_at(25.0), 3);
        assert_eq!(c.observed_size(25.0), 3);
        assert_eq!(c.increment_size(25.0), 3);
        assert_eq!(c.increment_size(1e9), 0);
    }

    /// Boundary pin: an event at exactly `t == window` is observed
    /// (inclusive), not predicted (exclusive increment) — and the two
    /// accessors always partition the event list without overlap or gap.
    #[test]
    fn window_boundary_is_inclusive_for_observation_exclusive_for_increment() {
        let c = fig1_cascade();
        let eps = 1e-9;
        // fig1 has an event at exactly t = 20.0.
        assert_eq!(c.observe(20.0).num_nodes(), 3, "t == window is observed");
        assert_eq!(c.increment_size(20.0), 3, "t == window is not predicted");
        assert_eq!(c.observe(20.0 - eps).num_nodes(), 2);
        assert_eq!(c.increment_size(20.0 - eps), 4);
        assert_eq!(c.observe(20.0 + eps).num_nodes(), 3);
        assert_eq!(c.increment_size(20.0 + eps), 3);
        for w in [0.0, 10.0, 20.0, 25.0, 50.0, 50.0 - eps, 50.0 + eps] {
            assert_eq!(
                c.observed_size(w) + c.increment_size(w),
                c.final_size(),
                "observation + increment must cover every event exactly once (w = {w})"
            );
            assert_eq!(c.observe(w).num_nodes(), c.observed_size(w).max(1));
        }
    }

    #[test]
    fn try_append_grows_and_validates() {
        let mut c = fig1_cascade();
        c.try_append(Event { user: 106, parent: Some(2), time: 55.0 })
            .expect("valid follow-on event");
        assert_eq!(c.final_size(), 7);
        assert_eq!(c.increment_size(50.0), 1);
        // Time must stay sorted…
        assert!(c.try_append(Event { user: 107, parent: Some(0), time: 1.0 }).is_err());
        // …parents must point backward…
        assert!(c.try_append(Event { user: 107, parent: Some(99), time: 60.0 }).is_err());
        // …and non-root events need a parent.
        assert!(c.try_append(Event { user: 107, parent: None, time: 60.0 }).is_err());
        assert_eq!(c.final_size(), 7, "rejected events are not appended");
    }

    #[test]
    fn observe_clamps_to_root() {
        let c = fig1_cascade();
        let o = c.observe(0.0);
        assert_eq!(o.num_nodes(), 1, "root is always observed");
    }

    #[test]
    fn observed_graph_matches_paper_fig1() {
        let c = fig1_cascade();
        let o = c.observe(60.0);
        let g = o.graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.leaves(), vec![2, 4, 5]);
        assert!(g.is_dag());
    }

    #[test]
    fn snapshots_match_fig3_shape() {
        let c = fig1_cascade();
        let o = c.observe(60.0);
        let snaps = o.snapshots(100);
        assert_eq!(snaps.len(), 6);
        // First snapshot: only the root self-loop.
        assert_eq!(snaps[0].sum(), 1.0);
        assert_eq!(snaps[0][(0, 0)], 1.0);
        // Snapshots accumulate edges monotonically.
        for w in snaps.windows(2) {
            for i in 0..w[0].len() {
                assert!(w[1].as_slice()[i] >= w[0].as_slice()[i]);
            }
        }
        // Last snapshot: self-loop + 5 edges.
        assert_eq!(snaps[5].sum(), 6.0);
        assert_eq!(snaps[5][(1, 3)], 1.0);
        assert_eq!(snaps[5][(3, 5)], 1.0);
    }

    #[test]
    fn snapshots_respect_cap_and_end_state() {
        let c = fig1_cascade();
        let o = c.observe(60.0);
        let snaps = o.snapshots(3);
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[2].sum(), 6.0, "final snapshot must be complete");
        let times = o.snapshot_times(3);
        assert_eq!(times.len(), 3);
        assert_eq!(*times.last().unwrap(), 50.0);
    }

    #[test]
    fn snapshot_times_are_sorted() {
        let c = fig1_cascade();
        let times = c.observe(60.0).snapshot_times(4);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diffusion_paths_reach_root() {
        let c = fig1_cascade();
        let paths = c.observe(60.0).diffusion_paths();
        assert_eq!(paths.len(), 6);
        assert_eq!(paths[0], vec![0]);
        assert_eq!(paths[5], vec![0, 1, 3, 5]);
        assert!(paths.iter().all(|p| p[0] == 0));
    }

    #[test]
    #[should_panic(expected = "references later parent")]
    fn new_rejects_forward_parent() {
        let _ = Cascade::new(
            1,
            0.0,
            vec![
                Event { user: 0, parent: None, time: 0.0 },
                Event { user: 1, parent: Some(2), time: 1.0 },
                Event { user: 2, parent: Some(0), time: 2.0 },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "not time-sorted")]
    fn new_rejects_unsorted_times() {
        let _ = Cascade::new(
            1,
            0.0,
            vec![
                Event { user: 0, parent: None, time: 0.0 },
                Event { user: 1, parent: Some(0), time: 5.0 },
                Event { user: 2, parent: Some(0), time: 2.0 },
            ],
        );
    }
}
