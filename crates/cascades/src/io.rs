//! Plain-text dataset serialization and CSV export.
//!
//! The cascade format is line-based and human-inspectable, in the spirit of
//! the DeepHawkes release the paper builds on:
//!
//! ```text
//! # cascn cascade file v1
//! cascade <id> <start_time>
//! event <user> <parent_index|-> <time>
//! ...
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{Cascade, CascadeFault, Dataset, Event, QuarantineReport, QuarantinedCascade};

/// Errors arising while reading a cascade file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file, with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Serializes a dataset to the line-based text format.
pub fn dataset_to_string(dataset: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cascn cascade file v1");
    let _ = writeln!(out, "# dataset {}", dataset.name);
    for c in &dataset.cascades {
        let _ = writeln!(out, "cascade {} {}", c.id, c.start_time);
        for e in &c.events {
            match e.parent {
                Some(p) => {
                    let _ = writeln!(out, "event {} {} {}", e.user, p, e.time);
                }
                None => {
                    let _ = writeln!(out, "event {} - {}", e.user, e.time);
                }
            }
        }
    }
    out
}

/// Writes a dataset to `path`.
pub fn write_dataset(path: impl AsRef<Path>, dataset: &Dataset) -> io::Result<()> {
    fs::write(path, dataset_to_string(dataset))
}

/// Parses a dataset from the text format. The dataset name is taken from the
/// `# dataset` header when present, else `name_hint`.
///
/// Every cascade invariant (root-first, non-negative sorted times, in-range
/// parents) is validated *as lines are read*, so errors carry the line number
/// of the offending record rather than a summary at flush time.
pub fn dataset_from_str(text: &str, name_hint: &str) -> Result<Dataset, ReadError> {
    let (dataset, report) = parse_dataset(text, name_hint, Mode::Strict)?;
    debug_assert!(report.is_clean(), "strict mode never quarantines");
    Ok(dataset)
}

/// Lenient counterpart of [`dataset_from_str`]: malformed cascades are
/// quarantined (skipped with a recorded reason) instead of failing the whole
/// load, so a handful of corrupt records cannot take down a training run.
pub fn dataset_from_str_lenient(text: &str, name_hint: &str) -> (Dataset, QuarantineReport) {
    match parse_dataset(text, name_hint, Mode::Lenient) {
        Ok(parsed) => parsed,
        // Defensive: lenient mode quarantines instead of failing, so this
        // arm is unreachable — but if it ever fires, degrade to an empty
        // dataset with the failure recorded rather than aborting the run.
        Err(e) => {
            let (line, reason) = match e {
                ReadError::Parse { line, message } => (line, message),
                ReadError::Io(e) => (0, e.to_string()),
            };
            let mut report = QuarantineReport::default();
            report.quarantined.push(QuarantinedCascade { id: None, line, reason });
            (Dataset::new(name_hint.to_string(), Vec::new()), report)
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Strict,
    Lenient,
}

/// Parser state for the cascade currently being assembled.
struct Pending {
    id: u64,
    start: f64,
    events: Vec<Event>,
    /// Set when a fault was already recorded; remaining body lines are
    /// consumed without further reporting until the next header.
    poisoned: bool,
}

fn parse_dataset(
    text: &str,
    name_hint: &str,
    mode: Mode,
) -> Result<(Dataset, QuarantineReport), ReadError> {
    let mut name = name_hint.to_string();
    let mut cascades: Vec<Cascade> = Vec::new();
    let mut report = QuarantineReport::default();
    let mut current: Option<Pending> = None;

    // In lenient mode a fault quarantines the current cascade and poisons it
    // so the rest of its body is skipped; in strict mode it aborts the parse.
    macro_rules! fault {
        ($line:expr, $($msg:tt)*) => {{
            let message = format!($($msg)*);
            match mode {
                Mode::Strict => return Err(ReadError::Parse { line: $line, message }),
                Mode::Lenient => {
                    let id = current.as_ref().map(|p| p.id);
                    report.quarantined.push(QuarantinedCascade { id, line: $line, reason: message });
                    if let Some(p) = current.as_mut() {
                        p.poisoned = true;
                    }
                    continue;
                }
            }
        }};
    }

    let mut lineno = 0usize;
    for (i, raw) in text.lines().enumerate() {
        lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# dataset ") {
            name = rest.trim().to_string();
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("cascade") => {
                if let Err((line, message)) = flush(&mut current, &mut cascades, lineno) {
                    match mode {
                        Mode::Strict => return Err(ReadError::Parse { line, message }),
                        Mode::Lenient => {
                            let id = None; // the faulty cascade was already taken
                            report
                                .quarantined
                                .push(QuarantinedCascade { id, line, reason: message });
                        }
                    }
                }
                let header = (|| -> Result<Pending, String> {
                    let id = parse_tok(parts.next(), "cascade id")?;
                    let start = parse_tok(parts.next(), "start time")?;
                    Ok(Pending { id, start, events: Vec::new(), poisoned: false })
                })();
                match header {
                    Ok(p) => current = Some(p),
                    Err(message) => match mode {
                        Mode::Strict => {
                            return Err(ReadError::Parse { line: lineno, message })
                        }
                        Mode::Lenient => {
                            report.quarantined.push(QuarantinedCascade {
                                id: None,
                                line: lineno,
                                reason: message,
                            });
                            // Poisoned placeholder swallows the unparseable
                            // cascade's body without further reports.
                            current = Some(Pending {
                                id: 0,
                                start: 0.0,
                                events: Vec::new(),
                                poisoned: true,
                            });
                        }
                    },
                }
            }
            Some("event") => {
                match current.as_mut() {
                    None => fault!(lineno, "event before any cascade header"),
                    Some(p) if p.poisoned => continue,
                    Some(_) => {}
                }
                let parsed = (|| -> Result<Event, String> {
                    let user = parse_tok(parts.next(), "user")?;
                    let parent_tok = parts.next().ok_or("missing parent field")?;
                    let parent = if parent_tok == "-" {
                        None
                    } else {
                        Some(parse_tok(Some(parent_tok), "parent")?)
                    };
                    let time = parse_tok(parts.next(), "time")?;
                    Ok(Event { user, parent, time })
                })();
                let event = match parsed {
                    Ok(e) => e,
                    Err(message) => fault!(lineno, "{message}"),
                };
                let Some(pending) = current.as_mut() else {
                    continue; // unreachable: the header check above rejected headerless events
                };
                let idx = pending.events.len();
                // Validate incrementally so the error points at this line.
                // `events.last()` doubles as the root/follow-on dispatch: the
                // first event has no predecessor and must be the root.
                let fault = match pending.events.last() {
                    None => {
                        if event.parent.is_some() {
                            Some(CascadeFault::RootHasParent)
                        // lint: allow(float-eq) — the format contract pins the root at exactly t=0
                        } else if event.time != 0.0 {
                            Some(CascadeFault::RootTimeNonZero { time: event.time })
                        } else {
                            None
                        }
                    }
                    Some(prev) => check_follow_on(prev, &event, idx),
                };
                if let Some(f) = fault {
                    fault!(lineno, "{f}");
                }
                pending.events.push(event);
            }
            Some(other) => {
                if current.as_ref().is_some_and(|p| p.poisoned) {
                    continue; // mangled line inside an already-reported cascade
                }
                fault!(lineno, "unknown record type `{other}`");
            }
            None => {}
        }
    }
    if let Err((line, message)) = flush(&mut current, &mut cascades, lineno + 1) {
        match mode {
            Mode::Strict => return Err(ReadError::Parse { line, message }),
            Mode::Lenient => {
                report
                    .quarantined
                    .push(QuarantinedCascade { id: None, line, reason: message });
            }
        }
    }
    report.kept = cascades.len();
    Ok((Dataset::new(name, cascades), report))
}

/// Validates a non-root `event` (at cascade index `idx`) against its
/// predecessor — the incremental form of [`crate::validate_events`].
/// Shared with the streaming request parser (`crate::stream`).
pub(crate) fn check_follow_on(prev: &Event, event: &Event, idx: usize) -> Option<CascadeFault> {
    if event.time < 0.0 {
        return Some(CascadeFault::NegativeTime { index: idx, time: event.time });
    }
    match event.parent {
        None => return Some(CascadeFault::MissingParent { index: idx }),
        Some(p) if p >= idx => {
            return Some(CascadeFault::ForwardParent { index: idx, parent: p })
        }
        Some(_) => {}
    }
    if event.time < prev.time {
        return Some(CascadeFault::TimeUnsorted { index: idx });
    }
    None
}

/// Completes the pending cascade, if any. Per-line validation already
/// enforced the invariants, so only emptiness (a header with no body) can
/// fail here.
#[allow(clippy::result_large_err)]
fn flush(
    cur: &mut Option<Pending>,
    out: &mut Vec<Cascade>,
    line: usize,
) -> Result<(), (usize, String)> {
    if let Some(p) = cur.take() {
        if p.poisoned {
            return Ok(()); // already quarantined at its faulting line
        }
        if p.events.is_empty() {
            return Err((line, format!("cascade {} has no events", p.id)));
        }
        let id = p.id;
        let cascade = Cascade::try_new(p.id, p.start, p.events)
            .map_err(|f| (line, format!("cascade {id}: {f}")))?;
        out.push(cascade);
    }
    Ok(())
}

/// Reads a dataset file written by [`write_dataset`].
pub fn read_dataset(path: impl AsRef<Path>) -> Result<Dataset, ReadError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    dataset_from_str(&text, &stem_hint(path))
}

/// Reads a dataset file leniently, quarantining malformed cascades instead of
/// failing. Only I/O errors abort.
pub fn read_dataset_lenient(
    path: impl AsRef<Path>,
) -> Result<(Dataset, QuarantineReport), ReadError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    Ok(dataset_from_str_lenient(&text, &stem_hint(path)))
}

fn stem_hint(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into())
}

pub(crate) fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    let tok = tok.ok_or_else(|| format!("missing {what}"))?;
    tok.parse()
        .map_err(|_| format!("invalid {what}: `{tok}`"))
}

/// Writes a CSV file with a header row; every row must match the header
/// width. Cells are written with `Display`, so callers pre-format floats.
///
/// # Panics
/// Panics if a row's width differs from the header's.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch");
        let _ = writeln!(out, "{}", row.join(","));
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{WeiboConfig, WeiboGenerator};

    #[test]
    fn roundtrip_preserves_dataset() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 40,
            seed: 4,
            max_size: 200,
        })
        .generate();
        let text = dataset_to_string(&d);
        let back = dataset_from_str(&text, "fallback").expect("roundtrip parses");
        assert_eq!(back.name, d.name);
        assert_eq!(back.cascades, d.cascades);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "# cascn cascade file v1\ncascade 1 0.0\nevent 5 - 0.0\nevent 6 bogus 1.0\n";
        let err = dataset_from_str(text, "x").unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("parent"), "got: {message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn event_before_cascade_is_rejected() {
        let err = dataset_from_str("event 1 - 0.0\n", "x").unwrap_err();
        assert!(matches!(err, ReadError::Parse { line: 1, .. }));
    }

    /// Extracts the (line, message) of a Parse error, failing on Io.
    fn parse_err(text: &str) -> (usize, String) {
        match dataset_from_str(text, "x").unwrap_err() {
            ReadError::Parse { line, message } => (line, message),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        // Header with no body: the flush at EOF reports the line after the
        // last one.
        let (line, msg) = parse_err("# cascn cascade file v1\ncascade 7 0.0\n");
        assert_eq!(line, 3);
        assert!(msg.contains("cascade 7 has no events"), "got: {msg}");
        // Header truncated mid-token.
        let (line, msg) = parse_err("cascade 7\n");
        assert_eq!(line, 1);
        assert!(msg.contains("missing start time"), "got: {msg}");
    }

    #[test]
    fn bad_parent_index_is_rejected_at_its_line() {
        // Event 2 (line 4) references parent 5, which does not exist yet.
        let text = "cascade 1 0.0\nevent 5 - 0.0\nevent 6 0 1.0\nevent 7 5 2.0\n";
        let (line, msg) = parse_err(text);
        assert_eq!(line, 4);
        assert!(msg.contains("references later parent 5"), "got: {msg}");
    }

    #[test]
    fn negative_time_is_rejected_at_its_line() {
        let text = "cascade 1 0.0\nevent 5 - 0.0\nevent 6 0 -3.5\n";
        let (line, msg) = parse_err(text);
        assert_eq!(line, 3);
        assert!(msg.contains("negative time"), "got: {msg}");
    }

    #[test]
    fn non_monotone_times_are_rejected_at_their_line() {
        let text = "cascade 1 0.0\nevent 5 - 0.0\nevent 6 0 9.0\nevent 7 1 4.0\n";
        let (line, msg) = parse_err(text);
        assert_eq!(line, 4);
        assert!(msg.contains("not time-sorted"), "got: {msg}");
    }

    #[test]
    fn root_invariants_checked_at_first_event() {
        let (line, msg) = parse_err("cascade 1 0.0\nevent 5 - 2.0\n");
        assert_eq!(line, 2);
        assert!(msg.contains("root must be at t=0"), "got: {msg}");
        let (line, msg) = parse_err("cascade 1 0.0\nevent 5 0 0.0\n");
        assert_eq!(line, 2);
        assert!(msg.contains("event 0 must be the root"), "got: {msg}");
    }

    #[test]
    fn lenient_load_quarantines_bad_cascades() {
        let text = "\
# cascn cascade file v1
cascade 1 0.0
event 5 - 0.0
event 6 0 1.0
cascade 2 0.0
event 7 - 0.0
event 8 9 1.0
cascade 3 0.0
event 9 - 0.0
";
        let (d, report) = dataset_from_str_lenient(text, "x");
        assert_eq!(d.cascades.len(), 2);
        assert_eq!(report.kept, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].id, Some(2));
        assert_eq!(report.quarantined[0].line, 7);
        assert!(report.quarantined[0].reason.contains("later parent"));
        assert!(report.summary().contains("2 cascades loaded, 1 quarantined"));
    }

    #[test]
    fn lenient_load_reports_one_entry_per_bad_cascade() {
        // A mangled record line poisons the cascade; the remaining body must
        // not generate additional quarantine entries.
        let text = "\
cascade 1 0.0
evnt 5 - 0.0
event 6 0 1.0
evnt 7 1 2.0
cascade 2 0.0
event 8 - 0.0
";
        let (d, report) = dataset_from_str_lenient(text, "x");
        assert_eq!(d.cascades.len(), 1);
        assert_eq!(d.cascades[0].id, 2);
        assert_eq!(report.quarantined.len(), 1, "report: {}", report.summary());
        assert_eq!(report.quarantined[0].id, Some(1));
    }

    #[test]
    fn lenient_load_is_clean_on_valid_input() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 10,
            seed: 2,
            max_size: 100,
        })
        .generate();
        let (back, report) = dataset_from_str_lenient(&dataset_to_string(&d), "fallback");
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(back.cascades, d.cascades);
    }

    #[test]
    fn file_roundtrip() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 5,
            seed: 1,
            max_size: 50,
        })
        .generate();
        let dir = std::env::temp_dir().join("cascn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weibo.cascades");
        write_dataset(&path, &d).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(back.cascades, d.cascades);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_writer_produces_header_and_rows() {
        let dir = std::env::temp_dir().join("cascn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }
}
