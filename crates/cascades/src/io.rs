//! Plain-text dataset serialization and CSV export.
//!
//! The cascade format is line-based and human-inspectable, in the spirit of
//! the DeepHawkes release the paper builds on:
//!
//! ```text
//! # cascn cascade file v1
//! cascade <id> <start_time>
//! event <user> <parent_index|-> <time>
//! ...
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{Cascade, Dataset, Event};

/// Errors arising while reading a cascade file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file, with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Serializes a dataset to the line-based text format.
pub fn dataset_to_string(dataset: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cascn cascade file v1");
    let _ = writeln!(out, "# dataset {}", dataset.name);
    for c in &dataset.cascades {
        let _ = writeln!(out, "cascade {} {}", c.id, c.start_time);
        for e in &c.events {
            match e.parent {
                Some(p) => {
                    let _ = writeln!(out, "event {} {} {}", e.user, p, e.time);
                }
                None => {
                    let _ = writeln!(out, "event {} - {}", e.user, e.time);
                }
            }
        }
    }
    out
}

/// Writes a dataset to `path`.
pub fn write_dataset(path: impl AsRef<Path>, dataset: &Dataset) -> io::Result<()> {
    fs::write(path, dataset_to_string(dataset))
}

/// Parses a dataset from the text format. The dataset name is taken from the
/// `# dataset` header when present, else `name_hint`.
pub fn dataset_from_str(text: &str, name_hint: &str) -> Result<Dataset, ReadError> {
    let mut name = name_hint.to_string();
    let mut cascades: Vec<Cascade> = Vec::new();
    let mut current: Option<(u64, f64, Vec<Event>)> = Vec::new().into_iter().next();

    let flush = |cur: &mut Option<(u64, f64, Vec<Event>)>,
                     out: &mut Vec<Cascade>,
                     line: usize|
     -> Result<(), ReadError> {
        if let Some((id, start, events)) = cur.take() {
            if events.is_empty() {
                return Err(ReadError::Parse {
                    line,
                    message: format!("cascade {id} has no events"),
                });
            }
            out.push(Cascade::new(id, start, events));
        }
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# dataset ") {
            name = rest.trim().to_string();
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("cascade") => {
                flush(&mut current, &mut cascades, lineno)?;
                let id = parse_field(parts.next(), "cascade id", lineno)?;
                let start = parse_field(parts.next(), "start time", lineno)?;
                current = Some((id, start, Vec::new()));
            }
            Some("event") => {
                let Some((_, _, events)) = current.as_mut() else {
                    return Err(ReadError::Parse {
                        line: lineno,
                        message: "event before any cascade header".into(),
                    });
                };
                let user = parse_field(parts.next(), "user", lineno)?;
                let parent_tok = parts.next().ok_or_else(|| ReadError::Parse {
                    line: lineno,
                    message: "missing parent field".into(),
                })?;
                let parent = if parent_tok == "-" {
                    None
                } else {
                    Some(parse_field(Some(parent_tok), "parent", lineno)?)
                };
                let time = parse_field(parts.next(), "time", lineno)?;
                events.push(Event { user, parent, time });
            }
            Some(other) => {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: format!("unknown record type `{other}`"),
                });
            }
            None => {}
        }
    }
    flush(&mut current, &mut cascades, text.lines().count())?;
    Ok(Dataset::new(name, cascades))
}

/// Reads a dataset file written by [`write_dataset`].
pub fn read_dataset(path: impl AsRef<Path>) -> Result<Dataset, ReadError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    let hint = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    dataset_from_str(&text, &hint)
}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, ReadError> {
    let tok = tok.ok_or_else(|| ReadError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| ReadError::Parse {
        line,
        message: format!("invalid {what}: `{tok}`"),
    })
}

/// Writes a CSV file with a header row; every row must match the header
/// width. Cells are written with `Display`, so callers pre-format floats.
///
/// # Panics
/// Panics if a row's width differs from the header's.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch");
        let _ = writeln!(out, "{}", row.join(","));
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{WeiboConfig, WeiboGenerator};

    #[test]
    fn roundtrip_preserves_dataset() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 40,
            seed: 4,
            max_size: 200,
        })
        .generate();
        let text = dataset_to_string(&d);
        let back = dataset_from_str(&text, "fallback").expect("roundtrip parses");
        assert_eq!(back.name, d.name);
        assert_eq!(back.cascades, d.cascades);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "# cascn cascade file v1\ncascade 1 0.0\nevent 5 - 0.0\nevent 6 bogus 1.0\n";
        let err = dataset_from_str(text, "x").unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("parent"), "got: {message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn event_before_cascade_is_rejected() {
        let err = dataset_from_str("event 1 - 0.0\n", "x").unwrap_err();
        assert!(matches!(err, ReadError::Parse { line: 1, .. }));
    }

    #[test]
    fn file_roundtrip() {
        let d = WeiboGenerator::new(WeiboConfig {
            num_cascades: 5,
            seed: 1,
            max_size: 50,
        })
        .generate();
        let dir = std::env::temp_dir().join("cascn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weibo.cascades");
        write_dataset(&path, &d).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(back.cascades, d.cascades);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_writer_produces_header_and_rows() {
        let dir = std::env::temp_dir().join("cascn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }
}
