//! Dataset-level statistics behind Table II and Figures 4, 5 and 8.

use crate::Dataset;

/// Log-binned cascade-size histogram (Fig. 4): returns
/// `(bin_lower_size, count)` pairs for power-of-two bins.
pub fn size_distribution(dataset: &Dataset) -> Vec<(usize, usize)> {
    let mut bins: Vec<usize> = Vec::new();
    for c in &dataset.cascades {
        let size = c.final_size();
        let bin = (usize::BITS - 1 - size.leading_zeros()) as usize; // floor(log2)
        if bins.len() <= bin {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    bins.into_iter()
        .enumerate()
        .map(|(b, count)| (1usize << b, count))
        .collect()
}

/// Popularity-saturation curve (Fig. 5): fraction of eventual adoptions that
/// have arrived by each of `num_points` evenly spaced times in
/// `[0, horizon]`, pooled over all cascades with at least `min_size`
/// adopters. Returns `(time, fraction)` pairs.
pub fn popularity_curve(dataset: &Dataset, horizon: f64, num_points: usize) -> Vec<(f64, f64)> {
    let min_size = 2;
    let total: usize = dataset
        .cascades
        .iter()
        .filter(|c| c.final_size() >= min_size)
        .map(|c| c.final_size())
        .sum();
    (0..=num_points)
        .map(|i| {
            let t = horizon * i as f64 / num_points as f64;
            let arrived: usize = dataset
                .cascades
                .iter()
                .filter(|c| c.final_size() >= min_size)
                .map(|c| c.size_at(t))
                .sum();
            (t, arrived as f64 / total.max(1) as f64)
        })
        .collect()
}

/// Average observed cascade size as a function of the observation time
/// (Fig. 8a): one value per requested time.
pub fn avg_observed_size(dataset: &Dataset, times: &[f64]) -> Vec<f64> {
    times
        .iter()
        .map(|&t| {
            let total: usize = dataset.cascades.iter().map(|c| c.size_at(t)).sum();
            total as f64 / dataset.cascades.len().max(1) as f64
        })
        .collect()
}

/// Estimates the power-law tail exponent of the size distribution via a
/// least-squares fit on the log-binned histogram (used to validate the
/// Fig. 4 "straight line on log-log axes" claim).
pub fn power_law_slope(dataset: &Dataset) -> Option<f64> {
    let hist = size_distribution(dataset);
    let points: Vec<(f64, f64)> = hist
        .iter()
        .filter(|&&(size, count)| size >= 2 && count > 0)
        .map(|&(size, count)| ((size as f64).ln(), (count as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{WeiboConfig, WeiboGenerator};

    fn dataset() -> Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 1200,
            seed: 9,
            max_size: 1000,
        })
        .generate()
    }

    #[test]
    fn size_distribution_counts_everything() {
        let d = dataset();
        let hist = size_distribution(&d);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, d.cascades.len());
        // Bins are powers of two.
        for (i, &(size, _)) in hist.iter().enumerate() {
            assert_eq!(size, 1 << i);
        }
    }

    #[test]
    fn size_distribution_decays() {
        let d = dataset();
        let hist = size_distribution(&d);
        // Heavy-tail shape of Fig. 4: most cascades are small, and counts
        // decay (weakly) monotonically past the modal bin.
        let small: usize = hist.iter().take(4).map(|&(_, c)| c).sum();
        let large: usize = hist.iter().skip(4).map(|&(_, c)| c).sum();
        assert!(small > 2 * large, "small {small} should dominate large {large}");
        let modal = hist
            .iter()
            .enumerate()
            .max_by_key(|&(_, &(_, c))| c)
            .map(|(i, _)| i)
            .unwrap();
        for w in hist[modal..].windows(2) {
            assert!(w[1].1 <= w[0].1, "tail must decay: {hist:?}");
        }
    }

    #[test]
    fn popularity_curve_is_monotone_and_saturates() {
        let d = dataset();
        let curve = popularity_curve(&d, 24.0 * 3600.0, 24);
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9));
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-6);
        assert_eq!(curve.first().unwrap().1.min(0.9), curve.first().unwrap().1, "starts below 1");
    }

    #[test]
    fn avg_observed_size_grows_with_time() {
        let d = dataset();
        let sizes = avg_observed_size(&d, &[600.0, 3600.0, 7200.0, 86400.0]);
        assert!(sizes.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn power_law_slope_is_negative() {
        let d = dataset();
        let slope = power_law_slope(&d).expect("enough histogram points");
        assert!(
            (-4.0..-0.3).contains(&slope),
            "expected a negative tail exponent, got {slope}"
        );
    }
}
