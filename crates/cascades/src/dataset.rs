//! Datasets, time-ordered splits, and Table II statistics.

use crate::Cascade;

/// Which split a cascade belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// First 70 % of cascades by publication time.
    Train,
    /// Next 15 %.
    Validation,
    /// Final 15 %.
    Test,
}

/// A named collection of cascades plus the unit conversions the experiments
/// need (Weibo windows are in hours, HEP-PH windows in years).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("weibo-synth", "hepph-synth").
    pub name: String,
    /// All cascades, sorted by `start_time` (the paper sorts by publication
    /// time before splitting).
    pub cascades: Vec<Cascade>,
}

impl Dataset {
    /// Creates a dataset, sorting cascades by publication time.
    pub fn new(name: impl Into<String>, mut cascades: Vec<Cascade>) -> Self {
        cascades.sort_by(|a, b| a.start_time.total_cmp(&b.start_time));
        Self {
            name: name.into(),
            cascades,
        }
    }

    /// Filters to cascades whose observed size within `window` lies in
    /// `[min_size, max_size]` — the paper (following DeepHawkes) drops
    /// cascades too small to learn from and truncates giants.
    pub fn filter_observed_size(
        &self,
        window: f64,
        min_size: usize,
        max_size: usize,
    ) -> Dataset {
        let kept: Vec<Cascade> = self
            .cascades
            .iter()
            .filter(|c| {
                let n = c.size_at(window);
                n >= min_size && n <= max_size
            })
            .cloned()
            .collect();
        Dataset {
            name: self.name.clone(),
            cascades: kept,
        }
    }

    /// 70/15/15 time-ordered split (paper Section V-A: first 70 % train,
    /// rest evenly into validation and test).
    pub fn split(&self, split: Split) -> &[Cascade] {
        let n = self.cascades.len();
        let train_end = n * 70 / 100;
        let val_end = train_end + (n - train_end) / 2;
        match split {
            Split::Train => &self.cascades[..train_end],
            Split::Validation => &self.cascades[train_end..val_end],
            Split::Test => &self.cascades[val_end..],
        }
    }

    /// Per-split statistics for an observation window — the rows of
    /// Table II.
    pub fn split_stats(&self, split: Split, window: f64) -> SplitStats {
        let cascades = self.split(split);
        let mut nodes = 0usize;
        let mut edges = 0usize;
        for c in cascades {
            let n = c.size_at(window).max(1);
            nodes += n;
            edges += n - 1; // a cascade DAG over n adopters has n-1 edges
        }
        let count = cascades.len();
        SplitStats {
            count,
            avg_nodes: if count == 0 { 0.0 } else { nodes as f64 / count as f64 },
            avg_edges: if count == 0 { 0.0 } else { edges as f64 / count as f64 },
        }
    }

    /// Total number of edges across all full cascades (Table II's "edges
    /// All" row).
    pub fn total_edges(&self) -> usize {
        self.cascades.iter().map(|c| c.final_size() - 1).sum()
    }
}

/// Statistics of one split at one observation window (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitStats {
    /// Number of cascades in the split.
    pub count: usize,
    /// Average observed node count.
    pub avg_nodes: f64,
    /// Average observed edge count.
    pub avg_edges: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn mk_cascade(id: u64, start: f64, extra: usize) -> Cascade {
        let mut events = vec![Event { user: id * 100, parent: None, time: 0.0 }];
        for i in 0..extra {
            events.push(Event {
                user: id * 100 + 1 + i as u64,
                parent: Some(0),
                time: (i + 1) as f64,
            });
        }
        Cascade::new(id, start, events)
    }

    fn dataset(n: usize) -> Dataset {
        // Deliberately unsorted input to exercise the sort.
        let cascades: Vec<Cascade> = (0..n)
            .map(|i| mk_cascade(i as u64, ((n - i) as f64) * 10.0, i % 5))
            .collect();
        Dataset::new("test", cascades)
    }

    #[test]
    fn new_sorts_by_start_time() {
        let d = dataset(10);
        assert!(d
            .cascades
            .windows(2)
            .all(|w| w[0].start_time <= w[1].start_time));
    }

    #[test]
    fn split_sizes_are_70_15_15() {
        let d = dataset(100);
        assert_eq!(d.split(Split::Train).len(), 70);
        assert_eq!(d.split(Split::Validation).len(), 15);
        assert_eq!(d.split(Split::Test).len(), 15);
        let total = d.split(Split::Train).len()
            + d.split(Split::Validation).len()
            + d.split(Split::Test).len();
        assert_eq!(total, 100, "splits must partition the dataset");
    }

    #[test]
    fn splits_are_time_ordered() {
        let d = dataset(20);
        let last_train = d.split(Split::Train).last().unwrap().start_time;
        let first_val = d.split(Split::Validation).first().unwrap().start_time;
        assert!(last_train <= first_val);
    }

    #[test]
    fn filter_observed_size_keeps_range() {
        let d = dataset(50);
        let f = d.filter_observed_size(10.0, 3, 4);
        assert!(!f.cascades.is_empty());
        for c in &f.cascades {
            let n = c.size_at(10.0);
            assert!((3..=4).contains(&n));
        }
    }

    #[test]
    fn stats_count_nodes_and_edges() {
        let d = Dataset::new("s", vec![mk_cascade(1, 0.0, 4), mk_cascade(2, 1.0, 2)]);
        // With a huge window both cascades are fully observed.
        let s = d.split_stats(Split::Train, 1e9);
        assert_eq!(s.count, 1, "70% of 2 cascades = 1");
        assert_eq!(s.avg_nodes, 5.0);
        assert_eq!(s.avg_edges, 4.0);
        assert_eq!(d.total_edges(), 6);
    }

    #[test]
    fn empty_split_stats_are_zero() {
        let d = Dataset::new("e", vec![]);
        let s = d.split_stats(Split::Test, 1.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_nodes, 0.0);
    }
}
