//! Cascade data model, synthetic datasets, features and statistics for the
//! CasCN reproduction.
//!
//! Implements Section III-A of the paper (evolving cascade DAGs, sub-cascade
//! snapshot sequences, increment-size labels), the Section V-A datasets
//! (via seeded synthetic stand-ins for Sina Weibo and HEP-PH — see
//! `DESIGN.md` §3 for the substitution rationale), the Section V-B
//! hand-crafted features, and the statistics behind Table II and
//! Figures 4, 5 and 8.
//!
//! # Example
//!
//! ```
//! use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
//!
//! let dataset = WeiboGenerator::new(WeiboConfig {
//!     num_cascades: 50,
//!     seed: 7,
//!     ..WeiboConfig::default()
//! })
//! .generate();
//! assert_eq!(dataset.cascades.len(), 50);
//!
//! let observed = dataset.cascades[0].observe(3600.0);
//! let _label = dataset.cascades[0].increment_size(3600.0);
//! let _snapshots = observed.snapshots(16);
//! ```

mod cascade;
mod dataset;
pub mod echoflow;
pub mod features;
pub mod deephawkes_format;
pub mod io;
pub mod stats;
pub mod stream;
pub mod synth;
pub mod validate;

pub use cascade::{Cascade, Event, ObservedCascade};
pub use dataset::{Dataset, Split, SplitStats};
pub use echoflow::{
    dataset_from_echoflow_str, dataset_from_echoflow_str_lenient, echoflow_to_string,
    looks_like_echoflow,
};
pub use stream::{parse_observe_body, CascadeStream, ObserveBody, StreamLimits};
pub use validate::{validate_events, CascadeFault, QuarantineReport, QuarantinedCascade};
