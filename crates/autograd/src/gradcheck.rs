//! Finite-difference gradient verification.
//!
//! Every backward rule in this crate is validated against central finite
//! differences. With `f32` arithmetic the attainable agreement is roughly
//! three significant digits, so callers should use relative tolerances of
//! about 2–5 % and keep test inputs O(1).

use cascn_tensor::Matrix;

use crate::params::{ParamId, ParamStore};

/// Outcome of a gradient check for a single parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Parameter name.
    pub name: String,
    /// Largest relative error across entries.
    pub max_rel_err: f32,
    /// Entry index of the largest error.
    pub worst_index: usize,
    /// Analytic value at the worst entry.
    pub analytic: f32,
    /// Numeric value at the worst entry.
    pub numeric: f32,
}

/// Central-difference gradient of `loss` with respect to parameter `id`.
///
/// `loss` must be a pure function of the store (it may build tapes
/// internally). `h` is the perturbation step; `1e-2` works well for
/// `f32`-scaled problems.
pub fn numeric_gradient(
    store: &mut ParamStore,
    id: ParamId,
    h: f32,
    mut loss: impl FnMut(&ParamStore) -> f32,
) -> Matrix {
    let shape = store.value(id).shape();
    let mut grad = Matrix::zeros(shape.0, shape.1);
    for i in 0..shape.0 * shape.1 {
        let orig = store.value(id).as_slice()[i];
        store.value_mut(id).as_mut_slice()[i] = orig + h;
        let up = loss(store);
        store.value_mut(id).as_mut_slice()[i] = orig - h;
        let down = loss(store);
        store.value_mut(id).as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = (up - down) / (2.0 * h);
    }
    grad
}

/// Compares analytic gradients (already accumulated in `store`) against
/// central finite differences of `loss`, returning one report per parameter.
///
/// Callers typically run the forward+backward pass, then invoke this with the
/// same loss closure and assert `max_rel_err` is small.
pub fn check_gradients(
    store: &mut ParamStore,
    h: f32,
    mut loss: impl FnMut(&ParamStore) -> f32,
) -> Vec<GradCheckReport> {
    let ids: Vec<_> = store.ids().collect();
    let mut reports = Vec::with_capacity(ids.len());
    for id in ids {
        let numeric = numeric_gradient(store, id, h, &mut loss);
        let analytic = store.grad(id).clone();
        let mut worst = (0usize, 0.0f32, 0.0f32, 0.0f32);
        for i in 0..numeric.len() {
            let (a, n) = (analytic.as_slice()[i], numeric.as_slice()[i]);
            // The floor must sit above the absolute noise of f32 central
            // differences (≈ eps·|f|/2h ≈ 1e-4 for |f|≈10, h=5e-3), else
            // near-zero gradients fail on rounding noise alone.
            let denom = a.abs().max(n.abs()).max(1e-2);
            let rel = (a - n).abs() / denom;
            if rel > worst.1 {
                worst = (i, rel, a, n);
            }
        }
        reports.push(GradCheckReport {
            name: store.name(id).to_string(),
            max_rel_err: worst.1,
            worst_index: worst.0,
            analytic: worst.2,
            numeric: worst.3,
        });
    }
    reports
}

/// Asserts that every parameter's analytic gradient matches finite
/// differences within `tol` relative error.
///
/// # Panics
/// Panics with the worst offending parameter and entry.
pub fn assert_gradients_close(
    store: &mut ParamStore,
    h: f32,
    tol: f32,
    loss: impl FnMut(&ParamStore) -> f32,
) {
    for report in check_gradients(store, h, loss) {
        assert!(
            report.max_rel_err <= tol,
            "gradient check failed for `{}` at entry {}: analytic {} vs numeric {} (rel err {:.4})",
            report.name,
            report.worst_index,
            report.analytic,
            report.numeric,
            report.max_rel_err
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn numeric_gradient_of_quadratic_is_linear() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::row_vector(&[1.0, -2.0]));
        let g = numeric_gradient(&mut store, w, 1e-3, |s| {
            s.value(w).as_slice().iter().map(|x| x * x).sum::<f32>() * 0.5
        });
        // d/dw (0.5 Σ w²) = w
        assert!((g.as_slice()[0] - 1.0).abs() < 1e-2);
        assert!((g.as_slice()[1] + 2.0).abs() < 1e-2);
        // The probe must restore the original values.
        assert_eq!(store.value(w).as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn check_gradients_passes_for_linear_model() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_rows(&[&[0.3], &[-0.7]]));
        let b = store.register("b", Matrix::zeros(1, 1));
        let x = Matrix::row_vector(&[1.5, -0.5]);

        let loss_fn = |s: &ParamStore| {
            let mut t = Tape::new();
            let wv = t.constant(s.value(w).clone());
            let bv = t.constant(s.value(b).clone());
            let xv = t.constant(x.clone());
            let y = t.linear(xv, wv, bv);
            let l = t.squared_error(y, 2.0);
            t.scalar(l)
        };

        // Analytic pass.
        {
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let bv = t.param(&store, b);
            let xv = t.constant(x.clone());
            let y = t.linear(xv, wv, bv);
            let l = t.squared_error(y, 2.0);
            t.backward(l);
            t.accumulate_param_grads(&mut store);
        }
        assert_gradients_close(&mut store, 1e-2, 2e-2, loss_fn);
    }
}
