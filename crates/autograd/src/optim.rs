//! First-order optimizers operating on a [`ParamStore`].

use cascn_tensor::Matrix;

use crate::params::ParamStore;

/// Common interface for optimizers: consume accumulated gradients and update
/// parameter values in place. Implementations must leave gradients untouched
/// (callers decide when to [`ParamStore::zero_grads`]).
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// `store`.
    fn step(&mut self, store: &mut ParamStore);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0.0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() < ids.len() {
            for id in &ids[self.velocity.len()..] {
                let v = store.value(*id);
                self.velocity.push(Matrix::zeros(v.rows(), v.cols()));
            }
        }
        for (i, id) in ids.into_iter().enumerate() {
            let g = store.grad(id).clone();
            let vel = &mut self.velocity[i];
            vel.scale_in_place(self.momentum);
            vel.axpy(1.0, &g);
            let delta = vel.clone();
            store.value_mut(id).axpy(-self.lr, &delta);
        }
    }
}

/// Configuration for [`Adam`]. Defaults follow Kingma & Ba and the paper's
/// training setup (Algorithm 2 optimizes with Adam).
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate (paper: 5e-3 for model weights).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled L2 weight decay (0.0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 5e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adaptive moment estimation (Adam), the optimizer Algorithm 2 of the paper
/// prescribes.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    step: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

/// A serializable snapshot of Adam's mutable state (step counter and both
/// moment estimates), used by resumable checkpoints so a restarted run
/// continues bit-exactly instead of re-warming the moments from zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    /// Number of update steps applied.
    pub step: u64,
    /// First-moment estimates, in parameter registration order.
    pub m: Vec<Matrix>,
    /// Second-moment estimates, in parameter registration order.
    pub v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Creates Adam with the default configuration and a custom learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the learning rate (for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Snapshots the mutable optimizer state for checkpointing.
    pub fn state(&self) -> AdamState {
        AdamState {
            step: self.step,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a snapshot captured by [`Adam::state`].
    ///
    /// # Panics
    /// Panics if the moment vectors have mismatched lengths.
    pub fn set_state(&mut self, state: AdamState) {
        assert_eq!(state.m.len(), state.v.len(), "Adam state m/v length mismatch");
        self.step = state.step;
        self.m = state.m;
        self.v = state.v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.m.len() < ids.len() {
            for id in &ids[self.m.len()..] {
                let v = store.value(*id);
                self.m.push(Matrix::zeros(v.rows(), v.cols()));
                self.v.push(Matrix::zeros(v.rows(), v.cols()));
            }
        }
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for (i, id) in ids.into_iter().enumerate() {
            let g = store.grad(id).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mi = self.cfg.beta1 * *mi + (1.0 - self.cfg.beta1) * gi;
                *vi = self.cfg.beta2 * *vi + (1.0 - self.cfg.beta2) * gi * gi;
            }
            let lr = self.cfg.lr;
            let wd = self.cfg.weight_decay;
            let value = store.value_mut(id);
            for ((w, &mi), &vi) in value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *w -= lr * (mhat / (vhat.sqrt() + self.cfg.eps) + wd * *w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimizes f(w) = (w - 3)² and checks convergence to 3.
    fn optimize(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        for _ in 0..iters {
            store.zero_grads();
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let loss = t.squared_error(wv, 3.0);
            t.backward(loss);
            t.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        store.value(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = optimize(&mut Sgd::new(0.1, 0.0), 200);
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let w = optimize(&mut Sgd::new(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "sgd+momentum ended at {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = optimize(&mut Adam::with_lr(0.1), 400);
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }

    #[test]
    fn adam_handles_params_registered_after_construction() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 1));
        let mut opt = Adam::with_lr(0.1);
        // One step with only `a`.
        store.accumulate_grad(a, &Matrix::full(1, 1, 1.0));
        opt.step(&mut store);
        // Register `b` afterwards; the optimizer must grow its state.
        let b = store.register("b", Matrix::zeros(1, 1));
        store.zero_grads();
        store.accumulate_grad(b, &Matrix::full(1, 1, 1.0));
        opt.step(&mut store);
        assert!(store.value(b)[(0, 0)] < 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(AdamConfig {
            lr: 0.01,
            weight_decay: 1.0,
            ..AdamConfig::default()
        });
        // Zero gradient: only decay acts.
        opt.step(&mut store);
        assert!(store.value(w)[(0, 0)] < 1.0);
    }
}
