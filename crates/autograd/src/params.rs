//! Persistent parameter storage shared across tapes.

use cascn_tensor::Matrix;

/// Opaque handle to a parameter registered in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// One example's parameter gradients, extracted from a tape by
/// [`crate::Tape::param_grads`] as `(parameter, gradient)` pairs in
/// *binding order*.
///
/// This is the unit of work that crosses thread boundaries in data-parallel
/// training: worker threads run forward/backward on thread-local tapes and
/// hand back a `ParamGrads`; the reducer then calls
/// [`ParamStore::merge_grads`] in a fixed example order. Because merging
/// replays the exact same `accumulate_grad` calls the serial loop would have
/// made — same per-binding matrices, same order — the reduced gradient is
/// bit-identical to serial accumulation for any worker count.
#[derive(Debug, Clone, Default)]
pub struct ParamGrads {
    pub(crate) entries: Vec<(ParamId, Matrix)>,
}

impl ParamGrads {
    /// Number of `(parameter, gradient)` entries (bindings, not parameters —
    /// a parameter bound `t` times on the tape contributes `t` entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no gradients were extracted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Owns model parameters and their accumulated gradients.
///
/// A `ParamStore` outlives the per-example [`crate::Tape`]s. Gradients
/// accumulate across examples (mini-batch accumulation) until an optimizer
/// consumes them via [`ParamStore::zero_grads`].
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value; the name is used in
    /// diagnostics and serialization.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter's value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Adds `g` into the accumulated gradient of `id`.
    ///
    /// # Panics
    /// Panics if the gradient shape does not match the parameter shape.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        assert_eq!(
            self.values[id.0].shape(),
            g.shape(),
            "gradient shape mismatch for parameter `{}`",
            self.names[id.0]
        );
        self.grads[id.0].axpy(1.0, g);
    }

    /// Resets all accumulated gradients to zero. Writes literal zeros
    /// rather than scaling by 0.0, which would keep NaN/Inf entries alive
    /// (NaN × 0 = NaN) and make a single poisoned batch permanent.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.as_mut_slice().fill(0.0);
        }
    }

    /// Merges one example's extracted gradients ([`ParamGrads`]) into the
    /// accumulated gradients, replaying `accumulate_grad` per binding in
    /// binding order.
    ///
    /// Calling this once per example, in example-index order, produces
    /// gradient sums bit-identical to the serial loop that calls
    /// `Tape::accumulate_param_grads` directly — the determinism contract of
    /// the parallel training engine (see `docs/performance.md`).
    ///
    /// # Panics
    /// Panics if an entry's shape does not match its parameter's shape.
    pub fn merge_grads(&mut self, grads: &ParamGrads) {
        for (id, g) in &grads.entries {
            self.accumulate_grad(*id, g);
        }
    }

    /// Scales all accumulated gradients (e.g. 1/batch for mean-reduction).
    pub fn scale_grads(&mut self, s: f32) {
        for g in &mut self.grads {
            g.scale_in_place(s);
        }
    }

    /// Global L2 norm over all gradients, used for clipping.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients so their global L2 norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.scale_grads(s);
        }
        norm
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// True if any parameter or gradient contains NaN/inf.
    pub fn any_non_finite(&self) -> bool {
        self.values.iter().any(|v| !v.all_finite()) || self.grads.iter().any(|g| !g.all_finite())
    }

    /// True if any parameter *or* gradient contains NaN/inf — the anomaly
    /// guard's per-batch health check.
    pub fn has_non_finite(&self) -> bool {
        self.any_non_finite()
    }

    /// True if any accumulated gradient contains NaN/inf (checked before an
    /// optimizer step so a poisoned batch can be discarded).
    pub fn grads_non_finite(&self) -> bool {
        self.grads.iter().any(|g| !g.all_finite())
    }

    /// True if any parameter value contains NaN/inf (checked after an
    /// optimizer step to catch update overflow).
    pub fn values_non_finite(&self) -> bool {
        self.values.iter().any(|v| !v.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.register("a", Matrix::full(2, 2, 1.0));
        let b = s.register("b", Matrix::zeros(1, 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 7);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.value(b).shape(), (1, 3));
        assert_eq!(s.grad(a).sum(), 0.0);
    }

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut s = ParamStore::new();
        let a = s.register("a", Matrix::zeros(1, 2));
        s.accumulate_grad(a, &Matrix::row_vector(&[1.0, 2.0]));
        s.accumulate_grad(a, &Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(s.grad(a).as_slice(), &[2.0, 4.0]);
        s.zero_grads();
        assert_eq!(s.grad(a).sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn accumulate_rejects_wrong_shape() {
        let mut s = ParamStore::new();
        let a = s.register("a", Matrix::zeros(1, 2));
        s.accumulate_grad(a, &Matrix::zeros(2, 1));
    }

    #[test]
    fn clip_reduces_norm() {
        let mut s = ParamStore::new();
        let a = s.register("a", Matrix::zeros(1, 2));
        s.accumulate_grad(a, &Matrix::row_vector(&[3.0, 4.0]));
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_grads_clears_nan() {
        let mut s = ParamStore::new();
        let a = s.register("a", Matrix::zeros(1, 2));
        s.accumulate_grad(a, &Matrix::row_vector(&[f32::NAN, f32::INFINITY]));
        assert!(s.grads_non_finite());
        s.zero_grads();
        assert!(!s.grads_non_finite(), "zeroing must clear poisoned grads");
        assert_eq!(s.grad(a).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn merge_grads_replays_accumulation_order() {
        let mut direct = ParamStore::new();
        let a = direct.register("a", Matrix::zeros(1, 2));
        let b = direct.register("b", Matrix::zeros(1, 1));
        let mut merged = direct.clone();
        // Two "examples", the first binding `a` twice (as an unrolled RNN
        // step would).
        let ex1 = ParamGrads {
            entries: vec![
                (a, Matrix::row_vector(&[0.1, 0.2])),
                (a, Matrix::row_vector(&[0.3, 0.4])),
                (b, Matrix::from_vec(1, 1, vec![1.0])),
            ],
        };
        let ex2 = ParamGrads {
            entries: vec![(a, Matrix::row_vector(&[-0.5, 0.25]))],
        };
        for ex in [&ex1, &ex2] {
            for (id, g) in &ex.entries {
                direct.accumulate_grad(*id, g);
            }
        }
        merged.merge_grads(&ex1);
        merged.merge_grads(&ex2);
        for id in direct.ids() {
            assert_eq!(direct.grad(id).as_slice(), merged.grad(id).as_slice());
        }
        assert_eq!(ex1.len(), 3);
        assert!(!ex1.is_empty());
    }

    #[test]
    fn non_finite_detection() {
        let mut s = ParamStore::new();
        let a = s.register("a", Matrix::zeros(1, 1));
        assert!(!s.any_non_finite());
        s.value_mut(a)[(0, 0)] = f32::INFINITY;
        assert!(s.any_non_finite());
    }
}
