//! The reverse-mode differentiation tape.

use std::sync::Arc;

use cascn_tensor::{Matrix, SparseOp};

use crate::params::{ParamId, ParamStore};

/// Handle to a value recorded on a [`Tape`].
///
/// `Var`s are only meaningful for the tape that created them; using one with
/// another tape is a logic error (caught by shape asserts in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// One recorded operation. Inputs are indices of earlier nodes, so the tape
/// is a DAG in topological order by construction.
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    AddBias(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Scale(Var, f32),
    /// Broadcast-multiplication of a `1x1` scalar variable with a matrix.
    ScalarMul(Var, Var),
    SumAll(Var),
    SumRows(Var),
    MeanRows(Var),
    Sqr(Var),
    Gather(Var, Vec<usize>),
    ConcatRows(Vec<Var>),
    ConcatCols(Var, Var),
    SoftmaxCol(Var),
    LogSoftmaxRow(Var),
    SliceRows(Var, usize),
    PickEntry(Var, usize, usize),
    /// Application of a fixed (non-differentiable) sparse operator to a
    /// feature block: `Y = M·X`. The `Arc` keeps the tape cheap to record —
    /// the Chebyshev recurrence applies the same operator K times per gate.
    SparseApply(Arc<SparseOp>, Var),
}

struct Node {
    op: Op,
    value: Matrix,
    requires_grad: bool,
}

/// A define-by-run computation graph.
///
/// All building methods panic on shape violations — the same contract as the
/// underlying [`Matrix`] operations — because a malformed graph is a bug in
/// the model code, not a runtime condition.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    bindings: Vec<(ParamId, Var)>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Matrix, requires_grad: bool) -> Var {
        let v = Var(self.nodes.len());
        self.nodes.push(Node {
            op,
            value,
            requires_grad,
        });
        v
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The forward value of a `1x1` variable as a scalar.
    ///
    /// # Panics
    /// Panics if `v` is not `1x1`.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-1x1 value");
        m[(0, 0)]
    }

    // ---- graph construction -------------------------------------------------

    /// Records a differentiable leaf (used by tests; models should prefer
    /// [`Tape::param`]).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value, true)
    }

    /// Records a non-differentiable input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value, false)
    }

    /// Binds a [`ParamStore`] parameter into this graph. Its gradient will be
    /// routed back by [`Tape::accumulate_param_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(Op::Leaf, store.value(id).clone(), true);
        self.bindings.push((id, v));
        v
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(Op::MatMul(a, b), value, rg)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(Op::Add(a, b), value, rg)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(Op::Sub(a, b), value, rg)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(Op::Hadamard(a, b), value, rg)
    }

    /// Adds a `1 x c` bias row to every row of `a` (`m x c`).
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(bias));
        let rg = self.requires(a) || self.requires(bias);
        self.push(Op::AddBias(a, bias), value, rg)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let rg = self.requires(a);
        self.push(Op::Sigmoid(a), value, rg)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let rg = self.requires(a);
        self.push(Op::Tanh(a), value, rg)
    }

    /// Elementwise rectifier.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        let rg = self.requires(a);
        self.push(Op::Relu(a), value, rg)
    }

    /// Multiplies by a compile-time-known constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        let rg = self.requires(a);
        self.push(Op::Scale(a, s), value, rg)
    }

    /// Broadcast-multiplies matrix `a` by a learned `1x1` scalar `s`.
    ///
    /// # Panics
    /// Panics if `s` is not `1x1`.
    pub fn scalar_mul(&mut self, s: Var, a: Var) -> Var {
        assert_eq!(
            self.value(s).shape(),
            (1, 1),
            "scalar_mul: scalar operand must be 1x1"
        );
        let sv = self.value(s)[(0, 0)];
        let value = self.value(a).scale(sv);
        let rg = self.requires(a) || self.requires(s);
        self.push(Op::ScalarMul(s, a), value, rg)
    }

    /// Sums all entries into a `1x1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        let rg = self.requires(a);
        self.push(Op::SumAll(a), value, rg)
    }

    /// Column-wise sum: `m x n` → `1 x n`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).sum_rows();
        let rg = self.requires(a);
        self.push(Op::SumRows(a), value, rg)
    }

    /// Column-wise mean: `m x n` → `1 x n`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let m = self.value(a).rows().max(1) as f32;
        let value = self.value(a).sum_rows().scale(1.0 / m);
        let rg = self.requires(a);
        self.push(Op::MeanRows(a), value, rg)
    }

    /// Elementwise square.
    pub fn sqr(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x * x);
        let rg = self.requires(a);
        self.push(Op::Sqr(a), value, rg)
    }

    /// Embedding lookup: stacks `table[rows[i], :]` into an `rows.len() x d`
    /// matrix. Gradients scatter-add back into the table.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&mut self, table: Var, rows: Vec<usize>) -> Var {
        let t = self.value(table);
        let d = t.cols();
        let mut value = Matrix::zeros(rows.len(), d);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < t.rows(), "gather: row {r} out of bounds ({} rows)", t.rows());
            value.row_mut(i).copy_from_slice(t.row(r));
        }
        let rg = self.requires(table);
        self.push(Op::Gather(table, rows), value, rg)
    }

    /// Vertically stacks variables that share a column count.
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: need at least one part");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut value = Matrix::zeros(total, cols);
        let mut at = 0;
        let mut rg = false;
        for &p in parts {
            let v = self.value(p);
            assert_eq!(v.cols(), cols, "concat_rows: column mismatch");
            for r in 0..v.rows() {
                value.row_mut(at + r).copy_from_slice(v.row(r));
            }
            at += v.rows();
            rg |= self.requires(p);
        }
        self.push(Op::ConcatRows(parts.to_vec()), value, rg)
    }

    /// Horizontally concatenates two variables with equal row counts.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.rows(), vb.rows(), "concat_cols: row mismatch");
        let mut value = Matrix::zeros(va.rows(), va.cols() + vb.cols());
        for r in 0..va.rows() {
            let row = value.row_mut(r);
            row[..va.cols()].copy_from_slice(va.row(r));
            row[va.cols()..].copy_from_slice(vb.row(r));
        }
        let rg = self.requires(a) || self.requires(b);
        self.push(Op::ConcatCols(a, b), value, rg)
    }

    /// Softmax over an `n x 1` column vector.
    ///
    /// # Panics
    /// Panics if `a` is not a column vector.
    pub fn softmax_col(&mut self, a: Var) -> Var {
        let v = self.value(a);
        assert_eq!(v.cols(), 1, "softmax_col: expected n x 1 input");
        let max = v.max();
        let exps: Vec<f32> = v.as_slice().iter().map(|&x| (x - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let value = Matrix::from_vec(v.rows(), 1, exps.into_iter().map(|e| e / z).collect());
        let rg = self.requires(a);
        self.push(Op::SoftmaxCol(a), value, rg)
    }

    /// Log-softmax over each row of an `m x n` matrix, computed with the
    /// usual max-subtracted log-sum-exp so a large additive mask (the
    /// `-1e9` infected-user logits of the next-user head) stays finite:
    /// masked entries come out ≈ `-1e9` and their `exp` underflows to an
    /// exact `0.0` probability.
    pub fn log_softmax_row(&mut self, a: Var) -> Var {
        let v = self.value(a);
        assert!(v.cols() > 0, "log_softmax_row: empty rows");
        let mut value = Matrix::zeros(v.rows(), v.cols());
        for r in 0..v.rows() {
            let row = v.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let z: f32 = row.iter().map(|&x| (x - max).exp()).sum();
            let lse = max + z.ln();
            for (out, &x) in value.row_mut(r).iter_mut().zip(row) {
                *out = x - lse;
            }
        }
        let rg = self.requires(a);
        self.push(Op::LogSoftmaxRow(a), value, rg)
    }

    /// Extracts `len` consecutive rows starting at `start`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.value(a);
        assert!(
            start + len <= v.rows(),
            "slice_rows: {start}+{len} exceeds {} rows",
            v.rows()
        );
        let mut value = Matrix::zeros(len, v.cols());
        for r in 0..len {
            value.row_mut(r).copy_from_slice(v.row(start + r));
        }
        let rg = self.requires(a);
        self.push(Op::SliceRows(a, start), value, rg)
    }

    /// Extracts the single entry at `(r, c)` as a `1x1` variable; the
    /// backward pass scatters the incoming gradient back into that entry.
    pub fn pick(&mut self, a: Var, r: usize, c: usize) -> Var {
        let v = self.value(a);
        assert!(
            r < v.rows() && c < v.cols(),
            "pick: ({r}, {c}) out of bounds for {:?}",
            v.shape()
        );
        let value = Matrix::from_vec(1, 1, vec![v[(r, c)]]);
        let rg = self.requires(a);
        self.push(Op::PickEntry(a, r, c), value, rg)
    }

    /// Applies a fixed sparse operator to `x`: `y = op·x`.
    ///
    /// The operator itself is a constant of the graph (the scaled cascade
    /// Laplacian is data, not a parameter); gradients flow through `x` only,
    /// with `∂x = opᵀ·∂y` via [`SparseOp::apply_transpose`].
    ///
    /// # Panics
    /// Panics if `x.rows() != op.dim()`.
    pub fn sparse_apply(&mut self, op: Arc<SparseOp>, x: Var) -> Var {
        let value = op.apply(self.value(x));
        let rg = self.requires(x);
        self.push(Op::SparseApply(op, x), value, rg)
    }

    // ---- composite helpers --------------------------------------------------

    /// `x · w + bias` — the ubiquitous affine layer.
    pub fn linear(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let xw = self.matmul(x, w);
        self.add_bias(xw, bias)
    }

    /// Squared error between a `1x1` prediction and a scalar target:
    /// `(pred - target)²` as a `1x1` variable.
    pub fn squared_error(&mut self, pred: Var, target: f32) -> Var {
        let t = self.constant(Matrix::from_vec(1, 1, vec![target]));
        let d = self.sub(pred, t);
        self.sqr(d)
    }

    // ---- backward -----------------------------------------------------------

    /// Runs reverse-mode differentiation from the `1x1` variable `loss`.
    ///
    /// Gradients for every `requires_grad` node are retained and can be read
    /// with [`Tape::grad`] or routed to parameters with
    /// [`Tape::accumulate_param_grads`].
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1x1 scalar"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            // Re-insert: callers may want to inspect intermediate grads.
            let op = self.nodes[i].op.clone();
            self.apply_backward(&op, i, &g);
            self.grads[i] = Some(g);
        }
    }

    fn add_grad(&mut self, v: Var, g: Matrix) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => existing.axpy(1.0, &g),
            slot @ None => *slot = Some(g),
        }
    }

    fn apply_backward(&mut self, op: &Op, node: usize, g: &Matrix) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.requires(*a) {
                    let da = g.matmul_a_bt(self.value(*b));
                    self.add_grad(*a, da);
                }
                if self.requires(*b) {
                    let db = self.value(*a).matmul_at_b(g);
                    self.add_grad(*b, db);
                }
            }
            Op::Add(a, b) => {
                self.add_grad(*a, g.clone());
                self.add_grad(*b, g.clone());
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, g.clone());
                self.add_grad(*b, g.scale(-1.0));
            }
            Op::Hadamard(a, b) => {
                if self.requires(*a) {
                    let da = g.hadamard(self.value(*b));
                    self.add_grad(*a, da);
                }
                if self.requires(*b) {
                    let db = g.hadamard(self.value(*a));
                    self.add_grad(*b, db);
                }
            }
            Op::AddBias(a, bias) => {
                self.add_grad(*a, g.clone());
                if self.requires(*bias) {
                    self.add_grad(*bias, g.sum_rows());
                }
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[node].value;
                let da = Matrix::from_vec(
                    y.rows(),
                    y.cols(),
                    y.as_slice()
                        .iter()
                        .zip(g.as_slice())
                        .map(|(&s, &gv)| gv * s * (1.0 - s))
                        .collect(),
                );
                self.add_grad(*a, da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[node].value;
                let da = Matrix::from_vec(
                    y.rows(),
                    y.cols(),
                    y.as_slice()
                        .iter()
                        .zip(g.as_slice())
                        .map(|(&t, &gv)| gv * (1.0 - t * t))
                        .collect(),
                );
                self.add_grad(*a, da);
            }
            Op::Relu(a) => {
                let x = self.value(*a);
                let da = Matrix::from_vec(
                    x.rows(),
                    x.cols(),
                    x.as_slice()
                        .iter()
                        .zip(g.as_slice())
                        .map(|(&xv, &gv)| if xv > 0.0 { gv } else { 0.0 })
                        .collect(),
                );
                self.add_grad(*a, da);
            }
            Op::Scale(a, s) => {
                self.add_grad(*a, g.scale(*s));
            }
            Op::ScalarMul(s, a) => {
                let sv = self.value(*s)[(0, 0)];
                if self.requires(*a) {
                    self.add_grad(*a, g.scale(sv));
                }
                if self.requires(*s) {
                    let ds = g.hadamard(self.value(*a)).sum();
                    self.add_grad(*s, Matrix::from_vec(1, 1, vec![ds]));
                }
            }
            Op::SumAll(a) => {
                let v = self.value(*a);
                let gv = g[(0, 0)];
                self.add_grad(*a, Matrix::full(v.rows(), v.cols(), gv));
            }
            Op::SumRows(a) => {
                let v = self.value(*a);
                let mut da = Matrix::zeros(v.rows(), v.cols());
                for r in 0..v.rows() {
                    da.row_mut(r).copy_from_slice(g.row(0));
                }
                self.add_grad(*a, da);
            }
            Op::MeanRows(a) => {
                let v = self.value(*a);
                let m = v.rows().max(1) as f32;
                let mut da = Matrix::zeros(v.rows(), v.cols());
                for r in 0..v.rows() {
                    for (d, &gv) in da.row_mut(r).iter_mut().zip(g.row(0)) {
                        *d = gv / m;
                    }
                }
                self.add_grad(*a, da);
            }
            Op::Sqr(a) => {
                let x = self.value(*a);
                let da = Matrix::from_vec(
                    x.rows(),
                    x.cols(),
                    x.as_slice()
                        .iter()
                        .zip(g.as_slice())
                        .map(|(&xv, &gv)| 2.0 * xv * gv)
                        .collect(),
                );
                self.add_grad(*a, da);
            }
            Op::Gather(table, rows) => {
                if self.requires(*table) {
                    let t = self.value(*table);
                    let mut dt = Matrix::zeros(t.rows(), t.cols());
                    for (i, &r) in rows.iter().enumerate() {
                        for (d, &gv) in dt.row_mut(r).iter_mut().zip(g.row(i)) {
                            *d += gv;
                        }
                    }
                    self.add_grad(*table, dt);
                }
            }
            Op::ConcatRows(parts) => {
                let mut at = 0;
                for &p in parts {
                    let rows = self.value(p).rows();
                    if self.requires(p) {
                        let mut dp = Matrix::zeros(rows, g.cols());
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(g.row(at + r));
                        }
                        self.add_grad(p, dp);
                    }
                    at += rows;
                }
            }
            Op::ConcatCols(a, b) => {
                let ca = self.value(*a).cols();
                if self.requires(*a) {
                    let rows = self.value(*a).rows();
                    let mut da = Matrix::zeros(rows, ca);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                    }
                    self.add_grad(*a, da);
                }
                if self.requires(*b) {
                    let rows = self.value(*b).rows();
                    let cb = self.value(*b).cols();
                    let mut db = Matrix::zeros(rows, cb);
                    for r in 0..rows {
                        db.row_mut(r).copy_from_slice(&g.row(r)[ca..ca + cb]);
                    }
                    self.add_grad(*b, db);
                }
            }
            Op::SoftmaxCol(a) => {
                let y = &self.nodes[node].value;
                // dL/dx = y ⊙ (g - (gᵀ y))
                let gy: f32 = g
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(&gv, &yv)| gv * yv)
                    .sum();
                let da = Matrix::from_vec(
                    y.rows(),
                    1,
                    y.as_slice()
                        .iter()
                        .zip(g.as_slice())
                        .map(|(&yv, &gv)| yv * (gv - gy))
                        .collect(),
                );
                self.add_grad(*a, da);
            }
            Op::LogSoftmaxRow(a) => {
                // Per row: dx = g − softmax(x) · Σ g, with softmax(x)
                // recovered as exp of the stored log-probabilities.
                let y = &self.nodes[node].value;
                let mut da = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let gs: f32 = g.row(r).iter().sum();
                    for ((d, &lp), &gv) in
                        da.row_mut(r).iter_mut().zip(y.row(r)).zip(g.row(r))
                    {
                        *d = gv - lp.exp() * gs;
                    }
                }
                self.add_grad(*a, da);
            }
            Op::PickEntry(a, r, c) => {
                if self.requires(*a) {
                    let v = self.value(*a);
                    let mut da = Matrix::zeros(v.rows(), v.cols());
                    da[(*r, *c)] = g[(0, 0)];
                    self.add_grad(*a, da);
                }
            }
            Op::SparseApply(op, x) => {
                if self.requires(*x) {
                    let dx = op.apply_transpose(g);
                    self.add_grad(*x, dx);
                }
            }
            Op::SliceRows(a, start) => {
                if self.requires(*a) {
                    let v = self.value(*a);
                    let mut da = Matrix::zeros(v.rows(), v.cols());
                    for r in 0..g.rows() {
                        da.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    self.add_grad(*a, da);
                }
            }
        }
    }

    /// The gradient of `v` computed by the last [`Tape::backward`] call, if
    /// any reached it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Adds the gradients of all [`Tape::param`]-bound variables into the
    /// store. Call after [`Tape::backward`].
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for &(id, var) in &self.bindings {
            if let Some(g) = self.grad(var) {
                store.accumulate_grad(id, g);
            }
        }
    }

    /// Extracts the gradients of all [`Tape::param`]-bound variables in
    /// binding order, without touching a store. Call after
    /// [`Tape::backward`].
    ///
    /// `store.merge_grads(&tape.param_grads())` is bit-identical to
    /// `tape.accumulate_param_grads(&mut store)` — the extracted form exists
    /// so worker threads can run backward on thread-local tapes and ship the
    /// result back for a deterministic, example-ordered reduction.
    pub fn param_grads(&self) -> crate::ParamGrads {
        let mut entries = Vec::with_capacity(self.bindings.len());
        for &(id, var) in &self.bindings {
            if let Some(g) = self.grad(var) {
                entries.push((id, g.clone()));
            }
        }
        crate::ParamGrads { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::assert_matrix_eq;

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        t.backward(loss);
        let da = t.grad(a).unwrap();
        let db = t.grad(b).unwrap();
        assert_matrix_eq(da, &Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]]), 1e-5);
        assert_matrix_eq(db, &Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]]), 1e-5);
    }

    #[test]
    fn grad_skips_constants() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::eye(2));
        let c = t.constant(Matrix::eye(2));
        let y = t.matmul(c, a);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!(t.grad(c).is_none());
        assert!(t.grad(a).is_some());
    }

    #[test]
    fn fan_out_gradients_accumulate() {
        // loss = sum(x + x) → dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(2, 2, 3.0));
        let y = t.add(x, x);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_matrix_eq(t.grad(x).unwrap(), &Matrix::full(2, 2, 2.0), 1e-6);
    }

    #[test]
    fn sigmoid_gradient_at_zero_is_quarter() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(1, 1));
        let s = t.sigmoid(x);
        t.backward(s);
        assert!((t.grad(x).unwrap()[(0, 0)] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn scalar_mul_routes_grads_to_both() {
        // loss = sum(s * A), A = [[1,2],[3,4]]; ds = sum(A) = 10, dA = s = 2
        let mut t = Tape::new();
        let s = t.leaf(Matrix::full(1, 1, 2.0));
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = t.scalar_mul(s, a);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(s).unwrap()[(0, 0)], 10.0);
        assert_matrix_eq(t.grad(a).unwrap(), &Matrix::full(2, 2, 2.0), 1e-6);
    }

    #[test]
    fn gather_scatter_adds_duplicate_rows() {
        let mut t = Tape::new();
        let table = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let picked = t.gather(table, vec![1, 1, 2]);
        let loss = t.sum_all(picked);
        t.backward(loss);
        let g = t.grad(table).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 2.0, 1.0]);
    }

    #[test]
    fn softmax_col_sums_to_one_and_grads_sum_to_zero() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::col_vector(&[1.0, 2.0, 3.0]));
        let s = t.softmax_col(x);
        assert!((t.value(s).sum() - 1.0).abs() < 1e-6);
        // loss = first component of softmax
        let first = t.slice_rows(s, 0, 1);
        t.backward(first);
        let g = t.grad(x).unwrap();
        assert!(g.sum().abs() < 1e-6, "softmax grads must sum to ~0, got {}", g.sum());
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(2, 1, 1.0));
        let b = t.leaf(Matrix::full(2, 2, 1.0));
        let c = t.concat_cols(a, b);
        assert_eq!(t.value(c).shape(), (2, 3));
        let loss = t.sum_all(c);
        t.backward(loss);
        assert_eq!(t.grad(a).unwrap().shape(), (2, 1));
        assert_eq!(t.grad(b).unwrap().shape(), (2, 2));
    }

    #[test]
    fn concat_rows_stacks_and_splits() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let b = t.leaf(Matrix::row_vector(&[3.0, 4.0]));
        let c = t.concat_rows(&[a, b]);
        assert_eq!(t.value(c).shape(), (2, 2));
        let sliced = t.slice_rows(c, 1, 1);
        let loss = t.sum_all(sliced);
        t.backward(loss);
        assert!(t.grad(a).is_none() || t.grad(a).unwrap().sum() == 0.0);
        assert_eq!(t.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn squared_error_gradient() {
        // loss = (x - 3)², x = 5 → dloss/dx = 2(5-3) = 4
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 1, 5.0));
        let loss = t.squared_error(x, 3.0);
        assert_eq!(t.scalar(loss), 4.0);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], 4.0);
    }

    #[test]
    fn param_binding_accumulates_into_store() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 2.0));
        for _ in 0..2 {
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let loss = t.sqr(wv);
            t.backward(loss);
            t.accumulate_param_grads(&mut store);
        }
        // d(w²)/dw = 2w = 4, accumulated twice = 8
        assert_eq!(store.grad(w)[(0, 0)], 8.0);
    }

    #[test]
    fn sparse_apply_matches_dense_matmul_forward_and_backward() {
        use cascn_tensor::Csr;
        let lap = Matrix::from_rows(&[&[1.0, -0.5, 0.0], &[0.0, 1.0, -0.5], &[-1.0, 0.0, 1.0]]);
        let op = Arc::new(SparseOp::from_csr(Csr::from_dense(&lap)));
        let x0 = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.5 - 1.0);

        let mut ts = Tape::new();
        let xs = ts.leaf(x0.clone());
        let ys = ts.sparse_apply(op, xs);
        let ls = ts.sum_all(ys);
        ts.backward(ls);

        let mut td = Tape::new();
        let lapv = td.constant(lap);
        let xd = td.leaf(x0);
        let yd = td.matmul(lapv, xd);
        let ld = td.sum_all(yd);
        td.backward(ld);

        assert_eq!(ts.value(ys).as_slice(), td.value(yd).as_slice(), "forward diverged");
        assert_matrix_eq(ts.grad(xs).unwrap(), td.grad(xd).unwrap(), 1e-6);
    }

    #[test]
    fn log_softmax_row_matches_softmax_and_masks_underflow_to_zero() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0, -1e9, 3.0]]));
        let lp = t.log_softmax_row(x);
        let probs: Vec<f32> = t.value(lp).as_slice().iter().map(|&l| l.exp()).collect();
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(probs[2], 0.0, "masked logit must underflow to exact zero");
        assert!(probs[3] > probs[1] && probs[1] > probs[0]);
    }

    #[test]
    fn log_softmax_row_backward_is_softmax_minus_onehot() {
        // loss = −log p[target] → d logits = softmax − onehot(target).
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.5, -0.3, 1.2]]));
        let lp = t.log_softmax_row(x);
        let picked = t.pick(lp, 0, 2);
        let loss = t.scale(picked, -1.0);
        t.backward(loss);
        let probs: Vec<f32> = t.value(lp).as_slice().iter().map(|&l| l.exp()).collect();
        let g = t.grad(x).unwrap();
        for (i, (&gv, &p)) in g.as_slice().iter().zip(&probs).enumerate() {
            let expect = if i == 2 { p - 1.0 } else { p };
            assert!((gv - expect).abs() < 1e-6, "entry {i}: {gv} vs {expect}");
        }
    }

    #[test]
    fn log_softmax_row_rows_are_independent() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[5.0, 5.0]]));
        let lp = t.log_softmax_row(x);
        let picked = t.pick(lp, 1, 0);
        t.backward(picked);
        let g = t.grad(x).unwrap();
        assert_eq!(&g.row(0), &[0.0, 0.0], "row 0 gets no gradient from row 1's loss");
        assert!(g.row(1).iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn pick_extracts_and_scatters() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let p = t.pick(x, 1, 0);
        assert_eq!(t.scalar(p), 3.0);
        let loss = t.scale(p, 2.0);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1")]
    fn backward_rejects_non_scalar_loss() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }
}
