//! Tape-based reverse-mode automatic differentiation over
//! [`cascn_tensor::Matrix`], plus the optimizers used to train every model in
//! this reproduction.
//!
//! # Design
//!
//! A [`Tape`] records a fresh computation graph per training example (the
//! "define-by-run" style of PyTorch): model code pushes operations, receives
//! lightweight [`Var`] handles, and finally calls [`Tape::backward`] on a
//! scalar loss. Parameters live *outside* the tape in a [`ParamStore`] so
//! they persist across examples; [`Tape::param`] binds a parameter into the
//! current graph and [`Tape::accumulate_param_grads`] routes gradients back.
//!
//! Gradient correctness is enforced by finite-difference property tests (see
//! [`check_gradients`] and `tests/prop_gradcheck.rs`).
//!
//! # Example
//!
//! ```
//! use cascn_autograd::{ParamStore, Tape};
//! use cascn_tensor::Matrix;
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Matrix::from_rows(&[&[0.5, -0.5]]));
//!
//! let mut tape = Tape::new();
//! let wv = tape.param(&store, w);
//! let x = tape.constant(Matrix::from_rows(&[&[2.0], &[1.0]]));
//! let y = tape.matmul(wv, x); // 1x1 result: 0.5
//! let loss = tape.sqr(y);
//! tape.backward(loss);
//! tape.accumulate_param_grads(&mut store);
//!
//! // d/dw (w·x)² = 2 (w·x) xᵀ = [2, 1]
//! assert_eq!(store.grad(w).as_slice(), &[2.0, 1.0]);
//! ```

mod gradcheck;
mod serialize;
mod optim;
mod params;
mod tape;

pub use gradcheck::{assert_gradients_close, check_gradients, numeric_gradient, GradCheckReport};
pub use optim::{Adam, AdamConfig, AdamState, Optimizer, Sgd};
pub use params::{ParamGrads, ParamId, ParamStore};
pub use serialize::{atomic_write, fnv1a64};
pub use tape::{Tape, Var};
