//! Parameter persistence: a line-based text format for [`ParamStore`]
//! checkpoints, so trained models survive process restarts.
//!
//! ```text
//! # cascn params v1
//! param <name> <rows> <cols>
//! <row of space-separated f32 values>
//! ...
//! ```
//!
//! Values round-trip exactly via the `{:?}` float formatting (shortest
//! representation that re-parses to the same bits).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use cascn_tensor::Matrix;

use crate::params::ParamStore;

impl ParamStore {
    /// Serializes all parameter values (not gradients) to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# cascn params v1\n");
        for id in self.ids() {
            let v = self.value(id);
            let _ = writeln!(out, "param {} {} {}", self.name(id), v.rows(), v.cols());
            for r in 0..v.rows() {
                let row: Vec<String> = v.row(r).iter().map(|x| format!("{x:?}")).collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
        }
        out
    }

    /// Parses a checkpoint produced by [`ParamStore::to_text`].
    ///
    /// Returns a descriptive error string on malformed input.
    pub fn from_text(text: &str) -> Result<ParamStore, String> {
        let mut store = ParamStore::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((lineno, line)) = lines.next() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("param") {
                return Err(format!("line {}: expected `param` header", lineno + 1));
            }
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: missing name", lineno + 1))?
                .to_string();
            let rows: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad row count", lineno + 1))?;
            let cols: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad col count", lineno + 1))?;
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows {
                let (rno, row_line) = lines
                    .next()
                    .ok_or_else(|| format!("param `{name}`: truncated rows"))?;
                for tok in row_line.split_whitespace() {
                    let v: f32 = tok
                        .parse()
                        .map_err(|_| format!("line {}: bad float `{tok}`", rno + 1))?;
                    data.push(v);
                }
            }
            if data.len() != rows * cols {
                return Err(format!(
                    "param `{name}`: expected {} values, got {}",
                    rows * cols,
                    data.len()
                ));
            }
            store.register(name, Matrix::from_vec(rows, cols, data));
        }
        Ok(store)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename), so
    /// a crash mid-write can never leave a truncated checkpoint behind.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        atomic_write(path.as_ref(), self.to_text().as_bytes())
    }

    /// Reads a checkpoint from `path`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<ParamStore> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(io::Error::other)
    }

    /// Copies values from `other` into this store by parameter *name*.
    /// Returns the number of parameters restored, or an error if a name
    /// matches with a different shape (checkpoint for another architecture).
    pub fn restore_from(&mut self, other: &ParamStore) -> Result<usize, String> {
        let mut restored = 0;
        let my_ids: Vec<_> = self.ids().collect();
        for id in my_ids {
            let name = self.name(id).to_string();
            for oid in other.ids() {
                if other.name(oid) == name {
                    if self.value(id).shape() != other.value(oid).shape() {
                        return Err(format!(
                            "checkpoint shape mismatch for `{name}`: {:?} vs {:?}",
                            self.value(id).shape(),
                            other.value(oid).shape()
                        ));
                    }
                    *self.value_mut(id) = other.value(oid).clone();
                    restored += 1;
                    break;
                }
            }
        }
        Ok(restored)
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling temp
/// file first and are moved into place with `rename`, which is atomic on
/// POSIX filesystems. Readers therefore see either the old file or the new
/// one, never a partial write.
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("invalid checkpoint path {}", path.display())))?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };
    std::fs::write(&tmp_path, contents)?;
    match std::fs::rename(&tmp_path, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp_path);
            Err(e)
        }
    }
}

/// FNV-1a 64-bit hash, the integrity checksum of checkpoint format v2.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("w", Matrix::from_rows(&[&[1.5, -2.25e-7], &[0.0, f32::MIN_POSITIVE]]));
        s.register("b", Matrix::row_vector(&[3.0]));
        s
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let s = sample_store();
        let text = s.to_text();
        let back = ParamStore::from_text(&text).expect("parses");
        assert_eq!(back.len(), 2);
        for (a, b) in s.ids().zip(back.ids()) {
            assert_eq!(s.name(a), back.name(b));
            assert_eq!(s.value(a).as_slice(), back.value(b).as_slice(), "bit-exact");
        }
    }

    #[test]
    fn file_roundtrip() {
        let s = sample_store();
        let dir = std::env::temp_dir().join("cascn_params_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.params");
        s.save(&path).unwrap();
        let back = ParamStore::load(&path).unwrap();
        assert_eq!(back.len(), s.len());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_input_is_rejected_with_location() {
        let err = ParamStore::from_text("param w 1 2\n1.0 nope\n").unwrap_err();
        assert!(err.contains("bad float"), "got: {err}");
        let err = ParamStore::from_text("bogus\n").unwrap_err();
        assert!(err.contains("expected `param`"), "got: {err}");
        let err = ParamStore::from_text("param w 2 2\n1 2 3 4\n").unwrap_err();
        assert!(err.contains("truncated") || err.contains("expected"), "got: {err}");
    }

    #[test]
    fn restore_by_name_matches_architecture() {
        let trained = sample_store();
        let mut fresh = ParamStore::new();
        fresh.register("b", Matrix::zeros(1, 1));
        fresh.register("w", Matrix::zeros(2, 2));
        let restored = fresh.restore_from(&trained).expect("shapes match");
        assert_eq!(restored, 2);
        let w = fresh.ids().nth(1).unwrap();
        assert_eq!(fresh.value(w)[(0, 0)], 1.5);
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("cascn_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.params");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        atomic_write(&path, b"world").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"world");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn restore_rejects_wrong_shapes() {
        let trained = sample_store();
        let mut fresh = ParamStore::new();
        fresh.register("w", Matrix::zeros(3, 3));
        let err = fresh.restore_from(&trained).unwrap_err();
        assert!(err.contains("shape mismatch"), "got: {err}");
    }
}
