//! Property-based finite-difference verification of every backward rule.
//!
//! For each op (and for a deep composite resembling a recurrent cell) we draw
//! random small matrices, run forward+backward, and compare analytic
//! gradients to central differences. Tolerances reflect `f32` precision.

use cascn_autograd::{assert_gradients_close, ParamStore, Tape, Var};
use cascn_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a rows x cols matrix with entries in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Runs forward+backward with `build`, then checks all parameter gradients
/// against finite differences of the same computation.
fn gradcheck_model(
    params: Vec<(&str, Matrix)>,
    build: impl Fn(&mut Tape, &[Var]) -> Var + Copy,
) {
    let mut store = ParamStore::new();
    let ids: Vec<_> = params
        .into_iter()
        .map(|(n, m)| store.register(n, m))
        .collect();

    // Analytic gradients.
    {
        let mut t = Tape::new();
        let vars: Vec<_> = ids.iter().map(|&id| t.param(&store, id)).collect();
        let loss = build(&mut t, &vars);
        t.backward(loss);
        t.accumulate_param_grads(&mut store);
    }

    let ids_clone = ids.clone();
    assert_gradients_close(&mut store, 5e-3, 4e-2, move |s| {
        let mut t = Tape::new();
        let vars: Vec<_> = ids_clone
            .iter()
            .map(|&id| t.constant(s.value(id).clone()))
            .collect();
        let loss = build(&mut t, &vars);
        t.scalar(loss)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_chain(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 3)) {
        gradcheck_model(vec![("a", a), ("b", b), ("c", c)], |t, v| {
            let ab = t.matmul(v[0], v[1]);
            let abc = t.matmul(ab, v[2]);
            let sq = t.sqr(abc);
            t.sum_all(sq)
        });
    }

    #[test]
    fn elementwise_mix(a in matrix(3, 3), b in matrix(3, 3)) {
        gradcheck_model(vec![("a", a), ("b", b)], |t, v| {
            let h = t.hadamard(v[0], v[1]);
            let s = t.sub(h, v[1]);
            let p = t.add(s, v[0]);
            let sq = t.sqr(p);
            t.sum_all(sq)
        });
    }

    #[test]
    fn activations(a in matrix(2, 5)) {
        gradcheck_model(vec![("a", a)], |t, v| {
            let s = t.sigmoid(v[0]);
            let th = t.tanh(s);
            let sc = t.scale(th, 1.5);
            t.sum_all(sc)
        });
    }

    // ReLU is non-differentiable at zero, so probe away from the kink.
    #[test]
    fn relu_away_from_kink(sign in proptest::collection::vec(prop_oneof![Just(-1.0f32), Just(1.0f32)], 6)) {
        let a = Matrix::from_vec(2, 3, sign.iter().map(|s| s * 0.5).collect());
        gradcheck_model(vec![("a", a)], |t, v| {
            let r = t.relu(v[0]);
            let sq = t.sqr(r);
            t.sum_all(sq)
        });
    }

    #[test]
    fn bias_and_reductions(x in matrix(4, 3), b in matrix(1, 3)) {
        gradcheck_model(vec![("x", x), ("b", b)], |t, v| {
            let y = t.add_bias(v[0], v[1]);
            let rows = t.sum_rows(y);
            let sq = t.sqr(rows);
            t.sum_all(sq)
        });
    }

    #[test]
    fn mean_rows_gradient(x in matrix(5, 2)) {
        gradcheck_model(vec![("x", x)], |t, v| {
            let m = t.mean_rows(v[0]);
            let sq = t.sqr(m);
            t.sum_all(sq)
        });
    }

    #[test]
    fn scalar_broadcast(s in -0.9f32..0.9, a in matrix(3, 2)) {
        let sm = Matrix::from_vec(1, 1, vec![s]);
        gradcheck_model(vec![("s", sm), ("a", a)], |t, v| {
            let y = t.scalar_mul(v[0], v[1]);
            let sq = t.sqr(y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn gather_with_repeats(table in matrix(4, 3)) {
        gradcheck_model(vec![("table", table)], |t, v| {
            let picked = t.gather(v[0], vec![0, 2, 2, 3]);
            let sq = t.sqr(picked);
            t.sum_all(sq)
        });
    }

    #[test]
    fn concat_and_slice(a in matrix(2, 3), b in matrix(3, 3)) {
        gradcheck_model(vec![("a", a), ("b", b)], |t, v| {
            let c = t.concat_rows(&[v[0], v[1]]);
            let mid = t.slice_rows(c, 1, 3);
            let sq = t.sqr(mid);
            t.sum_all(sq)
        });
    }

    #[test]
    fn concat_cols_gradcheck(a in matrix(3, 2), b in matrix(3, 4)) {
        gradcheck_model(vec![("a", a), ("b", b)], |t, v| {
            let c = t.concat_cols(v[0], v[1]);
            let th = t.tanh(c);
            let sq = t.sqr(th);
            t.sum_all(sq)
        });
    }

    #[test]
    fn softmax_attention_pattern(scores in matrix(4, 1), values in matrix(4, 3)) {
        gradcheck_model(vec![("scores", scores), ("values", values)], |t, v| {
            let w = t.softmax_col(v[0]);
            // Attention: weighted sum of value rows = wᵀ · V (1 x d)
            let pooled = t.matmul_t_first(w, v[1]);
            let sq = t.sqr(pooled);
            t.sum_all(sq)
        });
    }

    /// A composite mirroring one LSTM-style gate update — the shape of
    /// computation the CasCN cell performs at every timestep.
    #[test]
    fn recurrent_cell_composite(
        w in matrix(3, 2),
        u in matrix(2, 2),
        bias in matrix(1, 2),
        x in matrix(4, 3),
        h in matrix(4, 2),
    ) {
        gradcheck_model(
            vec![("w", w), ("u", u), ("b", bias), ("x", x), ("h", h)],
            |t, v| {
                let xw = t.matmul(v[3], v[0]);
                let hu = t.matmul(v[4], v[1]);
                let pre = t.add(xw, hu);
                let pre = t.add_bias(pre, v[2]);
                let gate = t.sigmoid(pre);
                let cand_pre = t.matmul(v[3], v[0]);
                let cand = t.tanh(cand_pre);
                let out = t.hadamard(gate, cand);
                let pooled = t.sum_rows(out);
                let sq = t.sqr(pooled);
                t.sum_all(sq)
            },
        );
    }
}

/// Helper extension used by the attention test: `aᵀ · b` via existing ops.
trait TapeExt {
    fn matmul_t_first(&mut self, a: Var, b: Var) -> Var;
}

impl TapeExt for Tape {
    fn matmul_t_first(&mut self, a: Var, b: Var) -> Var {
        // (n x 1)ᵀ · (n x d): transpose via hadamard trick is awkward, so
        // broadcast-multiply then sum rows: Σ_i a_i * b_i,:
        let n = self.value(a).rows();
        let d = self.value(b).cols();
        // Tile the column vector across d columns using matmul with ones.
        let ones = self.constant(Matrix::full(1, d, 1.0));
        let tiled = self.matmul(a, ones); // n x d
        debug_assert_eq!(self.value(tiled).shape(), (n, d));
        let prod = self.hadamard(tiled, b);
        self.sum_rows(prod)
    }
}
