//! Property-based tests of the algebraic identities the rest of the
//! workspace silently relies on.

use cascn_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Elementwise comparison with a tolerance scaled for f32 accumulation.
fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(close(&left, &right, 1e-4), "\n{left:?}\nvs\n{right:?}");
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(close(&left, &right, 1e-4));
    }

    #[test]
    fn transpose_is_an_involution(a in matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&left, &right, 1e-4));
    }

    #[test]
    fn fused_transpose_matmuls_agree(a in matrix(4, 3), b in matrix(4, 5)) {
        // Aᵀ·B via the fused kernel equals the explicit version.
        let fused = a.matmul_at_b(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert!(close(&fused, &explicit, 1e-4));
        // A·Bᵀ likewise.
        let c = Matrix::from_fn(5, 3, |r, q| (r + q) as f32 * 0.3 - 0.7);
        let fused2 = c.matmul_a_bt(&a);
        let explicit2 = c.matmul(&a.transpose());
        prop_assert!(close(&fused2, &explicit2, 1e-4));
    }

    #[test]
    fn sum_decomposes_over_rows_and_cols(a in matrix(5, 3)) {
        let total = a.sum();
        let by_rows = a.sum_rows().sum();
        let by_cols = a.sum_cols().sum();
        prop_assert!((total - by_rows).abs() < 1e-4 * (1.0 + total.abs()));
        prop_assert!((total - by_cols).abs() < 1e-4 * (1.0 + total.abs()));
    }

    #[test]
    fn hadamard_is_commutative(a in matrix(4, 4), b in matrix(4, 4)) {
        prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
    }

    #[test]
    fn scale_matches_hadamard_with_constant(a in matrix(3, 3), s in -3.0f32..3.0) {
        let scaled = a.scale(s);
        let constant = Matrix::full(3, 3, s);
        prop_assert!(close(&scaled, &a.hadamard(&constant), 1e-5));
    }

    #[test]
    fn solve_inverts_matmul(x in matrix(4, 1)) {
        // Build a well-conditioned matrix (diagonally dominant).
        let a = Matrix::from_fn(4, 4, |r, c| {
            if r == c { 6.0 } else { ((r * 3 + c) % 5) as f32 * 0.3 - 0.6 }
        });
        let b = a.matmul(&x);
        let solved = a.solve(&b).expect("diagonally dominant ⇒ non-singular");
        prop_assert!(close(&solved, &x, 1e-2), "\n{solved:?}\nvs\n{x:?}");
    }

    #[test]
    fn frobenius_norm_is_subadditive(a in matrix(3, 4), b in matrix(3, 4)) {
        let lhs = a.add(&b).frobenius_norm();
        let rhs = a.frobenius_norm() + b.frobenius_norm();
        prop_assert!(lhs <= rhs + 1e-4);
    }
}
