//! Dense `f32` matrix algebra used throughout the CasCN reproduction.
//!
//! This crate deliberately implements the *small* subset of tensor algebra
//! the paper's models need — row-major dense matrices, the matmul variants
//! required by reverse-mode differentiation, elementwise maps and
//! reductions — with no `unsafe` and no external dependencies.
//!
//! Shape errors are programming errors, not recoverable conditions, so all
//! operations assert their shape contracts and panic with a descriptive
//! message on violation (the same convention ndarray and nalgebra use for
//! mismatched dimensions).
//!
//! # Example
//!
//! ```
//! use cascn_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! assert_eq!(c.sum(), 10.0);
//! ```

mod matrix;
mod ops;
mod reduce;
mod solve;
mod sparse;

pub use matrix::Matrix;
pub use ops::dot;
pub use sparse::{Csr, SparseOp};

// `Matrix` buffers cross thread boundaries in the parallel training engine
// (worker threads ship snapshots, Chebyshev bases, and gradients back to the
// reducer), so losing `Send + Sync` — e.g. by introducing interior
// mutability or a raw pointer — must be a compile error, not a distant
// trait-bound failure in `cascn::parallel`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Matrix>();
    // Sparse spectral operators are shared across worker threads (and across
    // autograd tapes via `Arc`) the same way.
    assert_send_sync::<Csr>();
    assert_send_sync::<SparseOp>();
};

/// Tolerance-based float comparison used by tests across the workspace.
///
/// Returns `true` when `a` and `b` differ by at most `tol` absolutely, or
/// relatively for large magnitudes.
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    diff <= tol * a.abs().max(b.abs())
}

/// Asserts two matrices are elementwise equal within `tol`.
///
/// # Panics
/// Panics with the offending index and values if shapes differ or any entry
/// deviates by more than `tol`.
pub fn assert_matrix_eq(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "matrix shape mismatch: {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a[(r, c)], b[(r, c)]);
            assert!(
                approx_eq(x, y, tol),
                "matrices differ at ({r},{c}): {x} vs {y} (tol {tol})"
            );
        }
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-6));
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-7), 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-6));
    }

    #[test]
    fn assert_matrix_eq_accepts_close_matrices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut b = a.clone();
        b[(0, 1)] += 1e-8;
        assert_matrix_eq(&a, &b, 1e-6);
    }

    #[test]
    #[should_panic(expected = "matrices differ")]
    fn assert_matrix_eq_rejects_distant_matrices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 3.0]]);
        assert_matrix_eq(&a, &b, 1e-6);
    }
}
