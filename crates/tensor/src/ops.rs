//! Arithmetic on matrices: matmul variants, elementwise ops, broadcasts.
//!
//! The three matmul variants (`matmul`, `matmul_at_b`, `matmul_a_bt`) exist so
//! reverse-mode differentiation never has to materialize an explicit
//! transpose: for `C = A·B`, `∂A = ∂C·Bᵀ` and `∂B = Aᵀ·∂C`.

use crate::Matrix;

impl Matrix {
    /// `self · other` through the blocked i-k-j micro-kernel: 4-row blocks
    /// of `self` share each streamed row of `other` (one `O(n)` load serves
    /// four accumulating rows instead of one), and the inner j-loop is a
    /// contiguous fused multiply-add sweep the autovectorizer turns into
    /// SIMD. The accumulation order per output element — ascending `p` over
    /// the nonzeros of `self`'s row — is *identical* to the pre-blocking
    /// kernel and independent of block shape, so results are deterministic
    /// run-to-run and bit-identical across thread counts.
    ///
    /// Rows of zeros in `self` skip their inner loop (adjacency-style inputs
    /// are sparse in practice), but only when `other` is entirely finite:
    /// skipping `0 · NaN` would otherwise *mask* a poisoned operand and
    /// produce a fully finite product, hiding exactly the values the
    /// training anomaly guard exists to catch. With a non-finite `other` the
    /// dense loop runs instead, so `0 · NaN = NaN` propagates as IEEE-754
    /// demands. The `O(kn)` finiteness scan is negligible next to the
    /// `O(mkn)` product.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{} mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.rows(), other.cols());
        let k = self.cols();
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        let out_s = out.as_mut_slice();
        const MR: usize = 4;
        let blocked = m - m % MR;
        for i in (0..blocked).step_by(MR) {
            for p in 0..k {
                let b_row = &b[p * n..(p + 1) * n];
                for r in i..i + MR {
                    let a_rp = a[r * k + p];
                    // lint: allow(float-eq) — exact-zero sparsity skip, only taken when `other` is all-finite (no NaN masking)
                    if skip_zeros && a_rp == 0.0 {
                        continue;
                    }
                    let out_row = &mut out_s[r * n..(r + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += a_rp * bv;
                    }
                }
            }
        }
        for i in blocked..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out_s[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity skip, only taken when `other` is all-finite (no NaN masking)
                if skip_zeros && a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * bv;
                }
            }
        }
        out
    }

    /// [`Matrix::matmul`] that surfaces poisoned operands to the caller:
    /// returns `None` when either operand contains NaN/±inf, `Some(product)`
    /// otherwise.
    ///
    /// This is the variant for guard paths (e.g. the training anomaly guard)
    /// that must *detect* non-finite inputs rather than merely propagate
    /// them — `matmul` guarantees propagation, `matmul_checked` additionally
    /// reports which call first saw the poison.
    pub fn matmul_checked(&self, other: &Matrix) -> Option<Matrix> {
        if !self.all_finite() || !other.all_finite() {
            return None;
        }
        Some(self.matmul(other))
    }

    /// `selfᵀ · other` without materializing the transpose, through a 4-way
    /// p-blocked kernel: four rows of `self`/`other` are consumed per sweep,
    /// so each output row is touched once per block instead of once per `p`.
    /// The four partial products are added *sequentially* per element —
    /// `((((o + t₀) + t₁) + t₂) + t₃)` — which is exactly the ascending-`p`
    /// order of the unblocked kernel, so results are bit-identical to it
    /// (adding a lane whose `a` is exactly zero contributes `±0.0`, which
    /// never changes an accumulator that started from `+0.0` under
    /// round-to-nearest).
    ///
    /// The zero-skip fast path is disabled when `other` contains non-finite
    /// values, for the same NaN-masking reason as [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_at_b: {}x{} ᵀ· {}x{} mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.cols(), other.cols());
        let rows = self.rows();
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        let out_s = out.as_mut_slice();
        const PR: usize = 4;
        let blocked = rows - rows % PR;
        for p in (0..blocked).step_by(PR) {
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for i in 0..m {
                let a0 = a[p * m + i];
                let a1 = a[(p + 1) * m + i];
                let a2 = a[(p + 2) * m + i];
                let a3 = a[(p + 3) * m + i];
                // lint: allow(float-eq) — exact-zero sparsity skip of a whole block, only taken when `other` is all-finite (no NaN masking)
                if skip_zeros && a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    continue;
                }
                let out_row = &mut out_s[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut t = *o;
                    t += a0 * b0[j];
                    t += a1 * b1[j];
                    t += a2 * b2[j];
                    t += a3 * b3[j];
                    *o = t;
                }
            }
        }
        for p in blocked..rows {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity skip, only taken when `other` is all-finite (no NaN masking)
                if skip_zeros && av == 0.0 {
                    continue;
                }
                let out_row = &mut out_s[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose, through a
    /// 4-column register-tiled kernel: each pass over a row of `self` feeds
    /// four independent accumulators (one per row of `other`), quartering
    /// the number of `a_row` sweeps. Every accumulator runs the exact
    /// sequential ascending-`p` order of [`dot`], so the result is
    /// bit-identical to the unblocked per-element kernel.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_a_bt: {}x{} · {}x{}ᵀ mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.rows(), other.rows());
        let k = self.cols();
        let mut out = Matrix::zeros(m, n);
        let b = other.as_slice();
        const NR: usize = 4;
        let blocked = n - n % NR;
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            debug_assert_eq!(a_row.len(), k, "matmul_a_bt: row {i} width");
            for j in (0..blocked).step_by(NR) {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let (mut t0, mut t1, mut t2, mut t3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (p, &av) in a_row.iter().enumerate() {
                    t0 += av * b0[p];
                    t1 += av * b1[p];
                    t2 += av * b2[p];
                    t3 += av * b3[p];
                }
                out_row[j] = t0;
                out_row[j + 1] = t1;
                out_row[j + 2] = t2;
                out_row[j + 3] = t3;
            }
            for (j, o) in out_row.iter_mut().enumerate().skip(blocked) {
                let b_row = &b[j * k..(j + 1) * k];
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b, "hadamard")
    }

    /// `self + alpha * other`, in place (BLAS axpy).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in self.as_mut_slice() {
            *x *= s;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().map(|&x| f(x)).collect(),
        )
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics unless `bias` is `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(
            (1, self.cols()),
            bias.shape(),
            "add_row_broadcast: bias must be 1x{}, got {}x{}",
            self.cols(),
            bias.rows(),
            bias.cols()
        );
        let mut out = self.clone();
        let b = bias.as_slice();
        for r in 0..out.rows() {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b) {
                *o += bv;
            }
        }
        out
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32, op: &str) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: {}x{} vs {}x{} shape mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        debug_assert_eq!(self.as_slice().len(), other.as_slice().len(), "{op}: buffer length");
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use crate::{assert_matrix_eq, Matrix};

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let c = a().matmul(&b());
        let expect = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert_matrix_eq(&c, &expect, 1e-6);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        assert_matrix_eq(&m.matmul(&Matrix::eye(3)), &m, 1e-6);
        assert_matrix_eq(&Matrix::eye(2).matmul(&m), &m, 1e-6);
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let x = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32 - 2.5);
        let y = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.5);
        assert_matrix_eq(&x.matmul_at_b(&y), &x.transpose().matmul(&y), 1e-4);
    }

    #[test]
    fn matmul_a_bt_equals_explicit_transpose() {
        let x = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32 - 2.5);
        let y = Matrix::from_fn(5, 3, |r, c| (2 * r + c) as f32 * 0.5);
        assert_matrix_eq(&x.matmul_a_bt(&y), &x.matmul(&y.transpose()), 1e-4);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = a().matmul(&a());
    }

    #[test]
    #[should_panic(expected = "matmul_at_b")]
    fn matmul_at_b_rejects_mismatched_shapes() {
        // 2x3 ᵀ· 3x2: row counts 2 vs 3 differ, so the dimension check
        // (assert in every profile, reinforced by debug_assert_eq! row-width
        // checks in debug builds) must fire.
        let _ = a().matmul_at_b(&b());
    }

    #[test]
    #[should_panic(expected = "matmul_a_bt")]
    fn matmul_a_bt_rejects_mismatched_shapes() {
        let _ = a().matmul_a_bt(&b());
    }

    #[test]
    #[should_panic(expected = "hadamard")]
    fn elementwise_rejects_mismatched_shapes() {
        let _ = a().hadamard(&b());
    }

    #[test]
    #[should_panic(expected = "axpy")]
    fn axpy_rejects_mismatched_shapes() {
        a().axpy(1.0, &b());
    }

    #[test]
    #[should_panic(expected = "add_row_broadcast")]
    fn broadcast_rejects_non_row_bias() {
        let _ = a().add_row_broadcast(&b());
    }

    #[test]
    fn matmul_propagates_nan_under_zero_row() {
        // Regression: the zero-skip fast path used to drop `0 · NaN`
        // contributions, so a poisoned B under a zero row of A produced a
        // fully finite product and the anomaly guard never fired.
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let mut b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        b[(0, 0)] = f32::NAN;
        let c = a.matmul(&b);
        assert!(
            !c.all_finite(),
            "NaN in B must propagate through a zero row of A: {c:?}"
        );
        assert!(c[(0, 0)].is_nan(), "0 · NaN must be NaN");
        assert!(a.matmul_checked(&b).is_none(), "checked matmul must detect the poison");
        assert!(b.matmul_checked(&a).is_none(), "poison in either operand is detected");
    }

    #[test]
    fn matmul_at_b_propagates_inf_under_zero_column() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0]]);
        let mut b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        b[(0, 1)] = f32::INFINITY;
        // Column 0 of A is all zeros; row 0 of the Aᵀ·B result used to be
        // silently finite despite the Inf in B's row 0.
        let c = a.matmul_at_b(&b);
        assert!(!c.all_finite(), "Inf in B must propagate: {c:?}");
        assert!(c[(0, 1)].is_nan(), "0 · inf must be NaN");
    }

    #[test]
    fn matmul_checked_matches_matmul_on_finite_inputs() {
        let c = a().matmul_checked(&b()).expect("finite inputs");
        assert_matrix_eq(&c, &a().matmul(&b()), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(x.add(&y).as_slice(), &[4.0, 6.0]);
        assert_eq!(y.sub(&x).as_slice(), &[2.0, 2.0]);
        assert_eq!(x.hadamard(&y).as_slice(), &[3.0, 8.0]);
        assert_eq!(x.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut x = Matrix::from_rows(&[&[1.0, 2.0]]);
        x.axpy(0.5, &Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(x.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn bias_broadcast_adds_to_each_row() {
        let m = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = m.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn map_applies_function() {
        let m = a().map(|x| x * x);
        assert_eq!(m[(1, 2)], 36.0);
    }

    // ---- blocked-kernel bit-identity regressions ------------------------
    //
    // The blocked micro-kernels promise the *exact* accumulation order of
    // the pre-blocking loops (the spectral-cache fingerprint and the
    // thread-parity contract both lean on this). These references are the
    // original unblocked kernels, kept verbatim.

    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, n) = (a.rows(), b.cols());
        let skip_zeros = b.all_finite();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — test reference mirrors the kernel's exact-zero skip
                if skip_zeros && a_ip == 0.0 {
                    continue;
                }
                let b_row = &b.as_slice()[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * bv;
                }
            }
        }
        out
    }

    fn reference_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, n) = (a.cols(), b.cols());
        let skip_zeros = b.all_finite();
        let mut out = Matrix::zeros(m, n);
        for p in 0..a.rows() {
            let a_row = a.row(p);
            let b_row = b.row(p);
            for (i, &av) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — test reference mirrors the kernel's exact-zero skip
                if skip_zeros && av == 0.0 {
                    continue;
                }
                let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn reference_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, n) = (a.rows(), b.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = crate::dot(a_row, b.row(j));
            }
        }
        out
    }

    /// Awkward shapes (block remainders in every dimension) with values
    /// spread across magnitudes, plus exact zeros and negative zeros
    /// sprinkled in so the zero-skip paths and the ±0.0 lane argument are
    /// both exercised.
    fn irregular(rows: usize, cols: usize, seed: u32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let i = (r * cols + c) as u32 + seed;
            match i % 7 {
                0 => 0.0,
                3 => -0.0,
                _ => ((i as f32) * 0.61803) % 5.0 - 2.5,
            }
        })
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 2, 5), (4, 4, 4), (5, 7, 3), (9, 6, 10), (8, 1, 2)] {
            let a = irregular(m, k, 1);
            let b = irregular(k, n, 11);
            assert_eq!(
                a.matmul(&b).as_slice(),
                reference_matmul(&a, &b).as_slice(),
                "matmul {m}x{k}·{k}x{n} diverged from the unblocked kernel"
            );
        }
    }

    #[test]
    fn blocked_matmul_at_b_is_bit_identical_to_reference() {
        for &(k, m, n) in &[(1, 1, 1), (4, 3, 2), (5, 2, 7), (8, 4, 4), (10, 6, 3), (2, 9, 5)] {
            let a = irregular(k, m, 3);
            let b = irregular(k, n, 17);
            assert_eq!(
                a.matmul_at_b(&b).as_slice(),
                reference_at_b(&a, &b).as_slice(),
                "matmul_at_b {k}x{m}ᵀ·{k}x{n} diverged from the unblocked kernel"
            );
        }
    }

    #[test]
    fn blocked_matmul_a_bt_is_bit_identical_to_reference() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (4, 4, 4), (3, 5, 9), (6, 2, 7), (5, 8, 1)] {
            let a = irregular(m, k, 5);
            let b = irregular(n, k, 23);
            assert_eq!(
                a.matmul_a_bt(&b).as_slice(),
                reference_a_bt(&a, &b).as_slice(),
                "matmul_a_bt {m}x{k}·{n}x{k}ᵀ diverged from the unblocked kernel"
            );
        }
    }

    #[test]
    fn blocked_kernels_match_reference_under_non_finite_rhs() {
        // skip_zeros off: the dense loops must still agree bit-for-bit,
        // NaN placement included.
        let a = irregular(6, 5, 7);
        let mut b = irregular(5, 6, 29);
        b[(2, 3)] = f32::NAN;
        b[(4, 0)] = f32::INFINITY;
        let (got, want) = (a.matmul(&b), reference_matmul(&a, &b));
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits(), "matmul NaN path diverged");
        }
        let a2 = irregular(5, 6, 13);
        let (got, want) = (a2.matmul_at_b(&b), reference_at_b(&a2, &b));
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits(), "matmul_at_b NaN path diverged");
        }
    }
}
