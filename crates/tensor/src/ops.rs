//! Arithmetic on matrices: matmul variants, elementwise ops, broadcasts.
//!
//! The three matmul variants (`matmul`, `matmul_at_b`, `matmul_a_bt`) exist so
//! reverse-mode differentiation never has to materialize an explicit
//! transpose: for `C = A·B`, `∂A = ∂C·Bᵀ` and `∂B = Aᵀ·∂C`.

use crate::Matrix;

impl Matrix {
    /// `self · other` using an i-k-j loop order that streams both operands
    /// row-major (cache-friendly; see the Rust Performance Book on access
    /// patterns).
    ///
    /// Rows of zeros in `self` skip their inner loop (adjacency-style inputs
    /// are sparse in practice), but only when `other` is entirely finite:
    /// skipping `0 · NaN` would otherwise *mask* a poisoned operand and
    /// produce a fully finite product, hiding exactly the values the
    /// training anomaly guard exists to catch. With a non-finite `other` the
    /// dense loop runs instead, so `0 · NaN = NaN` propagates as IEEE-754
    /// demands. The `O(kn)` finiteness scan is negligible next to the
    /// `O(mkn)` product.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{} mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.rows(), other.cols());
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            debug_assert_eq!(a_row.len(), other.rows(), "matmul: row {i} width");
            debug_assert_eq!(out_row.len(), n, "matmul: output row {i} width");
            for (p, &a_ip) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity skip, only taken when `other` is all-finite (no NaN masking)
                if skip_zeros && a_ip == 0.0 {
                    continue;
                }
                let b_row = &other.as_slice()[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b;
                }
            }
        }
        out
    }

    /// [`Matrix::matmul`] that surfaces poisoned operands to the caller:
    /// returns `None` when either operand contains NaN/±inf, `Some(product)`
    /// otherwise.
    ///
    /// This is the variant for guard paths (e.g. the training anomaly guard)
    /// that must *detect* non-finite inputs rather than merely propagate
    /// them — `matmul` guarantees propagation, `matmul_checked` additionally
    /// reports which call first saw the poison.
    pub fn matmul_checked(&self, other: &Matrix) -> Option<Matrix> {
        if !self.all_finite() || !other.all_finite() {
            return None;
        }
        Some(self.matmul(other))
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// The zero-skip fast path is disabled when `other` contains non-finite
    /// values, for the same NaN-masking reason as [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_at_b: {}x{} ᵀ· {}x{} mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.cols(), other.cols());
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(m, n);
        for p in 0..self.rows() {
            let a_row = self.row(p);
            let b_row = other.row(p);
            debug_assert_eq!(a_row.len(), m, "matmul_at_b: row {p} width");
            debug_assert_eq!(b_row.len(), n, "matmul_at_b: rhs row {p} width");
            for (i, &a) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity skip, only taken when `other` is all-finite (no NaN masking)
                if skip_zeros && a == 0.0 {
                    continue;
                }
                let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_a_bt: {}x{} · {}x{}ᵀ mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.rows(), other.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            debug_assert_eq!(a_row.len(), self.cols(), "matmul_a_bt: row {i} width");
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                debug_assert_eq!(b_row.len(), a_row.len(), "matmul_a_bt: rhs row {j} width");
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b, "hadamard")
    }

    /// `self + alpha * other`, in place (BLAS axpy).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in self.as_mut_slice() {
            *x *= s;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().map(|&x| f(x)).collect(),
        )
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics unless `bias` is `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(
            (1, self.cols()),
            bias.shape(),
            "add_row_broadcast: bias must be 1x{}, got {}x{}",
            self.cols(),
            bias.rows(),
            bias.cols()
        );
        let mut out = self.clone();
        let b = bias.as_slice();
        for r in 0..out.rows() {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b) {
                *o += bv;
            }
        }
        out
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32, op: &str) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: {}x{} vs {}x{} shape mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        debug_assert_eq!(self.as_slice().len(), other.as_slice().len(), "{op}: buffer length");
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use crate::{assert_matrix_eq, Matrix};

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let c = a().matmul(&b());
        let expect = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert_matrix_eq(&c, &expect, 1e-6);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        assert_matrix_eq(&m.matmul(&Matrix::eye(3)), &m, 1e-6);
        assert_matrix_eq(&Matrix::eye(2).matmul(&m), &m, 1e-6);
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let x = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32 - 2.5);
        let y = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.5);
        assert_matrix_eq(&x.matmul_at_b(&y), &x.transpose().matmul(&y), 1e-4);
    }

    #[test]
    fn matmul_a_bt_equals_explicit_transpose() {
        let x = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32 - 2.5);
        let y = Matrix::from_fn(5, 3, |r, c| (2 * r + c) as f32 * 0.5);
        assert_matrix_eq(&x.matmul_a_bt(&y), &x.matmul(&y.transpose()), 1e-4);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = a().matmul(&a());
    }

    #[test]
    #[should_panic(expected = "matmul_at_b")]
    fn matmul_at_b_rejects_mismatched_shapes() {
        // 2x3 ᵀ· 3x2: row counts 2 vs 3 differ, so the dimension check
        // (assert in every profile, reinforced by debug_assert_eq! row-width
        // checks in debug builds) must fire.
        let _ = a().matmul_at_b(&b());
    }

    #[test]
    #[should_panic(expected = "matmul_a_bt")]
    fn matmul_a_bt_rejects_mismatched_shapes() {
        let _ = a().matmul_a_bt(&b());
    }

    #[test]
    #[should_panic(expected = "hadamard")]
    fn elementwise_rejects_mismatched_shapes() {
        let _ = a().hadamard(&b());
    }

    #[test]
    #[should_panic(expected = "axpy")]
    fn axpy_rejects_mismatched_shapes() {
        a().axpy(1.0, &b());
    }

    #[test]
    #[should_panic(expected = "add_row_broadcast")]
    fn broadcast_rejects_non_row_bias() {
        let _ = a().add_row_broadcast(&b());
    }

    #[test]
    fn matmul_propagates_nan_under_zero_row() {
        // Regression: the zero-skip fast path used to drop `0 · NaN`
        // contributions, so a poisoned B under a zero row of A produced a
        // fully finite product and the anomaly guard never fired.
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let mut b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        b[(0, 0)] = f32::NAN;
        let c = a.matmul(&b);
        assert!(
            !c.all_finite(),
            "NaN in B must propagate through a zero row of A: {c:?}"
        );
        assert!(c[(0, 0)].is_nan(), "0 · NaN must be NaN");
        assert!(a.matmul_checked(&b).is_none(), "checked matmul must detect the poison");
        assert!(b.matmul_checked(&a).is_none(), "poison in either operand is detected");
    }

    #[test]
    fn matmul_at_b_propagates_inf_under_zero_column() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0]]);
        let mut b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        b[(0, 1)] = f32::INFINITY;
        // Column 0 of A is all zeros; row 0 of the Aᵀ·B result used to be
        // silently finite despite the Inf in B's row 0.
        let c = a.matmul_at_b(&b);
        assert!(!c.all_finite(), "Inf in B must propagate: {c:?}");
        assert!(c[(0, 1)].is_nan(), "0 · inf must be NaN");
    }

    #[test]
    fn matmul_checked_matches_matmul_on_finite_inputs() {
        let c = a().matmul_checked(&b()).expect("finite inputs");
        assert_matrix_eq(&c, &a().matmul(&b()), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(x.add(&y).as_slice(), &[4.0, 6.0]);
        assert_eq!(y.sub(&x).as_slice(), &[2.0, 2.0]);
        assert_eq!(x.hadamard(&y).as_slice(), &[3.0, 8.0]);
        assert_eq!(x.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut x = Matrix::from_rows(&[&[1.0, 2.0]]);
        x.axpy(0.5, &Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(x.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn bias_broadcast_adds_to_each_row() {
        let m = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = m.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn map_applies_function() {
        let m = a().map(|x| x * x);
        assert_eq!(m[(1, 2)], 36.0);
    }
}
