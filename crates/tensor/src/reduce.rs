//! Reductions and norms.

use crate::Matrix;

impl Matrix {
    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all entries (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sum: collapses an `m x n` matrix to `1 x n`.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            let row = self.row(r);
            for (o, &x) in out.row_mut(0).iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Row-wise sum: collapses an `m x n` matrix to `m x 1`.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            out[(r, 0)] = self.row(r).iter().sum();
        }
        out
    }

    /// Largest entry. Returns `f32::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest entry. Returns `f32::INFINITY` for an empty matrix.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm, `sqrt(Σ x²)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// L1 norm of the flattened matrix.
    pub fn l1_norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x.abs()).sum()
    }

    /// Largest absolute entry (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().map(|x| x.abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Matrix {
        Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]])
    }

    #[test]
    fn sum_and_mean() {
        assert_eq!(m().sum(), 6.0);
        assert_eq!(m().mean(), 1.5);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let s = m().sum_rows();
        assert_eq!(s.shape(), (1, 2));
        assert_eq!(s.as_slice(), &[4.0, 2.0]);
    }

    #[test]
    fn sum_cols_collapses_to_col_vector() {
        let s = m().sum_cols();
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.as_slice(), &[-1.0, 7.0]);
    }

    #[test]
    fn extrema_and_norms() {
        assert_eq!(m().max(), 4.0);
        assert_eq!(m().min(), -2.0);
        assert_eq!(m().l1_norm(), 10.0);
        assert_eq!(m().max_abs(), 4.0);
        assert!((m().frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }
}
