//! Compressed sparse row matrices and the sparse spectral operator.
//!
//! `Csr` lives in the tensor crate (rather than `cascn-graph`, where it
//! originated) because the autograd tape applies sparse operators inside the
//! Chebyshev recurrence and `cascn-autograd` depends only on this crate.
//! `cascn-graph` re-exports `Csr` so adjacency-traversal call sites are
//! unchanged.
//!
//! [`SparseOp`] is the operator form of the scaled CasLaplacian
//! `Δ̃ = S + coeff·u·vᵀ`: a CSR core plus an optional rank-1 correction. The
//! directed CasLaplacian is dense on paper only because PageRank teleport
//! spreads `(1−α)/n` over every entry; factoring that teleport mass into the
//! rank-1 term leaves `S` as sparse as the cascade itself, so applying the
//! operator to an `n×d` feature block costs `O(nnz·d + n·d)` instead of
//! `O(n²·d)`.

use crate::Matrix;

/// A sparse matrix in CSR format.
///
/// Stores, per row, the `(column, value)` pairs of its nonzeros. Used for
/// adjacency traversal (random walks, topological sweeps), sparse
/// matrix–vector products, and the SpMM kernel driving the Chebyshev
/// recurrence, where the dense `n x n` form would waste work.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    entries: Vec<(usize, f32)>,
}

impl Csr {
    /// Builds a square `n x n` CSR matrix from `(row, col, value)` triples.
    /// Duplicate coordinates are kept as separate entries (they sum under
    /// multiplication, matching dense semantics).
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn from_edges(n: usize, edges: impl Iterator<Item = (usize, usize, f32)>) -> Self {
        let mut buckets: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        for (r, c, v) in edges {
            assert!(r < n && c < n, "entry ({r},{c}) out of range for {n}x{n}");
            buckets[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        row_ptr.push(0);
        for mut b in buckets {
            b.sort_unstable_by_key(|&(c, _)| c);
            entries.extend_from_slice(&b);
            row_ptr.push(entries.len());
        }
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr,
            entries,
        }
    }

    /// Builds a CSR matrix from per-row `(column, value)` lists whose columns
    /// are already strictly ascending (the invariant [`Csr::row`] documents).
    /// This is the reconstruction path for persisted operators: it preserves
    /// the stored entry order bit-for-bit without re-sorting.
    ///
    /// # Panics
    /// Panics if any column is out of range or a row's columns are not
    /// strictly ascending.
    pub fn from_rows(n_cols: usize, rows: &[Vec<(usize, f32)>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut entries = Vec::new();
        row_ptr.push(0);
        for (r, row) in rows.iter().enumerate() {
            let mut prev: Option<usize> = None;
            for &(c, v) in row {
                assert!(c < n_cols, "entry ({r},{c}) out of range for {n_cols} cols");
                assert!(
                    prev.is_none_or(|p| p < c),
                    "row {r} columns not strictly ascending at {c}"
                );
                prev = Some(c);
                entries.push((c, v));
            }
            row_ptr.push(entries.len());
        }
        Self {
            n_rows: rows.len(),
            n_cols,
            row_ptr,
            entries,
        }
    }

    /// Builds a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut entries = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                // lint: allow(float-eq) — exact-zero sparsity test: only true zeros are dropped from the CSR
                if v != 0.0 {
                    entries.push((c, v));
                }
            }
            row_ptr.push(entries.len());
        }
        Self {
            n_rows: m.rows(),
            n_cols: m.cols(),
            row_ptr,
            entries,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The `(column, value)` pairs of row `r`, sorted by column.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[(usize, f32)] {
        assert!(r < self.n_rows, "row {r} out of range");
        &self.entries[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Widens the column space to `n_cols` (existing entries keep their
    /// coordinates). Used when a streaming operator grows by one node: the
    /// new column exists before the new row's entries reference it.
    ///
    /// # Panics
    /// Panics if `n_cols` would shrink the matrix.
    pub fn grow_cols(&mut self, n_cols: usize) {
        assert!(
            n_cols >= self.n_cols,
            "grow_cols: cannot shrink {} cols to {n_cols}",
            self.n_cols
        );
        self.n_cols = n_cols;
    }

    /// Appends one row of `(column, value)` pairs with strictly ascending
    /// columns — the `O(row nnz)` growth step behind incremental spectral
    /// updates (a cascade gaining one adopter gains one operator row).
    ///
    /// # Panics
    /// Panics if any column is out of range or not strictly ascending.
    pub fn push_row(&mut self, row: &[(usize, f32)]) {
        let r = self.n_rows;
        let mut prev: Option<usize> = None;
        for &(c, _) in row {
            assert!(c < self.n_cols, "entry ({r},{c}) out of range for {} cols", self.n_cols);
            assert!(
                prev.is_none_or(|p| p < c),
                "row {r} columns not strictly ascending at {c}"
            );
            prev = Some(c);
        }
        self.entries.extend_from_slice(row);
        self.row_ptr.push(self.entries.len());
        self.n_rows += 1;
    }

    /// Replaces row `r` with new `(column, value)` pairs (strictly ascending
    /// columns). When the new row has the same number of entries the values
    /// are written in place; otherwise the entry store is spliced and later
    /// row pointers shifted — `O(nnz after row r)`, still far below a full
    /// rebuild. This is the structural edit an edge insertion needs: only
    /// the parent's row changes shape.
    ///
    /// # Panics
    /// Panics if `r` or any column is out of range, or columns are not
    /// strictly ascending.
    pub fn set_row(&mut self, r: usize, row: &[(usize, f32)]) {
        assert!(r < self.n_rows, "row {r} out of range");
        let mut prev: Option<usize> = None;
        for &(c, _) in row {
            assert!(c < self.n_cols, "entry ({r},{c}) out of range for {} cols", self.n_cols);
            assert!(
                prev.is_none_or(|p| p < c),
                "row {r} columns not strictly ascending at {c}"
            );
            prev = Some(c);
        }
        let (start, end) = (self.row_ptr[r], self.row_ptr[r + 1]);
        if row.len() == end - start {
            self.entries[start..end].copy_from_slice(row);
            return;
        }
        let shift = row.len() as isize - (end - start) as isize;
        self.entries.splice(start..end, row.iter().copied());
        for p in &mut self.row_ptr[r + 1..] {
            *p = p.wrapping_add_signed(shift);
        }
    }

    /// In-place value refresh for row `r`: yields `(column, &mut value)` for
    /// each stored entry, leaving the structure untouched. A global scaling
    /// change (the stationary distribution moved under every entry) rewrites
    /// all values in `O(nnz)` without reallocating.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row_values_mut(&mut self, r: usize) -> impl Iterator<Item = (usize, &mut f32)> + '_ {
        assert!(r < self.n_rows, "row {r} out of range");
        self.entries[self.row_ptr[r]..self.row_ptr[r + 1]]
            .iter_mut()
            .map(|(c, v)| (*c, v))
    }

    /// Dense conversion (duplicates sum).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for &(c, v) in self.row(r) {
                m[(r, c)] += v;
            }
        }
        m
    }

    /// Sparse matrix × dense vector: `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_cols, "spmv: dimension mismatch");
        let mut y = vec![0.0f32; self.n_rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &(c, v) in self.row(r) {
                acc += v * x[c];
            }
            *out = acc;
        }
        y
    }

    /// Transposed product: `y = Aᵀ·x` (used by power iteration on `Pᵀ`).
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn spmv_transpose(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_rows, "spmv_transpose: dimension mismatch");
        let mut y = vec![0.0f32; self.n_cols];
        for (r, &xr) in x.iter().enumerate() {
            // lint: allow(float-eq) — exact-zero skip: NaN/Inf compare unequal and still take the dense path
            if xr == 0.0 {
                continue;
            }
            for &(c, v) in self.row(r) {
                y[c] += v * xr;
            }
        }
        y
    }

    /// Sparse × dense SpMM: `Y = A·X`, the kernel behind the operator-form
    /// Chebyshev recurrence `T_k·X = 2·Δ̃·(T_{k-1}·X) − T_{k-2}·X`.
    ///
    /// For an all-finite `X` and a `Csr` with one entry per coordinate (the
    /// [`Csr::from_dense`] invariant) this is **bit-identical** to
    /// `self.to_dense().matmul(x)`: the dense kernel accumulates each output
    /// element over ascending `p` while skipping exact-zero `A` entries, and
    /// a CSR row walk visits the same nonzeros in the same ascending-column
    /// order. Structural zeros are skipped unconditionally here, so unlike
    /// the dense kernel a non-finite `X` does *not* disable the skip — the
    /// dense kernels remain the NaN-surfacing guard path.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.n_cols,
            "spmm: {}x{} · {}x{} mismatch",
            self.n_rows,
            self.n_cols,
            x.rows(),
            x.cols()
        );
        let d = x.cols();
        let xs = x.as_slice();
        let mut out = Matrix::zeros(self.n_rows, d);
        for r in 0..self.n_rows {
            let out_row = out.row_mut(r);
            for &(c, v) in &self.entries[self.row_ptr[r]..self.row_ptr[r + 1]] {
                let x_row = &xs[c * d..(c + 1) * d];
                for (o, &b) in out_row.iter_mut().zip(x_row) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// Transposed SpMM: `Y = Aᵀ·X` without materializing the transpose
    /// (reverse-mode gradient of [`Csr::spmm`]: for `Y = A·X`, `∂X = Aᵀ·∂Y`).
    ///
    /// Deterministic: scatters row-by-row in ascending `r`, then ascending
    /// stored column, independent of thread count.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.rows()`.
    pub fn spmm_transpose(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.n_rows,
            "spmm_transpose: {}x{} ᵀ· {}x{} mismatch",
            self.n_rows,
            self.n_cols,
            x.rows(),
            x.cols()
        );
        let d = x.cols();
        let xs = x.as_slice();
        let mut out = Matrix::zeros(self.n_cols, d);
        let out_s = out.as_mut_slice();
        for r in 0..self.n_rows {
            let x_row = &xs[r * d..(r + 1) * d];
            for &(c, v) in &self.entries[self.row_ptr[r]..self.row_ptr[r + 1]] {
                let o_row = &mut out_s[c * d..(c + 1) * d];
                for (o, &b) in o_row.iter_mut().zip(x_row) {
                    *o += v * b;
                }
            }
        }
        out
    }
}

/// A square linear operator `M = S + coeff·u·vᵀ`: a sparse CSR core plus an
/// optional dense rank-1 correction.
///
/// This is the storage form of the scaled CasLaplacian `Δ̃`. For undirected
/// cascades `Δ̃` is genuinely sparse and `rank1` is `None`; for directed
/// cascades the PageRank teleport term makes every entry of `Δ̃` nonzero, but
/// all of that mass is the single rank-1 outer product
/// `−(2/λmax)·(1−α)/n · φ^{1/2}·(φ^{-1/2})ᵀ`, so the core stays as sparse as
/// the cascade adjacency.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseOp {
    csr: Csr,
    rank1: Option<(f32, Vec<f32>, Vec<f32>)>,
}

impl SparseOp {
    /// Wraps a plain CSR matrix (no rank-1 part).
    ///
    /// # Panics
    /// Panics if `csr` is not square.
    pub fn from_csr(csr: Csr) -> Self {
        Self::new(csr, None)
    }

    /// Builds `S + coeff·u·vᵀ` from its parts.
    ///
    /// # Panics
    /// Panics if `csr` is not square or the rank-1 vectors don't match its
    /// dimension.
    pub fn new(csr: Csr, rank1: Option<(f32, Vec<f32>, Vec<f32>)>) -> Self {
        assert_eq!(csr.rows(), csr.cols(), "SparseOp: core must be square");
        if let Some((_, u, v)) = &rank1 {
            assert_eq!(u.len(), csr.rows(), "SparseOp: u length != dimension");
            assert_eq!(v.len(), csr.cols(), "SparseOp: v length != dimension");
        }
        Self { csr, rank1 }
    }

    /// The operator's dimension `n` (it is `n×n`).
    pub fn dim(&self) -> usize {
        self.csr.rows()
    }

    /// Stored nonzeros of the sparse core.
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// The sparse core (for persistence).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The rank-1 correction `(coeff, u, v)`, if any (for persistence).
    pub fn rank1(&self) -> Option<(f32, &[f32], &[f32])> {
        self.rank1
            .as_ref()
            .map(|(c, u, v)| (*c, u.as_slice(), v.as_slice()))
    }

    /// Approximate heap footprint in bytes: CSR entries + row pointers +
    /// rank-1 vectors. Used by the serve-cache memory accounting.
    pub fn approx_bytes(&self) -> usize {
        let csr = self.csr.nnz() * std::mem::size_of::<(usize, f32)>()
            + (self.csr.rows() + 1) * std::mem::size_of::<usize>();
        let rank1 = self
            .rank1
            .as_ref()
            .map_or(0, |(_, u, v)| (u.len() + v.len()) * std::mem::size_of::<f32>() + 4);
        csr + rank1
    }

    /// Applies the operator to a feature block: `Y = S·X + coeff·u·(vᵀX)`.
    ///
    /// The rank-1 half costs `O(n·d)`: one pass folds `X` into the `1×d` row
    /// `vᵀX`, a second scatters `coeff·u_r` multiples of it into the output.
    /// Deterministic accumulation order throughout (ascending row, ascending
    /// column), independent of thread count.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.dim()`.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let mut out = self.csr.spmm(x);
        if let Some((coeff, u, v)) = &self.rank1 {
            let folded = fold_rows(v, x);
            let d = x.cols();
            let out_s = out.as_mut_slice();
            for (r, &ur) in u.iter().enumerate() {
                let w = coeff * ur;
                let o_row = &mut out_s[r * d..(r + 1) * d];
                for (o, &f) in o_row.iter_mut().zip(&folded) {
                    *o += w * f;
                }
            }
        }
        out
    }

    /// Applies the transposed operator: `Y = Sᵀ·X + coeff·v·(uᵀX)`
    /// (reverse-mode gradient of [`SparseOp::apply`]).
    ///
    /// # Panics
    /// Panics if `x.rows() != self.dim()`.
    pub fn apply_transpose(&self, x: &Matrix) -> Matrix {
        let mut out = self.csr.spmm_transpose(x);
        if let Some((coeff, u, v)) = &self.rank1 {
            let folded = fold_rows(u, x);
            let d = x.cols();
            let out_s = out.as_mut_slice();
            for (c, &vc) in v.iter().enumerate() {
                let w = coeff * vc;
                let o_row = &mut out_s[c * d..(c + 1) * d];
                for (o, &f) in o_row.iter_mut().zip(&folded) {
                    *o += w * f;
                }
            }
        }
        out
    }

    /// Materializes the operator as a dense matrix (tests, the legacy dense
    /// kernel path, and gradient checking).
    pub fn to_dense(&self) -> Matrix {
        let mut m = self.csr.to_dense();
        if let Some((coeff, u, v)) = &self.rank1 {
            for (r, &ur) in u.iter().enumerate() {
                for (c, &vc) in v.iter().enumerate() {
                    m[(r, c)] += coeff * ur * vc;
                }
            }
        }
        m
    }
}

/// `wᵀX` as a length-`d` row: `folded[j] = Σ_r w[r]·X[r][j]`, accumulated in
/// ascending `r` for determinism.
fn fold_rows(w: &[f32], x: &Matrix) -> Vec<f32> {
    let d = x.cols();
    let xs = x.as_slice();
    let mut folded = vec![0.0f32; d];
    for (r, &wr) in w.iter().enumerate() {
        let x_row = &xs[r * d..(r + 1) * d];
        for (f, &b) in folded.iter_mut().zip(x_row) {
            *f += wr * b;
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_matrix_eq;

    fn sample() -> Csr {
        Csr::from_edges(
            3,
            vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0), (0, 2, 1.0)].into_iter(),
        )
    }

    #[test]
    fn roundtrip_through_dense() {
        let c = sample();
        let d = c.to_dense();
        let c2 = Csr::from_dense(&d);
        assert_matrix_eq(&c2.to_dense(), &d, 0.0);
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let c = sample();
        assert_eq!(c.row(0), &[(1, 2.0), (2, 1.0)]);
        assert_eq!(c.row(1), &[(2, 3.0)]);
    }

    #[test]
    fn from_rows_preserves_entry_order() {
        let c = sample();
        let rows: Vec<Vec<(usize, f32)>> = (0..c.rows()).map(|r| c.row(r).to_vec()).collect();
        let rebuilt = Csr::from_rows(c.cols(), &rows);
        assert_eq!(rebuilt, c);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_rows_rejects_unsorted_columns() {
        let _ = Csr::from_rows(3, &[vec![(2, 1.0), (1, 2.0)]]);
    }

    #[test]
    fn spmv_matches_dense_product() {
        let c = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = c.spmv(&x);
        let dense_y = c.to_dense().matmul(&Matrix::col_vector(&x));
        assert_eq!(y, dense_y.as_slice());
    }

    #[test]
    fn spmv_transpose_matches_dense_product() {
        let c = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = c.spmv_transpose(&x);
        let dense_y = c.to_dense().transpose().matmul(&Matrix::col_vector(&x));
        assert_eq!(y, dense_y.as_slice());
    }

    #[test]
    fn duplicates_sum_in_dense_form() {
        let c = Csr::from_edges(2, vec![(0, 1, 1.0), (0, 1, 2.5)].into_iter());
        assert_eq!(c.to_dense()[(0, 1)], 3.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_bounds_checked() {
        let _ = Csr::from_edges(2, vec![(0, 5, 1.0)].into_iter());
    }

    #[test]
    fn spmm_is_bit_identical_to_dense_matmul() {
        // The load-bearing contract of the operator-form Chebyshev pipeline:
        // on a finite feature block, CSR SpMM reproduces the dense kernel's
        // zero-skip accumulation order exactly — not approximately.
        let c = sample();
        let x = Matrix::from_fn(3, 4, |r, k| (r * 4 + k) as f32 * 0.37 - 1.1);
        let sparse = c.spmm(&x);
        let dense = c.to_dense().matmul(&x);
        assert_eq!(sparse.as_slice(), dense.as_slice(), "bitwise equality required");
    }

    #[test]
    fn spmm_handles_empty_rows_and_all_zero() {
        let x = Matrix::from_fn(4, 2, |r, k| (r + k) as f32 + 0.5);
        // Row 2 empty; row 3 empty.
        let c = Csr::from_edges(4, vec![(0, 3, 2.0), (1, 0, -1.0)].into_iter());
        let got = c.spmm(&x);
        assert_eq!(got.as_slice(), c.to_dense().matmul(&x).as_slice());
        assert_eq!(got.row(2), &[0.0, 0.0]);
        // The fully-empty matrix maps everything to zero.
        let empty = Csr::from_edges(4, std::iter::empty());
        assert_eq!(empty.spmm(&x).as_slice(), &[0.0; 8]);
    }

    #[test]
    fn spmm_single_node() {
        let c = Csr::from_edges(1, vec![(0, 0, -0.5)].into_iter());
        let x = Matrix::row_vector(&[2.0, 4.0]);
        assert_eq!(c.spmm(&x).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let c = sample();
        let x = Matrix::from_fn(3, 5, |r, k| (r * 5 + k) as f32 * 0.21 - 0.7);
        let got = c.spmm_transpose(&x);
        let expect = c.to_dense().transpose().matmul(&x);
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "spmm")]
    fn spmm_rejects_mismatched_shapes() {
        let _ = sample().spmm(&Matrix::zeros(2, 2));
    }

    #[test]
    fn push_row_and_grow_cols_extend_incrementally() {
        let mut c = sample();
        c.grow_cols(4);
        c.push_row(&[(0, 5.0), (3, -1.0)]);
        assert_eq!((c.rows(), c.cols(), c.nnz()), (4, 4, 6));
        assert_eq!(c.row(3), &[(0, 5.0), (3, -1.0)]);
        // Incremental construction matches batch construction exactly.
        let rows: Vec<Vec<(usize, f32)>> = (0..c.rows()).map(|r| c.row(r).to_vec()).collect();
        assert_eq!(Csr::from_rows(c.cols(), &rows), c);
    }

    #[test]
    fn set_row_splices_structure_and_preserves_neighbors() {
        let mut c = sample();
        let before_r1 = c.row(1).to_vec();
        // Same-arity replacement: in-place.
        c.set_row(0, &[(0, 9.0), (1, 8.0)]);
        assert_eq!(c.row(0), &[(0, 9.0), (1, 8.0)]);
        assert_eq!(c.row(1), &before_r1[..]);
        // Grow row 0 by one entry: later rows must shift intact.
        c.set_row(0, &[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(c.nnz(), 5);
        assert_eq!(c.row(1), &before_r1[..]);
        assert_eq!(c.row(2), &[(0, 4.0)]);
        // Shrink to empty.
        c.set_row(0, &[]);
        assert_eq!(c.row(0), &[]);
        assert_eq!(c.row(2), &[(0, 4.0)]);
    }

    #[test]
    fn row_values_mut_rewrites_without_structural_change() {
        let mut c = sample();
        let dense_before = c.to_dense();
        for r in 0..c.rows() {
            for (_, v) in c.row_values_mut(r) {
                *v *= 2.0;
            }
        }
        let mut expect = dense_before;
        expect.as_mut_slice().iter_mut().for_each(|x| *x *= 2.0);
        assert_eq!(c.to_dense().as_slice(), expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_cols_rejects_shrinking() {
        sample().grow_cols(2);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn push_row_rejects_unsorted_columns() {
        let mut c = sample();
        c.push_row(&[(2, 1.0), (1, 2.0)]);
    }

    fn sample_op() -> SparseOp {
        let u = vec![0.5, 1.0, 2.0];
        let v = vec![1.0, -1.0, 0.25];
        SparseOp::new(sample(), Some((-0.3, u, v)))
    }

    #[test]
    fn op_apply_matches_dense_reference() {
        let op = sample_op();
        let x = Matrix::from_fn(3, 4, |r, k| (r as f32 - 1.0) * 0.5 + k as f32 * 0.1);
        let got = op.apply(&x);
        let expect = op.to_dense().matmul(&x);
        assert_matrix_eq(&got, &expect, 1e-5);
    }

    #[test]
    fn op_apply_transpose_matches_dense_reference() {
        let op = sample_op();
        let x = Matrix::from_fn(3, 4, |r, k| (r as f32 + 0.3) * 0.4 - k as f32 * 0.2);
        let got = op.apply_transpose(&x);
        let expect = op.to_dense().transpose().matmul(&x);
        assert_matrix_eq(&got, &expect, 1e-5);
    }

    #[test]
    fn op_without_rank1_is_bit_identical_to_spmm() {
        let op = SparseOp::from_csr(sample());
        let x = Matrix::from_fn(3, 3, |r, k| (r * 3 + k) as f32 - 4.0);
        assert_eq!(op.apply(&x).as_slice(), sample().spmm(&x).as_slice());
        assert_eq!(
            op.apply_transpose(&x).as_slice(),
            sample().spmm_transpose(&x).as_slice()
        );
    }

    #[test]
    fn op_accessors_round_trip() {
        let op = sample_op();
        let (coeff, u, v) = op.rank1().expect("rank1 present");
        let rebuilt = SparseOp::new(op.csr().clone(), Some((coeff, u.to_vec(), v.to_vec())));
        assert_eq!(rebuilt, op);
        assert_eq!(op.dim(), 3);
        assert!(op.approx_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "u length")]
    fn op_rejects_mismatched_rank1() {
        let _ = SparseOp::new(sample(), Some((1.0, vec![1.0], vec![1.0, 2.0, 3.0])));
    }
}
