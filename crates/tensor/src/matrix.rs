//! The dense row-major matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
/// Vectors are represented as `n x 1` (column) or `1 x n` (row) matrices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer of {} elements cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows are ragged or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has ragged length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix whose entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds an `n x 1` column vector from a slice.
    pub fn col_vector(v: &[f32]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Builds a `1 x n` row vector from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Builds an `n x n` matrix with `diag` on the diagonal.
    pub fn diag(diag: &[f32]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Extracts the main diagonal.
    pub fn diagonal(&self) -> Vec<f32> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Reshapes in place without moving data.
    ///
    /// # Panics
    /// Panics if the element count changes.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape: cannot view {} elements as {rows}x{cols}",
            self.data.len()
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// True if every entry is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Show at most 8 rows / 8 cols to keep assertion failures readable.
        let (rmax, cmax) = (self.rows.min(8), self.cols.min(8));
        for r in 0..rmax {
            write!(f, "  [")?;
            for c in 0..cmax {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < cmax {
                    write!(f, ", ")?;
                }
            }
            if cmax < self.cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if rmax < self.rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::full(3, 1, 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Matrix::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_layout_is_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_wrong_len() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn reshape_preserves_data() {
        let m = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let r = m.clone().reshape(3, 4);
        assert_eq!(r.as_slice(), m.as_slice());
        assert_eq!(r.shape(), (3, 4));
    }

    #[test]
    fn diag_and_diagonal() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn vectors_have_expected_shapes() {
        assert_eq!(Matrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f32::NAN;
        assert!(!m.all_finite());
    }
}
